//! End-task accuracy of the f64 shadow-precision tier, network by network.
//!
//! The per-dtype contract (see `SessionBuilder::dtype`) is: `Dtype::F32`
//! is bit-identical to the tape; `Dtype::F64` replays the same plan in
//! f64 and is *not* bit-identical, but must stay so close that the task
//! output — the thing the paper measures — does not move. This file
//! pins that down across all seven evaluated networks:
//!
//! 1. predicted labels (argmax class, per-point segmentation labels,
//!    detection mask labels) are identical between the two dtypes on
//!    every evaluated cloud, and
//! 2. the raw logits agree to a measured, asserted bound — so a future
//!    change that degrades the shadow tier's fidelity fails here with a
//!    number, not just a flipped label somewhere downstream.

use mesorasi::prelude::*;
use mesorasi::tensor::Matrix;

/// Relative logit-agreement bound between the f32 pipeline and its f64
/// shadow. The shadow accumulates every intermediate in f64 and rounds
/// once at the output, so the divergence is the f32 pipeline's own
/// rounding noise — orders of magnitude below this bound on the
/// kernel-scale networks evaluated here.
const MAX_REL_DELTA: f32 = 1e-3;

fn max_rel_delta(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "dtypes changed the output shape");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f32::max)
}

#[test]
fn f64_mode_changes_no_predicted_labels_on_any_network() {
    let mut worst: (f32, &str) = (0.0, "-");
    for kind in NetworkKind::ALL {
        // Identical builder parameters → identical weights; only the
        // execution dtype differs.
        let build = |dtype: Dtype| {
            SessionBuilder::from_kind(kind).classes(5).seed(7).workers(1).dtype(dtype).build()
        };
        let f32_session = build(Dtype::F32);
        let f64_session = build(Dtype::F64);
        assert_eq!(f32_session.dtype(), Dtype::F32);
        assert_eq!(f64_session.dtype(), Dtype::F64);

        let n = f32_session.network().input_points();
        let clouds: Vec<PointCloud> = [ShapeClass::Chair, ShapeClass::Lamp, ShapeClass::Table]
            .iter()
            .flat_map(|&shape| (0..2).map(move |s| sample_shape(shape, n, 90 + s)))
            .collect();

        for (ci, cloud) in clouds.iter().enumerate() {
            let a = f32_session.infer(cloud);
            let b = f64_session.infer(cloud);
            assert_eq!(a.domain(), b.domain());

            let delta = max_rel_delta(a.logits(), b.logits());
            assert!(
                delta <= MAX_REL_DELTA,
                "{} cloud {ci}: f32 vs f64 logits diverge by {delta:e} (bound {MAX_REL_DELTA:e})",
                kind.name()
            );
            if delta > worst.0 {
                worst = (delta, kind.name());
            }

            // The end-task statement: no prediction moves.
            match a.domain() {
                Domain::Classification => assert_eq!(
                    a.as_classification().unwrap().predicted(),
                    b.as_classification().unwrap().predicted(),
                    "{} cloud {ci}: f64 mode flipped the predicted class",
                    kind.name()
                ),
                Domain::Segmentation => assert_eq!(
                    a.as_segmentation().unwrap().labels(),
                    b.as_segmentation().unwrap().labels(),
                    "{} cloud {ci}: f64 mode flipped a per-point label",
                    kind.name()
                ),
                Domain::Detection => {
                    let (da, db) = (a.as_detection().unwrap(), b.as_detection().unwrap());
                    assert_eq!(
                        da.mask_labels(),
                        db.mask_labels(),
                        "{} cloud {ci}: f64 mode flipped a detection mask label",
                        kind.name()
                    );
                    let params = max_rel_delta(da.params(), db.params());
                    assert!(
                        params <= MAX_REL_DELTA,
                        "{} cloud {ci}: box params diverge by {params:e}",
                        kind.name()
                    );
                }
            }
        }
    }
    // Surface the measured worst case in the test output so the bound
    // stays honest (run with --nocapture to read it).
    println!("worst f32-vs-f64 relative logit delta: {:e} ({})", worst.0, worst.1);
}

#[test]
fn f64_sessions_are_deterministic_across_repeats() {
    // The shadow replay is part of the serving path, so it inherits the
    // repo's determinism contract: same session, same cloud, same bits.
    let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
        .classes(5)
        .seed(7)
        .workers(1)
        .dtype(Dtype::F64)
        .build();
    let cloud = sample_shape(ShapeClass::Chair, session.network().input_points(), 11);
    let first = session.infer(&cloud);
    for _ in 0..3 {
        assert_eq!(session.infer(&cloud).logits(), first.logits());
    }
}
