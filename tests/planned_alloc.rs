//! Steady-state allocation audit for the inference engine.
//!
//! The whole point of the liveness-planned arena is that once a (plan,
//! sample) pair is warm, a forward pass allocates **nothing**: every
//! intermediate writes into its preassigned slot and the cached bindings
//! are read in place. This binary installs a counting global allocator and
//! asserts exactly that. It lives alone in its own test file so no
//! concurrently-running test can perturb the counter while it is armed.
//!
//! Five audits, in increasing strictness:
//!
//! 1. the original cache-hit audit on [`PlanEngine::run`] — searches are
//!    cached, pure planned tensor execution;
//! 2. the streaming audit on [`PlanEngine::run_streamed`], where the NIT
//!    cache is bypassed, so centroid sampling, **index rebuilds, and
//!    neighbor queries run on every frame** — the search arena must make
//!    them allocation-free too;
//! 3. the session-level audit: a warm [`mesorasi::Session`] frame stream
//!    served through `infer_into` (outputs recycled) performs zero heap
//!    allocations end to end;
//! 4. the multi-worker tiled audit: with the pool at 2 threads and a
//!    fixed tile budget, a warm streamed frame still makes zero heap
//!    allocations — job dispatch reuses retired headers and every worker
//!    draws search scratch from its `ScratchPool` slot;
//! 5. the heap-ceiling audit: once warm, `EngineStats` byte totals
//!    (tensor arena + search arena + parallel scratch pool) are frozen —
//!    further frames neither grow a slot nor retain new storage.

use mesorasi::core::engine::PlanEngine;
use mesorasi::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only adds counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_planned_forward_allocates_nothing() {
    // Sequential execution: the pool's job-dispatch machinery is the one
    // part of the stack allowed to allocate, and it is bypassed at 1
    // thread. The per-sample zero-allocation claim is about the engine.
    mesorasi_par::with_threads(1, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine = PlanEngine::new();
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let cloud = sample_shape(ShapeClass::Chair, net.input_points(), 4);

        // Warm-up: compile the plan (forward 1) and fill the NIT cache
        // (same forward); run once more to settle any lazy init.
        for _ in 0..2 {
            let _ = engine.run(&cloud, &record);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        let _ = engine.run(&cloud, &record);
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(after - before, 0, "a warm planned forward must not touch the allocator");
    });
}

#[test]
fn warm_f64_shadow_forward_allocates_nothing() {
    // The shadow-precision tier replays the full plan in f64 after every
    // forward. Its arena, scratch, and rounded outputs are all persistent,
    // so a warm f64-mode forward must be exactly as allocation-free as the
    // f32 path it shadows — the dtype knob may not reintroduce the per-op
    // allocation the planner exists to eliminate.
    mesorasi_par::with_threads(1, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine = PlanEngine::new();
        engine.set_dtype(Dtype::F64);
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let cloud = sample_shape(ShapeClass::Chair, net.input_points(), 4);

        // Warm-up: compile the plan and build the shadow (forward 1), fill
        // the NIT cache, and settle any lazy growth in the f64 arena.
        for _ in 0..3 {
            let _ = engine.run(&cloud, &record);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        let _ = engine.run(&cloud, &record);
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(after - before, 0, "a warm f64 shadow forward must not touch the allocator");
    });
}

#[test]
fn warm_streamed_forward_allocates_nothing_including_search() {
    // The streaming path never caches samples: every frame re-selects
    // centroids, rebuilds per-space indices (forced kd-tree, so real index
    // construction — not just brute-force scans — is under audit), and
    // re-queries. All of it must run out of the engine's persistent search
    // arena. Sequential execution for the same reason as above.
    mesorasi_par::with_threads(1, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine =
            PlanEngine::with_planner(mesorasi::SearchPlanner::forced(SearchBackend::KdTree));
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let frames: Vec<PointCloud> =
            (0..4).map(|s| sample_shape(ShapeClass::Chair, net.input_points(), s)).collect();

        // Warm pass: compiles the plan, sizes the stream bindings, and
        // grows every search buffer to this frame population's high-water
        // mark. The streamed replay re-derives everything per frame, so
        // re-running the same frames still exercises the full search path.
        for frame in &frames {
            let _ = engine.run_streamed(frame, &record);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        for frame in &frames {
            let _ = engine.run_streamed(frame, &record);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(
            after - before,
            0,
            "a warm streamed forward must not allocate — searches included"
        );
        let stats = engine.stats(net.input_points()).expect("compiled");
        assert!(stats.search.index_builds >= 8, "every streamed frame rebuilds its indices");
    });
}

#[test]
fn warm_session_frame_inference_allocates_nothing_end_to_end() {
    // The full serving path: Session → FrameStream::infer_into with a
    // recycled result. Once warm, a frame costs zero heap allocations —
    // engine checkout, per-frame searches, planned execution, and output
    // delivery included.
    mesorasi_par::with_threads(1, || {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(5)
            .workers(1)
            .search_backend(SearchBackend::KdTree)
            .build();
        let n = session.network().input_points();
        let frames: Vec<PointCloud> =
            (0..4).map(|s| sample_shape(ShapeClass::Lamp, n, 40 + s)).collect();

        let mut frame_stream = session.frames();
        let mut out = frame_stream.infer(&frames[0]);
        for frame in &frames {
            frame_stream.infer_into(frame, &mut out);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        for frame in &frames {
            frame_stream.infer_into(frame, &mut out);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(after - before, 0, "a warm Session frame must not touch the allocator");
        assert_eq!(out.domain(), Domain::Classification, "results still flow");
    });
}

#[test]
fn warm_tiled_streaming_allocates_nothing_at_two_threads() {
    // The multi-worker bar: at 2 pool threads with a fixed tile budget,
    // tile dispatch rides retired job headers and each participant's
    // kd-rebuild/query scratch comes out of its per-worker `ScratchPool`
    // slot — so the warm streamed frame stays at exactly zero heap
    // allocations even though real parallel dispatch is in the loop.
    mesorasi_par::with_threads(2, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine =
            PlanEngine::with_planner(mesorasi::SearchPlanner::forced(SearchBackend::KdTree));
        // A budget well under the frame size, so every frame splits into
        // several tiles and the remainder tile is exercised too.
        engine.set_tile_budget(Some(64));
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let frames: Vec<PointCloud> =
            (0..4).map(|s| sample_shape(ShapeClass::Chair, net.input_points(), 60 + s)).collect();

        // Warm pass: compiles the plan, sizes stream bindings and every
        // worker's scratch slot, and lets the pool allocate its one-time
        // job headers outside the armed window.
        for frame in &frames {
            let _ = engine.run_streamed(frame, &record);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        for frame in &frames {
            let _ = engine.run_streamed(frame, &record);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(after - before, 0, "a warm tiled streamed frame must not allocate at 2 threads");
        let stats = engine.stats(net.input_points()).expect("compiled");
        assert_eq!(stats.tile_budget, Some(64), "the tile budget must be live");
    });
}

#[test]
fn warm_tiled_stream_holds_a_hard_heap_ceiling() {
    // The memory-ceiling half of the contract: beyond "no allocator
    // calls", the bytes already *retained* must stop moving once warm.
    // Tensor-arena peak, search-arena retention, and the process-wide
    // per-worker scratch pool are all captured after warm-up and must be
    // bit-for-bit unchanged after further frames — and no arena slot may
    // ever grow past its planned capacity.
    mesorasi_par::with_threads(2, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine =
            PlanEngine::with_planner(mesorasi::SearchPlanner::forced(SearchBackend::KdTree));
        engine.set_tile_budget(Some(64));
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let frames: Vec<PointCloud> =
            (0..4).map(|s| sample_shape(ShapeClass::Lamp, net.input_points(), 80 + s)).collect();

        for frame in &frames {
            let _ = engine.run_streamed(frame, &record);
        }
        let warm = engine.stats(net.input_points()).expect("compiled");
        assert!(warm.arena.peak_bytes > 0, "the arena must retain planned storage");
        assert!(warm.search_bytes > 0, "the search arena must retain storage");

        for _ in 0..3 {
            for frame in &frames {
                let _ = engine.run_streamed(frame, &record);
            }
        }
        let after = engine.stats(net.input_points()).expect("compiled");

        assert_eq!(after.arena.peak_bytes, warm.arena.peak_bytes, "tensor arena grew while warm");
        assert_eq!(after.arena.grow_events, warm.arena.grow_events, "slots grew while warm");
        assert_eq!(after.search_bytes, warm.search_bytes, "search arena grew while warm");
        assert_eq!(
            after.parallel_scratch_bytes, warm.parallel_scratch_bytes,
            "per-worker scratch pool grew while warm"
        );
    });
}
