//! Steady-state allocation audit for the inference engine.
//!
//! The whole point of the liveness-planned arena is that once a (plan,
//! sample) pair is warm, a forward pass allocates **nothing**: every
//! intermediate writes into its preassigned slot and the cached bindings
//! are read in place. This binary installs a counting global allocator and
//! asserts exactly that. It lives alone in its own test file so no
//! concurrently-running test can perturb the counter while it is armed.
//!
//! The audit targets [`PlanEngine`] — the execution layer under
//! [`mesorasi::Session`] — directly: the session facade clones its output
//! matrices into owned domain-typed results (a deliberate ergonomic
//! trade), so the zero-allocation contract lives one level down, where
//! outputs are borrowed from the arena.

use mesorasi::core::engine::PlanEngine;
use mesorasi::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only adds counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_planned_forward_allocates_nothing() {
    // Sequential execution: the pool's job-dispatch machinery is the one
    // part of the stack allowed to allocate, and it is bypassed at 1
    // thread. The per-sample zero-allocation claim is about the engine.
    mesorasi_par::with_threads(1, || {
        let mut rng = seeded_rng(6);
        let net = NetworkKind::PointNetPPClassification.build_small(5, &mut rng);
        let mut engine = PlanEngine::new();
        let record =
            |g: &mut Graph, c: &PointCloud| net.session_outputs(g, c, Strategy::Delayed, 7);
        let cloud = sample_shape(ShapeClass::Chair, net.input_points(), 4);

        // Warm-up: compile the plan (forward 1) and fill the NIT cache
        // (same forward); run once more to settle any lazy init.
        for _ in 0..2 {
            let _ = engine.run(&cloud, &record);
        }

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCS.load(Ordering::SeqCst);
        let _ = engine.run(&cloud, &record);
        let after = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);

        assert_eq!(after - before, 0, "a warm planned forward must not touch the allocator");
    });
}
