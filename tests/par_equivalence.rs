//! Parallel/sequential equivalence: every `mesorasi-par`-backed kernel must
//! produce *bit-identical* output at 1, 2, and 8 threads.
//!
//! This is the determinism contract of the parallel layer (chunk-then-
//! combine with fixed per-element accumulation order), checked over
//! randomized inputs. Input sizes are chosen to cross the layer's
//! small-work sequential gate, so the 2- and 8-thread runs genuinely
//! execute on the pool.

use mesorasi::core::{executor, module::Module, module::ModuleConfig, module::NeighborMode};
use mesorasi::knn::{ball, bruteforce, feature::FeatureView, grid::UniformGrid, kdtree::KdTree};
use mesorasi::nn::layers::NormMode;
use mesorasi::nn::Graph;
use mesorasi::par;
use mesorasi::pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi::pointcloud::{sampling, Point3, PointCloud};
use mesorasi::tensor::{group, ops, Matrix};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Runs `f` at each swept thread count and asserts all results are equal
/// (`PartialEq`, which for `Matrix` and `NeighborIndexTable` is exact —
/// no tolerance anywhere).
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> R,
) -> Result<(), TestCaseError> {
    let baseline = par::with_threads(1, &f);
    for &threads in &THREAD_SWEEP[1..] {
        let got = par::with_threads(threads, &f);
        prop_assert_eq!(&got, &baseline, "{} diverged at {} threads vs sequential", what, threads);
    }
    Ok(())
}

fn arb_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn arb_cloud(points: std::ops::Range<usize>) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0), points).prop_map(|pts| {
        PointCloud::from_points(pts.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_is_thread_invariant(
        a in arb_matrix(64..128, 8..24),
        b_cols in 8usize..24,
    ) {
        let b = Matrix::from_fn(a.cols(), b_cols, |r, c| ((r * 13 + c * 7) % 11) as f32 - 5.0);
        assert_thread_invariant("matmul", || ops::matmul(&a, &b))?;
        assert_thread_invariant("matmul_at_b", || ops::matmul_at_b(&a, &b2_like(&a)))?;
        assert_thread_invariant("matmul_a_bt", || ops::matmul_a_bt(&a, &a.clone()))?;
    }

    #[test]
    fn group_kernels_are_thread_invariant(
        src in arb_matrix(48..96, 8..24),
        k in 2usize..6,
        n_groups in 24usize..64,
    ) {
        let groups: Vec<usize> =
            (0..n_groups * k).map(|i| (i * 31 + i / k) % src.rows()).collect();
        assert_thread_invariant("gather_rows", || group::gather_rows(&src, &groups))?;
        assert_thread_invariant("gather_max_reduce (values + argmax)", || {
            group::gather_max_reduce(&src, &groups, k)
        })?;
        let gathered = group::gather_rows(&src, &groups);
        assert_thread_invariant("group_max_reduce (values + argmax)", || {
            group::group_max_reduce(&gathered, k)
        })?;
        let centroids = group::gather_rows(&src, &groups[..n_groups]);
        let grouped = group::gather_rows(&src, &groups);
        assert_thread_invariant("subtract_centroid_per_group", || {
            group::subtract_centroid_per_group(&grouped, &centroids, k)
        })?;
    }

    #[test]
    fn knn_backends_yield_identical_nits_across_threads(
        cloud in arb_cloud(200..320),
        k in 1usize..9,
    ) {
        let queries: Vec<usize> = (0..cloud.len()).step_by(2).collect();
        assert_thread_invariant("bruteforce NIT", || {
            bruteforce::knn_indices(&cloud, &queries, k)
        })?;
        let tree = KdTree::build(&cloud);
        assert_thread_invariant("kdtree NIT", || tree.knn_indices(&cloud, &queries, k))?;
        assert_thread_invariant("ball NIT", || {
            ball::ball_query(&cloud, &tree, &queries, 0.3, k)
        })?;
        let grid = UniformGrid::build(&cloud, 0.3);
        assert_thread_invariant("grid NIT", || grid.ball_query(&cloud, &queries, 0.3, k))?;
        let flat = cloud.to_xyz_rows();
        let view = FeatureView::new(&flat, 3).expect("xyz rows are rectangular");
        assert_thread_invariant("feature NIT", || {
            mesorasi::knn::feature::knn_rows(view, &queries, k)
        })?;
    }
}

/// A deterministic second operand shaped for `matmul_at_b(a, ·)`.
fn b2_like(a: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), 12, |r, c| ((r * 5 + c * 3) % 17) as f32 * 0.25 - 2.0)
}

/// End-to-end: a full delayed-aggregation module forward (neighbor search,
/// PFT matmuls, fused gather-max, centroid subtract) is bit-identical
/// across thread counts — the NITs and every activation row.
#[test]
fn delayed_module_forward_is_thread_invariant() {
    let cloud = sample_shape(ShapeClass::Chair, 256, 11);
    let mut rng = mesorasi::pointcloud::seeded_rng(42);
    let config = ModuleConfig::offset("eq", 64, 8, NeighborMode::CoordKnn, vec![3, 32, 48]);
    let module = Module::new(config, NormMode::None, &mut rng);
    let centroids = sampling::random_indices(&cloud, 64, 3);
    let features = Matrix::from_vec(cloud.len(), 3, cloud.to_xyz_rows());

    let forward = |threads: usize| {
        par::with_threads(threads, || {
            let nit = bruteforce::knn_indices(&cloud, &centroids, 8);
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = executor::delayed_offset(&mut g, &module, x, &nit);
            (nit, g.value(y).clone())
        })
    };

    let (nit1, out1) = forward(1);
    for threads in [2, 8] {
        let (nit, out) = forward(threads);
        assert_eq!(nit, nit1, "NIT diverged at {threads} threads");
        assert_eq!(out, out1, "module output diverged at {threads} threads");
    }
}

/// Gradients route through argmax indices, so backward must be
/// thread-invariant too (the argmax tie-breaks are part of the contract).
#[test]
fn backward_pass_is_thread_invariant() {
    let cloud = sample_shape(ShapeClass::Lamp, 192, 5);
    let mut rng = mesorasi::pointcloud::seeded_rng(9);
    let config = ModuleConfig::offset("grad-eq", 48, 6, NeighborMode::CoordKnn, vec![3, 24, 16]);
    let module = Module::new(config, NormMode::None, &mut rng);
    let centroids = sampling::random_indices(&cloud, 48, 1);
    let features = Matrix::from_vec(cloud.len(), 3, cloud.to_xyz_rows());

    let grad = |threads: usize| {
        par::with_threads(threads, || {
            let nit = bruteforce::knn_indices(&cloud, &centroids, 6);
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = executor::delayed_offset(&mut g, &module, x, &nit);
            let t = g.input(Matrix::zeros(48, 16));
            let loss = g.mse(y, t);
            g.backward(loss);
            g.param_grad(module.mlp.first_layer().weight.id())
                .expect("first layer receives gradient")
                .clone()
        })
    };

    let g1 = grad(1);
    for threads in [2, 8] {
        assert_eq!(grad(threads), g1, "weight gradient diverged at {threads} threads");
    }
}
