//! Session equivalence: the inference API's correctness oracle.
//!
//! A [`Session`] (engine pool over `mesorasi_core::engine` +
//! `mesorasi_nn::plan`) must reproduce `Graph`-based forwards
//! *bit-identically* — same kernels, same search code, same accumulation
//! orders — for every network, every strategy, every thread count, on
//! samples it never recorded on, through every entry point (`infer`,
//! `infer_batch`, `infer_stream`), and from concurrent callers sharing one
//! `Arc<Session>`.

use mesorasi::prelude::*;
use mesorasi::tensor::Matrix;
// `proptest::prelude` also exports a `Strategy` trait; ours wins explicitly.
use mesorasi::Strategy;
use proptest::prelude::*;
use std::sync::Arc;

fn tape_logits(
    net: &dyn PointCloudNetwork,
    cloud: &PointCloud,
    strategy: Strategy,
    seed: u64,
) -> Matrix {
    let mut g = Graph::new();
    let out = net.forward(&mut g, cloud, strategy, seed);
    g.value(out.logits).clone()
}

/// The acceptance matrix: all 7 networks × 3 strategies × {1, 2, 8}
/// threads, single and batched inference, bit-identical to the tape on
/// both the recording sample and an unseen one.
#[test]
fn all_seven_networks_bit_identical_at_every_thread_count() {
    let mut rng = seeded_rng(42);
    for kind in NetworkKind::ALL {
        let net = kind.build_small(5, &mut rng);
        for strategy in Strategy::ALL {
            // Cloud 0 is the recording sample; cloud 1 exercises replay
            // with re-derived neighbor structure on unseen data.
            let clouds: Vec<PointCloud> = [1u64, 2]
                .iter()
                .map(|&s| sample_shape(ShapeClass::Airplane, net.input_points(), s))
                .collect();
            let expected: Vec<Matrix> =
                clouds.iter().map(|c| tape_logits(net.as_ref(), c, strategy, 7)).collect();
            let session = SessionBuilder::from_network_ref(net.as_ref())
                .strategy(strategy)
                .seed(7)
                .workers(2)
                // Bit-identity to the tape is a per-dtype (f32) contract.
                .dtype(Dtype::F32)
                .build();
            for threads in [1usize, 2, 8] {
                mesorasi_par::with_threads(threads, || {
                    for (cloud, want) in clouds.iter().zip(&expected) {
                        assert_eq!(
                            session.infer(cloud).logits(),
                            want,
                            "{} / {strategy} / {threads}t: infer != tape",
                            kind.name()
                        );
                    }
                    let batched = session.infer_batch(&clouds);
                    for (out, want) in batched.iter().zip(&expected) {
                        assert_eq!(
                            out.logits(),
                            want,
                            "{} / {strategy} / {threads}t: infer_batch != tape",
                            kind.name()
                        );
                    }
                });
            }
        }
    }
}

/// Frame-sequence mode: the streaming path (NIT cache bypassed, search
/// indices warm-started from the previous frame) must stay bit-identical
/// to the tape for every network on every frame of an unseen sequence.
#[test]
fn all_seven_networks_framed_streams_bit_identical_to_tape() {
    let mut rng = seeded_rng(23);
    for kind in NetworkKind::ALL {
        let net = kind.build_small(5, &mut rng);
        let frames: Vec<PointCloud> =
            (10u64..14).map(|s| sample_shape(ShapeClass::Chair, net.input_points(), s)).collect();
        let expected: Vec<Matrix> =
            frames.iter().map(|c| tape_logits(net.as_ref(), c, Strategy::Delayed, 7)).collect();
        let session = SessionBuilder::from_network_ref(net.as_ref())
            .seed(7)
            .workers(1)
            .dtype(Dtype::F32)
            .build();
        let framed: Vec<Inference> = session.infer_frames(frames.iter()).collect();
        for (i, (out, want)) in framed.iter().zip(&expected).enumerate() {
            assert_eq!(out.logits(), want, "{} frame {i}: framed != tape", kind.name());
        }
        // A second pass over the same sequence reuses all warm search
        // state and must reproduce the results exactly.
        let again: Vec<Inference> = session.infer_frames(frames.iter()).collect();
        assert_eq!(again, framed, "{}: warm stream drifted", kind.name());
    }
}

/// The acceptance bar for backend pluggability: every backend the planner
/// can select (forced brute-force, kd-tree, grid — and auto) produces
/// network outputs bit-identical to the tape, which still runs whatever
/// `MESORASI_SEARCH` dictates (unset in CI ⇒ the cost model).
#[test]
fn forced_search_backends_match_tape_for_every_network() {
    use mesorasi::knn::SearchBackend;
    let mut rng = seeded_rng(31);
    for kind in NetworkKind::ALL {
        let net = kind.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Lamp, net.input_points(), 6);
        let want = tape_logits(net.as_ref(), &cloud, Strategy::Delayed, 7);
        for backend in [SearchBackend::BruteForce, SearchBackend::KdTree, SearchBackend::Grid] {
            let session = SessionBuilder::from_network_ref(net.as_ref())
                .seed(7)
                .workers(1)
                .dtype(Dtype::F32)
                .search_backend(backend)
                .build();
            assert_eq!(
                session.infer(&cloud).logits(),
                &want,
                "{} under forced {backend:?} != tape",
                kind.name()
            );
        }
    }
}

#[test]
fn sessions_return_the_domain_typed_variant() {
    let mut rng = seeded_rng(17);
    for kind in NetworkKind::ALL {
        let net = kind.build_small(5, &mut rng);
        let session = SessionBuilder::from_network_ref(net.as_ref()).build();
        assert_eq!(session.domain(), kind.domain());
        let cloud = sample_shape(ShapeClass::Table, net.input_points(), 3);
        let out = session.infer(&cloud);
        assert_eq!(out.domain(), kind.domain(), "{}", kind.name());
        match kind.domain() {
            Domain::Classification => {
                let logits = out.into_classification();
                assert_eq!(logits.matrix().shape(), (1, 5));
            }
            Domain::Segmentation => {
                let labels = out.into_segmentation();
                assert_eq!(labels.len(), cloud.len());
                assert_eq!(labels.labels().len(), cloud.len());
            }
            Domain::Detection => {
                let boxes = out.into_detection();
                assert_eq!(boxes.seg_logits().rows(), cloud.len());
                assert_eq!(boxes.params().shape(), (1, 7));
            }
        }
    }
}

#[test]
fn detection_sessions_match_tape_outputs_on_labelled_frustums() {
    let mut rng = seeded_rng(5);
    let net = mesorasi::networks::fpointnet::FPointNet::small(&mut rng);
    let frustums = mesorasi::networks::datasets::frustums(3, 128, 9);
    for strategy in Strategy::ALL {
        let session = SessionBuilder::from_network_ref(&net)
            .strategy(strategy)
            .seed(13)
            .dtype(Dtype::F32)
            .build();
        for ex in frustums.iter().take(4) {
            let mut g = Graph::new();
            let det = net.forward_detection(&mut g, &ex.cloud, strategy, 13);
            let boxes = session.infer(&ex.cloud).into_detection();
            assert_eq!(boxes.seg_logits(), g.value(det.seg_logits), "{strategy}: seg differs");
            assert_eq!(boxes.params(), g.value(det.box_params), "{strategy}: box differs");
        }
    }
}

/// Two threads hammering one `Arc<Session>` — single and batched calls
/// interleaved — must each see results identical to the tape reference.
#[test]
fn concurrent_callers_sharing_a_session_stay_deterministic() {
    let mut rng = seeded_rng(2);
    let net = NetworkKind::DgcnnClassification.build_small(4, &mut rng);
    let clouds: Vec<PointCloud> =
        (0..6).map(|s| sample_shape(ShapeClass::Car, net.input_points(), s)).collect();
    let expected: Vec<Matrix> =
        clouds.iter().map(|c| tape_logits(net.as_ref(), c, Strategy::Delayed, 7)).collect();
    let session = Arc::new(
        SessionBuilder::from_network_ref(net.as_ref())
            .strategy(Strategy::Delayed)
            .seed(7)
            .workers(2)
            .dtype(Dtype::F32)
            .build(),
    );
    let per_thread: Vec<Vec<Matrix>> = std::thread::scope(|scope| {
        (0..2)
            .map(|t| {
                let session = Arc::clone(&session);
                let clouds = &clouds;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    for round in 0..2 {
                        got = if (t + round) % 2 == 0 {
                            clouds.iter().map(|c| session.infer(c).logits().clone()).collect()
                        } else {
                            session.infer_batch(clouds).iter().map(|o| o.logits().clone()).collect()
                        };
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("inference thread"))
            .collect()
    });
    for (t, got) in per_thread.iter().enumerate() {
        assert_eq!(got, &expected, "thread {t} saw non-reference results");
    }
}

#[test]
fn infer_stream_yields_results_in_input_order() {
    let session =
        SessionBuilder::from_kind(NetworkKind::PointNetPPClassification).classes(4).build();
    let n = session.network().input_points();
    let clouds: Vec<PointCloud> = (0..4).map(|s| sample_shape(ShapeClass::Cup, n, s)).collect();
    let singles: Vec<Inference> = clouds.iter().map(|c| session.infer(c)).collect();
    let streamed: Vec<Inference> = session.infer_stream(clouds.iter()).collect();
    assert_eq!(streamed, singles);
}

#[test]
fn steady_state_arena_never_grows_and_reuses_slots() {
    let mut rng = seeded_rng(2);
    let net = NetworkKind::PointNetPPSegmentation.build_small(6, &mut rng);
    let session = SessionBuilder::from_network_ref(net.as_ref()).seed(7).build();
    let cloud = sample_shape(ShapeClass::Table, net.input_points(), 1);
    for _ in 0..3 {
        let _ = session.infer(&cloud);
    }
    let stats = session.arena_stats(net.input_points()).expect("plan compiled");
    assert_eq!(stats.arena.grow_events, 0, "steady state must stay inside planned capacities");
    assert!(stats.arena.reuse_ratio > 1.5, "deep networks must reuse slots, got {stats:?}");
    assert!(stats.arena.peak_bytes > 0);
    assert!(stats.search_bytes > 0, "the first infer derives search state through the arena");
    assert!(stats.search.query_calls > 0, "searches are metered");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shape fuzz: input point counts the networks were never recorded on
    /// (each count compiles a fresh plan) must still replay bit-identically
    /// under every strategy.
    #[test]
    fn session_matches_tape_over_shapes(
        n in 48usize..=160,
        cloud_seed in 0u64..1000,
        strategy_idx in 0usize..3,
    ) {
        let strategy = Strategy::ALL[strategy_idx];
        let mut rng = seeded_rng(8);
        let net = NetworkKind::PointNetPPClassification.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Guitar, n, cloud_seed);
        let expected = tape_logits(net.as_ref(), &cloud, strategy, 3);
        let session =
            SessionBuilder::from_network_ref(net.as_ref())
                .strategy(strategy)
                .seed(3)
                .dtype(Dtype::F32)
                .build();
        let out = session.infer(&cloud);
        prop_assert_eq!(out.logits(), &expected);
    }

    /// Same fuzz for an edge-module (feature-space search) network, whose
    /// dynamic graph makes the searches depend on intermediate features.
    #[test]
    fn session_matches_tape_over_shapes_dgcnn(
        n in 128usize..=192,
        cloud_seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(9);
        let net = NetworkKind::DgcnnClassification.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Bottle, n, cloud_seed);
        let expected = tape_logits(net.as_ref(), &cloud, Strategy::Delayed, 3);
        let session =
            SessionBuilder::from_network_ref(net.as_ref()).seed(3).dtype(Dtype::F32).build();
        let out = session.infer(&cloud);
        prop_assert_eq!(out.logits(), &expected);
    }
}
