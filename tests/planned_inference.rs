//! Planned-inference equivalence: the engine's correctness oracle.
//!
//! The inference engine (`mesorasi_core::engine` + `mesorasi_nn::plan`)
//! must reproduce `Graph`-based forwards *bit-identically* — same kernels,
//! same search code, same accumulation orders — for every network, every
//! strategy, every thread count, and on samples it never recorded on.

use mesorasi::core::Strategy;
use mesorasi::networks::planned::{PlannedDetector, PlannedNetwork};
use mesorasi::networks::registry::NetworkKind;
use mesorasi::networks::PointCloudNetwork;
use mesorasi::nn::Graph;
use mesorasi::pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi::pointcloud::PointCloud;
use mesorasi::tensor::Matrix;
use proptest::prelude::*;

fn tape_logits(
    net: &dyn PointCloudNetwork,
    cloud: &PointCloud,
    strategy: Strategy,
    seed: u64,
) -> Matrix {
    let mut g = Graph::new();
    let out = net.forward(&mut g, cloud, strategy, seed);
    g.value(out.logits).clone()
}

#[test]
fn all_seven_networks_bit_identical_under_all_strategies() {
    let mut rng = mesorasi::pointcloud::seeded_rng(42);
    for kind in NetworkKind::ALL {
        let net = kind.build_small(5, &mut rng);
        for strategy in Strategy::ALL {
            let mut planned = PlannedNetwork::new(net.as_ref(), strategy, 7);
            // Cloud 1 is the recording sample; cloud 2 exercises replay
            // with re-derived neighbor structure on unseen data.
            for cloud_seed in [1, 2] {
                let cloud = sample_shape(ShapeClass::Airplane, net.input_points(), cloud_seed);
                let expected = tape_logits(net.as_ref(), &cloud, strategy, 7);
                assert_eq!(
                    planned.logits(&cloud),
                    &expected,
                    "{} / {strategy} / cloud {cloud_seed}: planned != tape",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn planned_equals_tape_at_every_thread_count() {
    let mut rng = mesorasi::pointcloud::seeded_rng(1);
    for kind in [NetworkKind::PointNetPPClassification, NetworkKind::DgcnnClassification] {
        let net = kind.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Car, net.input_points(), 3);
        let reference = tape_logits(net.as_ref(), &cloud, Strategy::Delayed, 7);
        for threads in [1usize, 2, 8] {
            mesorasi_par::with_threads(threads, || {
                let tape = tape_logits(net.as_ref(), &cloud, Strategy::Delayed, 7);
                assert_eq!(tape, reference, "{}: tape drifts at {threads}t", kind.name());
                let mut planned = PlannedNetwork::new(net.as_ref(), Strategy::Delayed, 7);
                assert_eq!(
                    planned.logits(&cloud),
                    &reference,
                    "{}: planned drifts at {threads} threads",
                    kind.name()
                );
            });
        }
    }
}

#[test]
fn planned_detection_pipeline_matches_tape_on_labelled_frustums() {
    let mut rng = mesorasi::pointcloud::seeded_rng(5);
    let net = mesorasi::networks::fpointnet::FPointNet::small(&mut rng);
    let frustums = mesorasi::networks::datasets::frustums(3, 128, 9);
    for strategy in Strategy::ALL {
        let mut planned = PlannedDetector::new(&net, strategy, 13);
        for ex in frustums.iter().take(4) {
            let mut g = Graph::new();
            let det = net.forward_detection(&mut g, &ex.cloud, strategy, 13);
            let (seg, bx) = planned.run(&ex.cloud);
            assert_eq!(seg, g.value(det.seg_logits), "{strategy}: seg logits differ");
            assert_eq!(bx, g.value(det.box_params), "{strategy}: box params differ");
        }
    }
}

#[test]
fn steady_state_arena_never_grows_and_reuses_slots() {
    let mut rng = mesorasi::pointcloud::seeded_rng(2);
    let net = NetworkKind::PointNetPPSegmentation.build_small(6, &mut rng);
    let mut planned = PlannedNetwork::new(net.as_ref(), Strategy::Delayed, 7);
    let cloud = sample_shape(ShapeClass::Table, net.input_points(), 1);
    for _ in 0..3 {
        let _ = planned.logits(&cloud);
    }
    let stats = planned.stats(net.input_points()).expect("plan compiled");
    assert_eq!(stats.grow_events, 0, "steady state must stay inside planned capacities");
    assert!(stats.reuse_ratio > 1.5, "deep networks must reuse slots, got {stats:?}");
    assert!(stats.peak_bytes > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shape fuzz: input point counts the networks were never recorded on
    /// (each count compiles a fresh plan) must still replay bit-identically
    /// under every strategy.
    #[test]
    fn planned_matches_tape_over_shapes(
        n in 48usize..=160,
        cloud_seed in 0u64..1000,
        strategy_idx in 0usize..3,
    ) {
        let strategy = Strategy::ALL[strategy_idx];
        let mut rng = mesorasi::pointcloud::seeded_rng(8);
        let net = NetworkKind::PointNetPPClassification.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Guitar, n, cloud_seed);
        let expected = tape_logits(net.as_ref(), &cloud, strategy, 3);
        let mut planned = PlannedNetwork::new(net.as_ref(), strategy, 3);
        prop_assert_eq!(planned.logits(&cloud), &expected);
    }

    /// Same fuzz for an edge-module (feature-space search) network, whose
    /// dynamic graph makes the searches depend on intermediate features.
    #[test]
    fn planned_matches_tape_over_shapes_dgcnn(
        n in 128usize..=192,
        cloud_seed in 0u64..1000,
    ) {
        let mut rng = mesorasi::pointcloud::seeded_rng(9);
        let net = NetworkKind::DgcnnClassification.build_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Bottle, n, cloud_seed);
        let expected = tape_logits(net.as_ref(), &cloud, Strategy::Delayed, 3);
        let mut planned = PlannedNetwork::new(net.as_ref(), Strategy::Delayed, 3);
        prop_assert_eq!(planned.logits(&cloud), &expected);
    }
}
