//! Cross-crate functional equivalence of the three execution strategies —
//! the correctness core of the reproduction: Ltd-Mesorasi must be exact,
//! full delayed-aggregation must be exact wherever the paper's math says so
//! and boundedly approximate elsewhere.

use mesorasi::core::executor;
use mesorasi::core::module::{Module, ModuleConfig, NeighborMode};
use mesorasi::core::{runner, Strategy};
use mesorasi::knn::bruteforce;
use mesorasi::nn::layers::NormMode;
use mesorasi::nn::Graph;
use mesorasi::pointcloud::sampling::random_indices;
use mesorasi::pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi::tensor::{ops, Matrix};
use mesorasi_knn::NeighborIndexTable;

fn fixture(n: usize, n_out: usize, k: usize, seed: u64) -> (Matrix, NeighborIndexTable) {
    let cloud = sample_shape(ShapeClass::Guitar, n, seed);
    let centroids = random_indices(&cloud, n_out, seed ^ 1);
    let nit = bruteforce::knn_indices(&cloud, &centroids, k);
    (Matrix::from_vec(n, 3, cloud.to_xyz_rows()), nit)
}

#[test]
fn ltd_is_exact_for_every_depth_and_module_kind() {
    let (features, nit) = fixture(200, 50, 12, 3);
    for widths in [vec![3, 16], vec![3, 16, 16], vec![3, 32, 32, 24]] {
        for edge in [false, true] {
            let mut rng = mesorasi::pointcloud::seeded_rng(9);
            let config = if edge {
                ModuleConfig::edge("e", 50, 12, widths.clone())
            } else {
                ModuleConfig::offset("o", 50, 12, NeighborMode::CoordKnn, widths.clone())
            };
            let module = Module::new(config, NormMode::None, &mut rng);
            let mut g1 = Graph::new();
            let x1 = g1.input(features.clone());
            let a = if edge {
                executor::original_edge(&mut g1, &module, x1, &nit)
            } else {
                executor::original_offset(&mut g1, &module, x1, &nit)
            };
            let mut g2 = Graph::new();
            let x2 = g2.input(features.clone());
            let b = if edge {
                executor::ltd_edge(&mut g2, &module, x2, &nit)
            } else {
                executor::ltd_offset(&mut g2, &module, x2, &nit)
            };
            let diff = ops::sub(g1.value(a), g2.value(b)).max_abs();
            assert!(
                diff < 1e-3,
                "ltd must be exact (edge={edge}, widths={widths:?}), diff = {diff}"
            );
        }
    }
}

#[test]
fn delayed_offset_is_exact_without_nonlinearity_in_path() {
    // If every pre-activation on both paths stays non-negative, ReLU is the
    // identity and Equ. 2 becomes exact. Build that case: non-negative
    // weights, non-negative inputs, zero bias, and compare.
    let (_, nit) = fixture(64, 16, 4, 5);
    let mut rng = mesorasi::pointcloud::seeded_rng(1);
    let config = ModuleConfig::offset("o", 16, 4, NeighborMode::CoordKnn, vec![3, 8]);
    let mut module = Module::new(config, NormMode::None, &mut rng);
    module.mlp.params_mut().into_iter().for_each(|p| p.value.map_inplace(|v| v.abs() * 0.1));
    // Non-negative, *sorted-coordinate* features so that offsets of
    // later-indexed neighbors stay non-negative is too restrictive; instead
    // verify the distributivity identity directly on the linear part.
    let features = Matrix::from_fn(64, 3, |r, c| ((r + c) % 9) as f32 * 0.1);
    let mut g1 = Graph::new();
    let x1 = g1.input(features.clone());
    let orig = executor::original_offset(&mut g1, &module, x1, &nit);
    let mut g2 = Graph::new();
    let x2 = g2.input(features);
    let del = executor::delayed_offset(&mut g2, &module, x2, &nit);
    // With non-negative weights the clipping pattern can still differ on
    // negative offsets; assert bounded divergence rather than equality.
    let a = g1.value(orig);
    let b = g2.value(del);
    let diff = ops::sub(a, b).max_abs();
    let scale = a.max_abs().max(b.max_abs()).max(1e-6);
    assert!(diff / scale < 1.5, "delayed divergence must stay bounded: {diff} vs {scale}");
}

#[test]
fn strategies_agree_on_output_geometry_end_to_end() {
    // Whole-module runs under all strategies produce identical positions
    // (the same centroids) and identically-shaped features.
    let cloud = sample_shape(ShapeClass::Airplane, 160, 2);
    let mut rng = mesorasi::pointcloud::seeded_rng(4);
    let module = Module::new(
        ModuleConfig::offset("sa", 40, 8, NeighborMode::CoordBall { radius: 0.3 }, vec![3, 16, 24]),
        NormMode::None,
        &mut rng,
    );
    let mut reference: Option<Vec<mesorasi::pointcloud::Point3>> = None;
    for strategy in Strategy::ALL {
        let mut g = Graph::new();
        let state = runner::ModuleState::from_cloud(&mut g, &cloud);
        let out = runner::run_module(&mut g, &module, &state, strategy, 77);
        assert_eq!(g.value(out.state.features).shape(), (40, 24), "{strategy}");
        let positions = out.state.positions.points().to_vec();
        match &reference {
            None => reference = Some(positions),
            Some(r) => assert_eq!(r, &positions, "{strategy} must see the same centroids"),
        }
    }
}

#[test]
fn max_before_subtract_is_exact_on_module_outputs() {
    // The §IV-A identity at module granularity: delayed executor (which
    // fuses max-then-subtract) equals an explicit subtract-after-gather
    // delayed variant computed by hand.
    let (features, nit) = fixture(96, 24, 6, 8);
    let mut rng = mesorasi::pointcloud::seeded_rng(2);
    let module = Module::new(
        ModuleConfig::offset("o", 24, 6, NeighborMode::CoordKnn, vec![3, 12, 8]),
        NormMode::None,
        &mut rng,
    );
    let mut g = Graph::new();
    let x = g.input(features.clone());
    let fused = executor::delayed_offset(&mut g, &module, x, &nit);

    // Hand-rolled: PFT, gather each neighborhood, subtract centroid rows
    // per group, then max.
    let mut g2 = Graph::new();
    let x2 = g2.input(features);
    let pft = module.mlp.forward(&mut g2, x2);
    let gathered = g2.gather(pft, nit.neighbors_flat().to_vec());
    let cents = g2.gather(pft, nit.centroids().to_vec());
    let offsets = g2.sub_centroid(gathered, cents, nit.k());
    let unfused = g2.group_max(offsets, nit.k());

    let diff = ops::sub(g.value(fused), g2.value(unfused)).max_abs();
    assert!(diff < 1e-4, "max-before-subtract must be exact, diff = {diff}");
}

#[test]
fn gradients_match_between_fused_and_unfused_delayed_paths() {
    let (features, nit) = fixture(64, 16, 4, 9);
    let mut rng = mesorasi::pointcloud::seeded_rng(3);
    let module = Module::new(
        ModuleConfig::offset("o", 16, 4, NeighborMode::CoordKnn, vec![3, 8]),
        NormMode::None,
        &mut rng,
    );
    let grads: Vec<Matrix> = [true, false]
        .into_iter()
        .map(|fused| {
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = if fused {
                executor::delayed_offset(&mut g, &module, x, &nit)
            } else {
                let pft = module.mlp.forward(&mut g, x);
                let gathered = g.gather(pft, nit.neighbors_flat().to_vec());
                let cents = g.gather(pft, nit.centroids().to_vec());
                let offsets = g.sub_centroid(gathered, cents, nit.k());
                g.group_max(offsets, nit.k())
            };
            let t = g.input(Matrix::zeros(16, 8));
            let l = g.mse(y, t);
            g.backward(l);
            g.param_grad(module.mlp.first_layer().weight.id()).expect("weight gradient").clone()
        })
        .collect();
    let diff = ops::sub(&grads[0], &grads[1]).max_abs();
    assert!(diff < 1e-5, "fused/unfused gradients must agree, diff = {diff}");
}
