//! End-to-end pipeline tests: data generation → network → training →
//! trace → hardware simulation, exercising every crate in one pass.

use mesorasi::core::Strategy;
use mesorasi::networks::datasets;
use mesorasi::networks::pointnetpp::PointNetPP;
use mesorasi::networks::registry::NetworkKind;
use mesorasi::networks::PointCloudNetwork;
use mesorasi::nn::optim::{Adam, Optimizer};
use mesorasi::nn::Graph;
use mesorasi::sim::soc::{simulate, Platform, SocConfig};
use mesorasi_bench::training;

#[test]
fn training_reduces_loss_in_both_formulations() {
    let ds = datasets::classification(3, 96, 4, 2, 5);
    for strategy in [Strategy::Original, Strategy::Delayed] {
        let mut rng = mesorasi::pointcloud::seeded_rng(11);
        let mut net = PointNetPP::classification_small(3, &mut rng);
        let mut opt = Adam::new(1e-3);
        let mut first = None;
        let mut last = 0.0f32;
        for epoch in 0..6 {
            let mut total = 0.0;
            for (i, ex) in ds.train.iter().enumerate() {
                let cloud = ds.augmented_train_cloud(i, epoch);
                let mut g = Graph::new();
                let out = net.forward(&mut g, &cloud, strategy, 7);
                let l = g.softmax_cross_entropy(out.logits, vec![ex.label]);
                total += g.value(l)[(0, 0)];
                g.backward(l);
                opt.step(&mut net.params_mut(), &g);
            }
            if first.is_none() {
                first = Some(total);
            }
            last = total;
        }
        let first = first.expect("at least one epoch");
        assert!(last < first * 0.8, "{strategy}: loss should drop, {first} -> {last}");
    }
}

#[test]
fn single_cloud_overfit_converges_quickly() {
    let cloud = mesorasi::pointcloud::shapes::sample_shape(
        mesorasi::pointcloud::shapes::ShapeClass::Lamp,
        96,
        3,
    );
    let mut rng = mesorasi::pointcloud::seeded_rng(0);
    let mut net = PointNetPP::classification_small(4, &mut rng);
    let final_loss =
        training::overfit_single_cloud(&mut net, &cloud, 2, Strategy::Delayed, 30, 5e-3);
    assert!(final_loss < 0.2, "overfit loss {final_loss}");
}

#[test]
fn all_seven_networks_run_all_strategies_on_all_platforms() {
    let cfg = SocConfig::default();
    for kind in NetworkKind::ALL {
        let mut rng = mesorasi::pointcloud::seeded_rng(1);
        let net = kind.build_small(4, &mut rng);
        let cloud = match kind {
            NetworkKind::FPointNet => {
                datasets::frustums(3, net.input_points(), 5)
                    .into_iter()
                    .next()
                    .expect("frustum")
                    .cloud
            }
            NetworkKind::PointNetPPSegmentation | NetworkKind::DgcnnSegmentation => {
                mesorasi::pointcloud::parts::sample_labelled(
                    mesorasi::pointcloud::parts::categories()[0],
                    net.input_points(),
                    5,
                )
            }
            _ => mesorasi::pointcloud::shapes::sample_shape(
                mesorasi::pointcloud::shapes::ShapeClass::Car,
                net.input_points(),
                5,
            ),
        };
        for strategy in Strategy::ALL {
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, 7);
            assert!(g.value(out.logits).is_finite(), "{} {strategy}", kind.name());
            for platform in Platform::ALL {
                let sim = simulate(&out.trace, platform, &cfg);
                assert!(sim.total_ms() > 0.0, "{} {strategy} {platform:?}", kind.name());
            }
        }
    }
}

#[test]
fn platform_ordering_holds_for_the_flagship_network() {
    // The paper's headline ordering on PointNet++ (c):
    // GPU slowest, baseline faster, Mesorasi-SW faster still, HW fastest.
    let mut rng = mesorasi::pointcloud::seeded_rng(1);
    let net = NetworkKind::PointNetPPClassification.build_small(4, &mut rng);
    let cloud = mesorasi::pointcloud::shapes::sample_shape(
        mesorasi::pointcloud::shapes::ShapeClass::Chair,
        net.input_points(),
        5,
    );
    let cfg = SocConfig::default();
    let mut g1 = Graph::new();
    let orig = net.forward(&mut g1, &cloud, Strategy::Original, 7).trace;
    let mut g2 = Graph::new();
    let del = net.forward(&mut g2, &cloud, Strategy::Delayed, 7).trace;

    let gpu = simulate(&orig, Platform::GpuOnly, &cfg).total_ms();
    let baseline = simulate(&orig, Platform::GpuNpu, &cfg).total_ms();
    let sw = simulate(&del, Platform::MesorasiSw, &cfg).total_ms();
    let hw = simulate(&del, Platform::MesorasiHw, &cfg).total_ms();
    assert!(baseline < gpu, "baseline {baseline} !< gpu {gpu}");
    assert!(sw < baseline, "sw {sw} !< baseline {baseline}");
    assert!(hw <= sw, "hw {hw} !<= sw {sw}");
}

#[test]
fn detector_pipeline_trains_and_scores() {
    let frustums = datasets::frustums(6, 96, 5);
    let (train, test) = training::split_frustums(frustums, 0.3);
    let mut rng = mesorasi::pointcloud::seeded_rng(11);
    let mut net = mesorasi::networks::fpointnet::FPointNet::small(&mut rng);
    let cfg = training::TrainConfig { epochs: 4, ..Default::default() };
    let iou = training::train_detector(&mut net, &train, &test, Strategy::Delayed, cfg);
    assert!((0.0..=100.0).contains(&iou));
    let mask_acc = training::detector_mask_accuracy(&net, &test, Strategy::Delayed, 7);
    assert!(mask_acc > 40.0, "mask accuracy {mask_acc} should beat noise");
}
