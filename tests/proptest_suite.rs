//! Property-based tests over the core invariants, with randomized inputs.

use mesorasi::knn::{bruteforce, kdtree::KdTree};
use mesorasi::pointcloud::{morton, Point3, PointCloud};
use mesorasi::tensor::{group, ops, Matrix};
use mesorasi_core::distributivity;
use mesorasi_sim::au::AuConfig;
use mesorasi_sim::npu::NpuConfig;
use proptest::prelude::*;

fn arb_cloud(max_points: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0), 8..max_points).prop_map(
        |pts| {
            PointCloud::from_points(pts.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
        },
    )
}

fn arb_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn morton_encode_decode_round_trips(
        x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)
    ) {
        prop_assert_eq!(morton::decode(morton::encode(x, y, z)), (x, y, z));
    }

    #[test]
    fn kdtree_knn_matches_bruteforce(cloud in arb_cloud(120), k in 1usize..8) {
        prop_assume!(k <= cloud.len());
        let tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..cloud.len()).step_by(5).collect();
        let a = bruteforce::knn_indices(&cloud, &queries, k);
        let b = tree.knn_indices(&cloud, &queries, k);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn morton_sort_preserves_points(cloud in arb_cloud(100)) {
        let sorted = morton::sort_cloud(&cloud);
        prop_assert_eq!(sorted.len(), cloud.len());
        let key = |p: &Point3| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits());
        let mut a: Vec<_> = cloud.points().iter().map(key).collect();
        let mut b: Vec<_> = sorted.points().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn blocked_matmul_matches_naive_reference_bitwise(
        m in 1usize..41, k in 0usize..25, n in 0usize..34, seed in 0u64..1000, zero_every in 0usize..4
    ) {
        // The fast tier (register-tiled, AVX2 where detected) promises bit
        // identity with the pre-tier reference kernel: same ascending-k
        // accumulation order per element, no FMA contraction. Adversarial
        // shapes hit every tail path — m % 4 rows, n % 16 / n % 8 columns,
        // k == 0 and n == 0 empties — and injected exact zeros hit the
        // reference kernel's zero-skip (covered by the ±0.0 identity).
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let mut a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0..2.0f32));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0..2.0f32));
        if zero_every > 0 {
            for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
                if i % (zero_every + 1) == 0 {
                    *v = 0.0;
                }
            }
        }
        let fast = ops::matmul(&a, &b);
        let mut reference = Matrix::zeros(0, 0);
        ops::naive::matmul_into(&a, &b, &mut reference);
        prop_assert_eq!(fast.shape(), reference.shape());
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        prop_assert_eq!(bits(&fast), bits(&reference));
    }

    #[test]
    fn transposed_matmul_variants_match_naive_bitwise(
        p in 1usize..20, m in 1usize..16, n in 1usize..16, seed in 0u64..1000
    ) {
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let a = Matrix::from_fn(p, m, |_, _| rng.gen_range(-2.0..2.0f32));
        let b = Matrix::from_fn(p, n, |_, _| rng.gen_range(-2.0..2.0f32));
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();

        let fast = ops::matmul_at_b(&a, &b);
        let mut reference = Matrix::zeros(0, 0);
        ops::naive::matmul_at_b_into(&a, &b, &mut reference);
        prop_assert_eq!(bits(&fast), bits(&reference));

        let at = a.transposed();
        let bt = b.transposed();
        let fast = ops::matmul_a_bt(&at, &bt);
        let mut reference = Matrix::zeros(0, 0);
        ops::naive::matmul_a_bt_into(&at, &bt, &mut reference);
        prop_assert_eq!(bits(&fast), bits(&reference));
    }

    #[test]
    fn gather_scatter_is_adjoint(m in arb_matrix(4..20, 1..6), seed in 0u64..1000) {
        // <gather(x, idx), y> == <x, scatter(idx, y)> — the adjoint property
        // the autograd backward pass relies on.
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let idx: Vec<usize> = (0..12).map(|_| rng.gen_range(0..m.rows())).collect();
        let y = Matrix::from_fn(idx.len(), m.cols(), |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
        let gathered = group::gather_rows(&m, &idx);
        let lhs: f32 = gathered
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let mut scat = Matrix::zeros(m.rows(), m.cols());
        group::scatter_add_rows(&mut scat, &idx, &y);
        let rhs: f32 = m.as_slice().iter().zip(scat.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn max_before_subtract_identity(pft in arb_matrix(8..24, 1..8), seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let k = rng.gen_range(1..5usize);
        let groups: Vec<usize> = (0..3 * k).map(|_| rng.gen_range(0..pft.rows())).collect();
        let centroids: Vec<usize> = (0..3).map(|_| rng.gen_range(0..pft.rows())).collect();
        let cents = group::gather_rows(&pft, &centroids);
        // subtract-then-max
        let gathered = group::gather_rows(&pft, &groups);
        let offsets = group::subtract_centroid_per_group(&gathered, &cents, k);
        let (a, _) = group::group_max_reduce(&offsets, k);
        // max-then-subtract
        let (reduced, _) = group::gather_max_reduce(&pft, &groups, k);
        let b = ops::sub(&reduced, &cents);
        prop_assert!(ops::sub(&a, &b).max_abs() < 1e-5);
    }

    #[test]
    fn linear_mlp_distributes_exactly(
        a in arb_matrix(4..12, 3..4), b in arb_matrix(4..12, 3..4), seed in 0u64..1000
    ) {
        prop_assume!(a.shape() == b.shape());
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let weights = vec![
            Matrix::from_fn(3, 8, |_, _| rng.gen_range(-0.5..0.5f32)),
            Matrix::from_fn(8, 4, |_, _| rng.gen_range(-0.5..0.5f32)),
        ];
        let lhs = distributivity::linear_forward(&ops::sub(&a, &b), &weights);
        let rhs = ops::sub(
            &distributivity::linear_forward(&a, &weights),
            &distributivity::linear_forward(&b, &weights),
        );
        prop_assert!(ops::sub(&lhs, &rhs).max_abs() < 1e-3);
    }

    #[test]
    fn systolic_cycles_bounded_by_work(m in 1usize..200, k in 1usize..96, n in 1usize..96) {
        let npu = NpuConfig::default();
        let cycles = npu.matmul_cycles(m, k, n);
        let ideal = ((m * k * n) as u64) / (npu.macs_per_cycle() as u64);
        prop_assert!(cycles >= ideal.max(1));
        // And never catastrophically worse than ideal on padded tiles:
        let padded = (m.div_ceil(16) * 16) as u64
            * (n.div_ceil(16) * 16) as u64
            * (k as u64 + 32);
        prop_assert!(cycles * 256 <= padded + 256 * 256);
    }

    #[test]
    fn au_cycles_at_least_streaming_lower_bound(cloud in arb_cloud(100), seed in 0u64..100) {
        use rand::Rng;
        let mut rng = mesorasi::pointcloud::seeded_rng(seed);
        let k = rng.gen_range(1..8usize).min(cloud.len());
        let n_out = rng.gen_range(1..cloud.len().min(16));
        let queries: Vec<usize> = (0..n_out).collect();
        let nit = bruteforce::knn_indices(&cloud, &queries, k);
        let width = rng.gen_range(1..32usize);
        let agg = mesorasi_core::trace::AggregateOp {
            nit,
            table_rows: cloud.len(),
            width,
            rows_per_entry: k + 1,
            fused_reduce: true,
        };
        let r = AuConfig::default().simulate(&agg);
        // At minimum each entry streams its column slice once per partition.
        let cols_pp = width.div_ceil(r.partitions) as u64;
        prop_assert!(r.cycles >= (n_out as u64) * cols_pp);
        prop_assert!(r.time_vs_ideal >= 1.0 - 1e-9);
    }

    #[test]
    fn tile_splitter_covers_every_point_exactly_once(n in 1usize..600, budget in 1usize..300) {
        // Remainder rules under adversarial (n, budget) pairs: tiles are
        // contiguous, in order, every one but the last exactly `budget`
        // points, and concatenating them reproduces 0..n.
        let tiles: Vec<std::ops::Range<usize>> =
            mesorasi_core::engine::TileSplitter::new(budget).tiles(n).collect();
        prop_assert_eq!(tiles.len(), n.div_ceil(budget));
        let mut next = 0usize;
        for (i, tile) in tiles.iter().enumerate() {
            prop_assert_eq!(tile.start, next);
            prop_assert!(tile.end > tile.start, "empty tile");
            if i + 1 < tiles.len() {
                prop_assert_eq!(tile.len(), budget, "only the last tile may run short");
            } else {
                prop_assert!(tile.len() <= budget);
            }
            next = tile.end;
        }
        prop_assert_eq!(next, n);
    }

    #[test]
    fn bank_conflict_rounds_bounded_by_k_and_banks(cloud in arb_cloud(80)) {
        let k = 4usize.min(cloud.len());
        let queries: Vec<usize> = (0..cloud.len().min(8)).collect();
        let nit = bruteforce::knn_indices(&cloud, &queries, k);
        let agg = mesorasi_core::trace::AggregateOp {
            nit,
            table_rows: cloud.len(),
            width: 8,
            rows_per_entry: k + 1,
            fused_reduce: true,
        };
        let r = AuConfig::default().simulate(&agg);
        prop_assert!(r.time_vs_ideal <= k as f64 + 1e-9, "rounds can never exceed K");
    }
}

proptest! {
    // Each case builds five sessions and runs real inference, so the case
    // count is kept low; the strategy still sweeps all seven networks and
    // the {1, 2, 8}-thread pool sizes across a run.
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn tiled_streaming_is_bit_identical_to_untiled(
        net_idx in 0usize..7,
        threads_idx in 0usize..3,
        seed in 0u64..50,
    ) {
        // The tiling contract: a fixed tile budget is a scheduling knob
        // only. For every network, the streamed frame result must be
        // bit-for-bit the sequential untiled result at every budget —
        // including 256 > n (one short tile), n (one exact tile), and
        // n + 1 (a budget that can never fill).
        use mesorasi_networks::registry::NetworkKind;
        use mesorasi_networks::session::SessionBuilder;
        use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

        let kind = NetworkKind::ALL[net_idx];
        let threads = [1usize, 2, 8][threads_idx];
        let untiled =
            SessionBuilder::from_kind(kind).classes(5).workers(1).untiled().build();
        let n = untiled.network().input_points();
        let cloud = sample_shape(ShapeClass::Car, n, seed);
        let want = untiled.frames().infer(&cloud);
        let bits = |m: &mesorasi::tensor::Matrix| {
            m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        let want_bits = bits(want.logits());

        for budget in [64, 256, n, n + 1] {
            let check: Result<(), TestCaseError> = mesorasi_par::with_threads(threads, || {
                let tiled = SessionBuilder::from_kind(kind)
                    .classes(5)
                    .workers(threads)
                    .tile_budget(budget)
                    .build();
                prop_assert_eq!(tiled.tile_budget(), Some(budget));
                let got = tiled.frames().infer(&cloud);
                prop_assert_eq!(
                    bits(got.logits()),
                    want_bits.clone(),
                    "budget {} threads {} on {}", budget, threads, kind.name()
                );
                prop_assert_eq!(&got, &want, "full result must match, not just logits");
                Ok(())
            });
            check?;
        }
    }
}
