//! Invariants linking the algorithm layer to the hardware models: what the
//! paper claims structurally must hold on every trace this implementation
//! produces.

use mesorasi::core::Strategy;
use mesorasi::networks::registry::NetworkKind;
use mesorasi::nn::Graph;
use mesorasi::pointcloud::parts;
use mesorasi::pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi::pointcloud::PointCloud;
use mesorasi::sim::soc::{simulate, Platform, SocConfig};
use mesorasi_core::NetworkTrace;

fn input_for(kind: NetworkKind, points: usize) -> PointCloud {
    match kind {
        NetworkKind::PointNetPPSegmentation | NetworkKind::DgcnnSegmentation => {
            parts::sample_labelled(parts::categories()[1], points, 5)
        }
        NetworkKind::FPointNet => {
            let frustums = mesorasi::networks::datasets::frustums(3, points, 5);
            frustums.into_iter().next().expect("at least one frustum").cloud
        }
        _ => sample_shape(ShapeClass::Chair, points, 5),
    }
}

fn small_traces(kind: NetworkKind) -> Vec<(Strategy, NetworkTrace)> {
    let mut rng = mesorasi::pointcloud::seeded_rng(1);
    let net = kind.build_small(4, &mut rng);
    let cloud = input_for(kind, net.input_points());
    Strategy::ALL
        .iter()
        .map(|&s| {
            let mut g = Graph::new();
            (s, net.forward(&mut g, &cloud, s, 7).trace)
        })
        .collect()
}

#[test]
fn mac_ordering_delayed_le_ltd_le_original_for_all_networks() {
    for kind in NetworkKind::ALL {
        let traces = small_traces(kind);
        let macs: Vec<u64> = traces.iter().map(|(_, t)| t.mlp_macs()).collect();
        let (orig, ltd, delayed) = (macs[0], macs[1], macs[2]);
        assert!(delayed <= ltd, "{}: delayed {delayed} > ltd {ltd}", kind.name());
        assert!(ltd <= orig, "{}: ltd {ltd} > original {orig}", kind.name());
        assert!(delayed < orig, "{}: delayed must strictly reduce MACs", kind.name());
    }
}

#[test]
fn delayed_widens_the_gather_working_set() {
    // §IV-C: aggregation gathers from N_in × M_out instead of N_in × M_in.
    for kind in [NetworkKind::PointNetPPClassification, NetworkKind::FPointNet] {
        let traces = small_traces(kind);
        let ws =
            |t: &NetworkTrace| -> u64 { t.aggregations().map(|a| a.working_set_bytes()).sum() };
        let orig = ws(&traces[0].1);
        let delayed = ws(&traces[2].1);
        assert!(delayed > orig, "{}: {delayed} <= {orig}", kind.name());
    }
}

#[test]
fn strategies_share_neighbor_structure() {
    for kind in NetworkKind::ALL {
        if matches!(kind, NetworkKind::DgcnnClassification | NetworkKind::DgcnnSegmentation) {
            // DGCNN searches in evolving feature spaces, which legitimately
            // differ across strategies after module 1.
            continue;
        }
        let traces = small_traces(kind);
        let firsts: Vec<_> = traces
            .iter()
            .map(|(_, t)| t.aggregations().next().map(|a| a.nit.neighbors_flat().to_vec()))
            .collect();
        assert_eq!(firsts[0], firsts[1], "{}: original vs ltd", kind.name());
        assert_eq!(firsts[1], firsts[2], "{}: ltd vs delayed", kind.name());
    }
}

#[test]
fn overlap_never_increases_latency() {
    let cfg = SocConfig::default();
    for kind in NetworkKind::ALL {
        for (strategy, trace) in small_traces(kind) {
            let sw = simulate(&trace, Platform::MesorasiSw, &cfg);
            for m in &sw.modules {
                let serial = m.search_ms + m.pre_ms + m.agg_ms + m.post_ms + m.other_ms;
                assert!(
                    m.critical_ms <= serial + 1e-12,
                    "{} {strategy} {}: scheduled {} > serial {serial}",
                    kind.name(),
                    m.name,
                    m.critical_ms
                );
            }
        }
    }
}

#[test]
fn au_is_never_slower_than_gpu_on_fused_aggregations() {
    let cfg = SocConfig::default();
    for kind in NetworkKind::ALL {
        let traces = small_traces(kind);
        let delayed = &traces[2].1;
        let sw = simulate(delayed, Platform::MesorasiSw, &cfg);
        let hw = simulate(delayed, Platform::MesorasiHw, &cfg);
        for (m_sw, m_hw) in sw.modules.iter().zip(&hw.modules) {
            if m_sw.agg_ms > 0.0 {
                assert!(
                    m_hw.agg_ms <= m_sw.agg_ms * 1.01,
                    "{} {}: AU {} ms vs GPU {} ms",
                    kind.name(),
                    m_sw.name,
                    m_hw.agg_ms,
                    m_sw.agg_ms
                );
            }
        }
    }
}

#[test]
fn simulation_outputs_are_finite_and_positive() {
    let cfg = SocConfig::default();
    for kind in NetworkKind::ALL {
        for (strategy, trace) in small_traces(kind) {
            for platform in Platform::ALL {
                let r = simulate(&trace, platform, &cfg);
                assert!(
                    r.total_ms().is_finite() && r.total_ms() > 0.0,
                    "{} {strategy} {platform:?}: ms = {}",
                    kind.name(),
                    r.total_ms()
                );
                assert!(
                    r.total_mj().is_finite() && r.total_mj() > 0.0,
                    "{} {strategy} {platform:?}: mj = {}",
                    kind.name(),
                    r.total_mj()
                );
            }
        }
    }
}

#[test]
fn nse_strictly_reduces_search_time() {
    let plain = SocConfig::default();
    let with_nse = SocConfig::with_nse();
    for kind in [NetworkKind::DgcnnClassification, NetworkKind::PointNetPPClassification] {
        let traces = small_traces(kind);
        let delayed = &traces[2].1;
        let a = simulate(delayed, Platform::MesorasiHw, &plain);
        let b = simulate(delayed, Platform::MesorasiHw, &with_nse);
        assert!(
            b.stage_ms(mesorasi::core::Stage::NeighborSearch)
                < a.stage_ms(mesorasi::core::Stage::NeighborSearch),
            "{}",
            kind.name()
        );
    }
}
