//! Slice sampling helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates in-place shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "seed 9 should move something");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
