//! Offline drop-in shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace cannot depend on crates.io. This crate re-implements only
//! what the Mesorasi reproduction calls: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic and
//! high quality, but it does NOT bit-match upstream `rand`'s ChaCha-based
//! `StdRng`. All workspace code seeds explicitly and asserts on behaviour,
//! not on specific sampled values, so the stream difference is unobservable.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their "natural" range by [`Rng::gen`]:
/// `[0, 1)` for floats, the full domain for integers and `bool`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // start + u*(end-start) can round up to exactly `end`
                // (e.g. 100.0..100.1 with u near 1); keep the bound exclusive.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f32..4.5);
            assert!((-2.5..4.5).contains(&f));
            let n = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_range_float_never_returns_exclusive_end() {
        // start + u*(end-start) rounds up to `end` for u near 1 on narrow
        // ranges like this one; the clamp must keep the bound exclusive.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let v = rng.gen_range(100.0f32..100.1);
            assert!((100.0..100.1).contains(&v), "got {v}");
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
