//! Offline drop-in shim for the subset of `criterion` 0.5 this workspace
//! uses (the build environment has no network access).
//!
//! It keeps the same authoring surface — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `black_box` — but replaces the
//! statistics engine with a simple time-budgeted sampler: each benchmark is
//! warmed up once, run for up to `sample_size` samples or
//! [`Criterion::SAMPLE_BUDGET`], and reported as mean wall-clock time per
//! iteration on stdout. No HTML reports, no `target/criterion` output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; all variants behave identically here
/// (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Wall-clock budget per benchmark after warm-up.
    pub const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; collects timed iterations.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        let deadline = Instant::now() + Criterion::SAMPLE_BUDGET;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        let deadline = Instant::now() + Criterion::SAMPLE_BUDGET;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<56} (no samples collected)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<56} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function `$name` that runs each `$target(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group declared by `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + up to 5 samples.
        assert!(runs >= 2);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 2);
    }
}
