//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Element-count specification for [`vec()`]: a fixed size or a half-open
/// range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
