//! Offline drop-in shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no network access, so this crate provides a
//! minimal property-testing engine: random-input generation via [`Strategy`](strategy::Strategy)
//! (ranges, tuples, `collection::vec`, `prop_map`, `prop_flat_map`), a
//! deterministic per-test-name seeded runner, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros. Unlike upstream there is no
//! shrinking: a failing case reports its seed so it can be replayed, but is
//! not minimized.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` accepted executions of `case`, feeding each a distinct
/// deterministically-seeded RNG. `case` returns `Ok` (counted), a rejection
/// (retried, bounded), or a failure (panics with the replay seed).
pub fn run_cases(
    test_name: &str,
    config: &test_runner::ProptestConfig,
    mut case: impl FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;

    // PROPTEST_REPLAY=<seed> re-runs exactly the one failing case a
    // previous failure message reported.
    if let Ok(replay) = std::env::var("PROPTEST_REPLAY") {
        let seed: u64 = replay.parse().unwrap_or_else(|_| {
            panic!("PROPTEST_REPLAY must be a u64 seed, got '{replay}'");
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => return,
            Err(test_runner::TestCaseError::Reject(why)) => {
                panic!("proptest '{test_name}' replay seed {seed}: input rejected ({why})")
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{test_name}' replay seed {seed} failed: {msg}")
            }
        }
    }

    let base = test_name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16 + 64;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempts);
        attempts += 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{test_name}': too many input rejections \
                         ({accepted}/{} cases accepted after {attempts} attempts)",
                        config.cases
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed: {msg}\n\
                     replay with: PROPTEST_REPLAY={seed} cargo test {test_name}"
                );
            }
        }
    }
}

/// Generates one `#[test]` per contained `fn name(arg in strategy, ...)`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    let ($($argpat,)+) =
                        $crate::strategy::Strategy::new_value(&__strategy, __rng);
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Rejects the current case (retried with fresh inputs) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ. Like upstream, an
/// optional trailing format message is appended to the mismatch report.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            ::std::format!($($fmt)+),
            lhs,
            rhs
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vec_compose(v in prop::collection::vec((0u32..10, 0u32..10), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
        }

        #[test]
        fn map_and_flat_map(n in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0i32..100, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(k in 0u32..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "PROPTEST_REPLAY=")]
    fn failing_case_reports_seed() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
