//! Input-generation strategies (subset of `proptest::strategy`).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for producing random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a fresh value from the runner's RNG.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed value used as a strategy (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).new_value(rng)
    }
}
