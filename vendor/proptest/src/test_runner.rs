//! Runner configuration and case outcomes (subset of
//! `proptest::test_runner`).

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The inputs violated a `prop_assume!`; the case is retried, not failed.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

/// Per-test configuration (subset of upstream's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
