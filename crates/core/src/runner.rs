//! Module orchestration: centroid sampling, neighbor search, execution,
//! trace recording.
//!
//! [`run_module`] is the single entry point the networks use. It selects
//! centroids (random sampling, the paper's optimized baseline, §VI), runs
//! the configured neighbor search, dispatches to the right
//! [`crate::executor`] variant for the strategy, and records a
//! [`ModuleTrace`] with the real NIT so the hardware simulator can replay
//! exactly what happened.

use crate::engine::{rec, StateSource};
use crate::executor;
use crate::module::{Module, NeighborMode};
use crate::strategy::Strategy;
use crate::trace::{AggregateOp, MatMulOp, ModuleTrace, ReduceOp, SearchOp};
use mesorasi_knn::bruteforce::Candidate;
use mesorasi_knn::{feature::FeatureView, NeighborIndexTable, SearchContext};
use mesorasi_nn::layers::SharedMlp;
use mesorasi_nn::{Graph, VarId};
use mesorasi_pointcloud::{sampling, Point3, PointCloud};
use mesorasi_tensor::Matrix;
use std::cell::RefCell;
use std::sync::Arc;

/// The data flowing between modules: 3-D positions (for coordinate-space
/// search and interpolation) and the per-point feature rows on the graph.
#[derive(Debug, Clone)]
pub struct ModuleState {
    /// Positions of the current point set.
    pub positions: PointCloud,
    /// `N × M` feature rows on the autograd graph.
    pub features: VarId,
}

impl ModuleState {
    /// Initial state: features are the raw `N × 3` coordinates (the paper's
    /// first-module input).
    ///
    /// Under plan recording the *first* `from_cloud` of a forward pass is
    /// taken to be the sample itself; later input states must use
    /// [`ModuleState::from_cloud_derived`] so the plan can re-derive them.
    pub fn from_cloud(g: &mut Graph, cloud: &PointCloud) -> Self {
        let features = g.input(Matrix::from_vec(cloud.len(), 3, cloud.to_xyz_rows()));
        rec::input_state(features, cloud, None);
        ModuleState { positions: cloud.clone(), features }
    }

    /// Like [`ModuleState::from_cloud`], for a cloud that is a pure,
    /// deterministic function of the sample (e.g. F-PointNet's masked and
    /// recentered crop). `derive` must reproduce `cloud` when applied to
    /// the sample this forward pass runs on; the inference plan replays it
    /// per sample.
    pub fn from_cloud_derived(
        g: &mut Graph,
        cloud: &PointCloud,
        derive: Arc<dyn Fn(&PointCloud) -> PointCloud + Send + Sync>,
    ) -> Self {
        let features = g.input(Matrix::from_vec(cloud.len(), 3, cloud.to_xyz_rows()));
        rec::input_state(features, cloud, Some(StateSource::Derived(derive)));
        ModuleState { positions: cloud.clone(), features }
    }

    /// Like [`ModuleState::from_cloud_derived`], but the derivation writes
    /// into the engine's persistent per-state buffer (`derive(sample,
    /// out)`) instead of returning a fresh cloud — the streaming form. A
    /// warm engine replays it with zero heap allocations as long as the
    /// derivation itself reuses its own scratch.
    pub fn from_cloud_derived_into(
        g: &mut Graph,
        cloud: &PointCloud,
        derive: crate::engine::DeriveIntoFn,
    ) -> Self {
        let features = g.input(Matrix::from_vec(cloud.len(), 3, cloud.to_xyz_rows()));
        rec::input_state(features, cloud, Some(StateSource::DerivedInto(derive)));
        ModuleState { positions: cloud.clone(), features }
    }

    /// A state carrying this state's positions but different features
    /// (skip links, dense feature concatenation). Registers the new
    /// features with the inference recorder as sitting on the same
    /// positions — build derived states through this rather than a struct
    /// literal, or the forward pass cannot be planned.
    pub fn with_features(&self, features: VarId) -> ModuleState {
        rec::alias_state(self.features, features);
        ModuleState { positions: self.positions.clone(), features }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the state holds no points.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Result of running one module.
#[derive(Debug)]
pub struct RunOutput {
    /// The output point set and features.
    pub state: ModuleState,
    /// The recorded workload.
    pub trace: ModuleTrace,
    /// The neighbor table used (absent for group-all modules).
    pub nit: Option<NeighborIndexTable>,
}

/// Selects `n_out` centroid indices from `n_in` points. Uses the identity
/// selection when sizes match (DGCNN keeps all points), random sampling
/// otherwise — matching the paper's optimized baseline, which replaced FPS
/// with random sampling (§VI, optimization 3).
pub fn select_centroids(positions: &PointCloud, n_out: usize, seed: u64) -> Vec<usize> {
    let mut out = Vec::new();
    select_centroids_into(positions, n_out, seed, &mut Vec::new(), &mut out);
    out
}

/// [`select_centroids`] writing into caller-owned buffers (`shuffle` holds
/// the permutation scratch of the random path) — the engine's streaming
/// replay re-derives centroid selections without allocating. Bit-identical
/// to [`select_centroids`].
pub fn select_centroids_into(
    positions: &PointCloud,
    n_out: usize,
    seed: u64,
    shuffle: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    assert!(
        n_out <= positions.len(),
        "cannot select {n_out} centroids from {} points",
        positions.len()
    );
    if n_out == positions.len() {
        out.clear();
        out.extend(0..n_out);
    } else {
        sampling::random_indices_into(positions.len(), n_out, seed, shuffle, out);
    }
}

thread_local! {
    /// The tape path's search context: persistent per thread so consecutive
    /// modules (and consecutive forwards) searching the same cloud share
    /// one built index. Keyed by cloud content hash, verified bit-exactly,
    /// so sharing can never change a result.
    static TAPE_SEARCH: RefCell<SearchContext> = RefCell::new(SearchContext::new());
}

/// Runs the neighbor search of one module: the single search
/// implementation behind both the tape-based runner and the inference
/// engine's per-sample replay (both must produce the identical NIT).
/// The backend is chosen by the [`mesorasi_knn::SearchPlanner`] cost model
/// (override with `MESORASI_SEARCH`); every backend is exact with
/// identical tie-breaking, so the choice never changes the NIT.
///
/// `features` is required exactly for [`NeighborMode::FeatureKnn`].
///
/// # Panics
///
/// Panics for [`NeighborMode::Global`] (global modules never search) or a
/// missing feature matrix on a feature-space search.
pub fn search_nit(
    positions: &PointCloud,
    features: Option<&Matrix>,
    neighbor: NeighborMode,
    centroids: &[usize],
    k: usize,
) -> NeighborIndexTable {
    let mut out = NeighborIndexTable::default();
    TAPE_SEARCH.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let space = positions.content_hash();
        search_nit_into(&mut ctx, space, positions, features, neighbor, centroids, k, &mut out);
    });
    out
}

/// [`search_nit`] against an explicit [`SearchContext`], writing into a
/// caller-owned table. `space` identifies the search space for index
/// sharing: the engine passes its module-state id (stable across frames,
/// so streaming rebuilds indices in place), the tape wrapper passes the
/// cloud's content hash.
#[allow(clippy::too_many_arguments)]
pub fn search_nit_into(
    ctx: &mut SearchContext,
    space: u64,
    positions: &PointCloud,
    features: Option<&Matrix>,
    neighbor: NeighborMode,
    centroids: &[usize],
    k: usize,
    out: &mut NeighborIndexTable,
) {
    match neighbor {
        NeighborMode::CoordKnn => ctx.knn_into(space, positions, centroids, k, out),
        NeighborMode::CoordBall { radius } => {
            ctx.ball_into(space, positions, centroids, radius, k, out)
        }
        NeighborMode::FeatureKnn => {
            let feats = features.expect("feature-space search needs the feature matrix");
            let view = FeatureView::new(feats.as_slice(), feats.cols())
                .expect("matrix storage is always rectangular");
            ctx.feature_knn_into(view, centroids, k, out);
        }
        NeighborMode::Global => unreachable!("global modules never search"),
    }
}

fn run_search(
    g: &Graph,
    module: &Module,
    state: &ModuleState,
    centroids: &[usize],
) -> (NeighborIndexTable, SearchOp) {
    let n_in = state.len();
    let k = module.config.k;
    assert!(k <= n_in, "{}: k = {k} exceeds N_in = {n_in}", module.config.name);
    let features = g.value(state.features);
    let nit = search_nit(&state.positions, Some(features), module.config.neighbor, centroids, k);
    let (dim, radius_query) = match module.config.neighbor {
        NeighborMode::CoordKnn => (3, false),
        NeighborMode::CoordBall { .. } => (3, true),
        NeighborMode::FeatureKnn => (features.cols(), false),
        NeighborMode::Global => unreachable!("global modules never search"),
    };
    (nit, SearchOp { queries: centroids.len(), candidates: n_in, dim, k, radius_query })
}

/// Builds the MLP-layer trace ops for a batch of `rows` rows through the
/// module's (constructed) layer widths.
fn mlp_ops(widths: &[usize], rows: usize) -> Vec<MatMulOp> {
    widths.windows(2).map(|w| MatMulOp { rows, inner: w[0], cols: w[1] }).collect()
}

/// Runs one module under `strategy`, producing the output state, the
/// workload trace, and the NIT used.
///
/// # Panics
///
/// Panics when the state is inconsistent with the module configuration
/// (wrong feature width, `n_out` or `k` larger than the input).
pub fn run_module(
    g: &mut Graph,
    module: &Module,
    state: &ModuleState,
    strategy: Strategy,
    seed: u64,
) -> RunOutput {
    let cfg = &module.config;
    let n_in = state.len();
    assert_eq!(
        g.value(state.features).rows(),
        n_in,
        "{}: positions and features disagree on N_in",
        cfg.name
    );

    if matches!(cfg.neighbor, NeighborMode::Global) {
        let features = executor::global_module(g, module, state.features);
        rec::global_state(features);
        let out_positions = PointCloud::from_points(vec![centroid_or_origin(&state.positions)]);
        let widths = cfg.layer_widths();
        let trace = ModuleTrace {
            name: cfg.name.clone(),
            search: None,
            mlp_pre: Vec::new(),
            aggregate: None,
            mlp_post: mlp_ops(&widths, n_in),
            reduce: Some(ReduceOp { groups: 1, k: n_in, width: cfg.m_out() }),
            other_flops: 0,
            other_bytes: 0,
        };
        return RunOutput {
            state: ModuleState { positions: out_positions, features },
            trace,
            nit: None,
        };
    }

    let centroids = select_centroids(&state.positions, cfg.n_out, seed);
    let (nit, search_op) = run_search(g, module, state, &centroids);
    let out_positions = state.positions.select(&centroids);

    rec::begin_search(g.len(), state.features, cfg.neighbor, cfg.n_out, cfg.k, seed);
    let features = match (cfg.edge, strategy) {
        (false, Strategy::Original) => executor::original_offset(g, module, state.features, &nit),
        (false, Strategy::LtdDelayed) => executor::ltd_offset(g, module, state.features, &nit),
        (false, Strategy::Delayed) => executor::delayed_offset(g, module, state.features, &nit),
        (true, Strategy::Original) => executor::original_edge(g, module, state.features, &nit),
        (true, Strategy::LtdDelayed) => executor::ltd_edge(g, module, state.features, &nit),
        (true, Strategy::Delayed) => executor::delayed_edge(g, module, state.features, &nit),
    };
    rec::end_search(features, &out_positions);

    let trace = build_module_trace(cfg.name.clone(), module, strategy, n_in, &nit, search_op);
    RunOutput { state: ModuleState { positions: out_positions, features }, trace, nit: Some(nit) }
}

/// Computes the 3-NN inverse-distance interpolation stencil lifting
/// `coarse` features onto `fine` points — shared by the tape-based
/// [`run_feature_propagation`] and the inference engine's replay (both must
/// produce bit-identical index/weight vectors). Returns `(indices,
/// weights)`, flattened `n_fine × 3`.
///
/// # Panics
///
/// Panics when `coarse` has fewer than 3 points.
pub fn fp_stencils(coarse: &PointCloud, fine: &PointCloud) -> (Vec<usize>, Vec<f32>) {
    let (mut indices, mut weights) = (Vec::new(), Vec::new());
    fp_stencils_into(coarse, fine, &mut indices, &mut weights);
    (indices, weights)
}

/// [`fp_stencils`] writing into caller-owned buffers, reusing their
/// capacity — the engine's streaming replay recomputes interpolation
/// stencils per frame without allocating. Bit-identical to
/// [`fp_stencils`]: the 3 nearest coarse points under `(distance, index)`
/// ordering are unique, and the weight arithmetic is unchanged.
///
/// # Panics
///
/// Panics when `coarse` has fewer than 3 points.
pub fn fp_stencils_into(
    coarse: &PointCloud,
    fine: &PointCloud,
    indices: &mut Vec<usize>,
    weights: &mut Vec<f32>,
) {
    let n_coarse = coarse.len();
    assert!(n_coarse >= 3, "3-NN interpolation needs at least 3 coarse points");
    let n_fine = fine.len();
    indices.clear();
    indices.resize(n_fine * 3, 0);
    weights.clear();
    weights.resize(n_fine * 3, 0.0);
    // Each fine point's stencil is independent: split the flat output
    // buffers into per-chunk slices and search the chunks in parallel.
    let chunk = mesorasi_par::chunk_len(n_fine, n_coarse * 8);
    let (fine_pts, coarse_pts) = (fine.points(), coarse.points());
    mesorasi_par::par_chunks_mut_pair(indices, weights, chunk * 3, chunk * 3, |ci, ic, wc| {
        for (j, p) in fine_pts[ci * chunk..].iter().take(ic.len() / 3).enumerate() {
            let nn = knn3(coarse_pts, *p);
            let mut w = [0f32; 3];
            for (wi, c) in w.iter_mut().zip(&nn) {
                *wi = 1.0 / (c.dist_sq + 1e-8);
            }
            let sum: f32 = w.iter().sum();
            for t in 0..3 {
                ic[j * 3 + t] = nn[t].index;
                wc[j * 3 + t] = w[t] / sum;
            }
        }
    });
}

/// The exact 3 nearest `points` to `query`, ascending by
/// `(distance, index)` — a fixed-size, allocation-free specialization of
/// [`mesorasi_knn::bruteforce::knn_point`] for the interpolation stencils.
fn knn3(points: &[Point3], query: Point3) -> [Candidate; 3] {
    debug_assert!(points.len() >= 3);
    let mut best = [Candidate { index: usize::MAX, dist_sq: f32::INFINITY }; 3];
    let key = |c: &Candidate| (c.dist_sq, c.index);
    for (i, &p) in points.iter().enumerate() {
        let c = Candidate { index: i, dist_sq: p.distance_squared(query) };
        if key(&c) >= key(&best[2]) {
            continue;
        }
        if key(&c) < key(&best[0]) {
            best[2] = best[1];
            best[1] = best[0];
            best[0] = c;
        } else if key(&c) < key(&best[1]) {
            best[2] = best[1];
            best[1] = c;
        } else {
            best[2] = c;
        }
    }
    best
}

fn centroid_or_origin(cloud: &PointCloud) -> Point3 {
    if cloud.is_empty() {
        Point3::ORIGIN
    } else {
        cloud.centroid()
    }
}

/// Builds the [`ModuleTrace`] describing how `strategy` schedules this
/// module's work (see [`ModuleTrace`] for the placement rules).
fn build_module_trace(
    name: String,
    module: &Module,
    strategy: Strategy,
    n_in: usize,
    nit: &NeighborIndexTable,
    search: SearchOp,
) -> ModuleTrace {
    let cfg = &module.config;
    let widths = cfg.layer_widths();
    let n_out = nit.len();
    let k = nit.k();
    let edge_rows = n_out * k;
    let m_out = cfg.m_out();

    let (mlp_pre, mlp_post, aggregate, reduce) = match strategy {
        Strategy::Original => {
            // The grouping gather moves each neighbor row (plus the
            // centroid row) of the *input* features; the edge concatenation
            // itself is feature-computation work.
            let agg_width = cfg.m_in();
            let rows_per_entry = k + 1;
            (
                Vec::new(),
                mlp_ops(&widths, edge_rows),
                AggregateOp {
                    nit: nit.clone(),
                    table_rows: n_in,
                    width: agg_width,
                    rows_per_entry,
                    fused_reduce: false,
                },
                Some(ReduceOp { groups: n_out, k, width: m_out }),
            )
        }
        Strategy::LtdDelayed => {
            // Layer 1 runs per point before aggregation; the tail per edge.
            let w1 = widths[1];
            let pre = vec![MatMulOp { rows: n_in, inner: widths[0], cols: w1 }];
            let mut post = mlp_ops(&widths[1..], edge_rows);
            post.retain(|_| true);
            let rows_per_entry = if cfg.edge { k + 2 } else { k + 1 };
            (
                pre,
                post,
                AggregateOp {
                    nit: nit.clone(),
                    table_rows: n_in,
                    width: w1,
                    rows_per_entry,
                    fused_reduce: false,
                },
                Some(ReduceOp { groups: n_out, k, width: m_out }),
            )
        }
        Strategy::Delayed => {
            // Whole MLP per point; aggregation fused with reduce+subtract.
            // Edge modules run the tail on the N_out reduced rows.
            let (pre, post) = if cfg.edge {
                let w1 = widths[1];
                let pre = vec![MatMulOp { rows: n_in, inner: widths[0], cols: w1 }];
                let post = mlp_ops(&widths[1..], n_out);
                (pre, post)
            } else {
                (mlp_ops(&widths, n_in), Vec::new())
            };
            let width = if cfg.edge { widths[1] } else { m_out };
            (
                pre,
                post,
                AggregateOp {
                    nit: nit.clone(),
                    table_rows: n_in,
                    width,
                    rows_per_entry: k + 1,
                    fused_reduce: true,
                },
                None,
            )
        }
    };

    ModuleTrace {
        name,
        search: Some(search),
        mlp_pre,
        aggregate: Some(aggregate),
        mlp_post,
        reduce,
        other_flops: 0,
        other_bytes: 0,
    }
}

/// Feature propagation (PointNet++'s segmentation upsampling): for each
/// fine-level point, interpolate the 3 nearest coarse points' features with
/// inverse-distance weights, concatenate skip features if given, and run a
/// unit MLP. The paper's baseline moved this operator (`three_interpolate`)
/// to the GPU (§VI, optimization 2); delayed-aggregation does not change it.
///
/// # Panics
///
/// Panics when the coarse state has fewer than 3 points (one remains valid:
/// the global feature is broadcast instead, PointNet++'s convention).
pub fn run_feature_propagation(
    g: &mut Graph,
    mlp: &SharedMlp,
    coarse: &ModuleState,
    fine_positions: &PointCloud,
    skip_features: Option<VarId>,
    trace_name: &str,
) -> (ModuleState, ModuleTrace) {
    let n_fine = fine_positions.len();
    let n_coarse = coarse.len();
    assert!(n_coarse >= 1, "feature propagation needs at least one coarse point");
    let coarse_width = g.value(coarse.features).cols();

    let interpolated = if n_coarse < 3 {
        // Broadcast the (global) coarse feature to every fine point — the
        // index list is structural (all zeros), so no dynamic binding.
        let idx = vec![0usize; n_fine];
        g.gather(coarse.features, idx)
    } else {
        let (indices, weights) = fp_stencils(&coarse.positions, fine_positions);
        g.weighted_gather(coarse.features, indices, weights, 3)
    };
    let stencil_var = (n_coarse >= 3).then_some(interpolated);

    let combined = match skip_features {
        Some(skip) => g.hstack(skip, interpolated),
        None => interpolated,
    };
    let features = mlp.forward(g, combined);
    rec::feature_propagation(coarse.features, fine_positions, stencil_var, features);

    let interp_k = if n_coarse < 3 { 1 } else { 3 };
    let trace = ModuleTrace {
        name: trace_name.to_owned(),
        search: Some(SearchOp {
            queries: n_fine,
            candidates: n_coarse,
            dim: 3,
            k: interp_k,
            radius_query: false,
        }),
        mlp_pre: Vec::new(),
        aggregate: None,
        mlp_post: mlp_ops(&mlp.widths(), n_fine),
        reduce: None,
        other_flops: (n_fine as u64) * (interp_k as u64) * (coarse_width as u64) * 2,
        other_bytes: (n_fine as u64) * (interp_k as u64) * (coarse_width as u64) * 4,
    };
    (ModuleState { positions: fine_positions.clone(), features }, trace)
}

/// Runs a plain MLP head (fully-connected classifier layers) and records
/// its trace as `Other`-stage work.
pub fn run_head(
    g: &mut Graph,
    mlp: &SharedMlp,
    features: VarId,
    trace_name: &str,
) -> (VarId, ModuleTrace) {
    let rows = g.value(features).rows();
    let out = mlp.forward(g, features);
    let trace = ModuleTrace {
        name: trace_name.to_owned(),
        mlp_post: mlp_ops(&mlp.widths(), rows),
        ..ModuleTrace::default()
    };
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleConfig;
    use mesorasi_nn::layers::NormMode;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn cloud() -> PointCloud {
        sample_shape(ShapeClass::Lamp, 96, 3)
    }

    fn offset_module(widths: Vec<usize>) -> Module {
        let mut rng = mesorasi_pointcloud::seeded_rng(1);
        Module::new(
            ModuleConfig::offset("sa", 24, 8, NeighborMode::CoordKnn, widths),
            NormMode::None,
            &mut rng,
        )
    }

    #[test]
    fn run_module_produces_subsampled_state() {
        let module = offset_module(vec![3, 16, 32]);
        let mut g = Graph::new();
        let state = ModuleState::from_cloud(&mut g, &cloud());
        let out = run_module(&mut g, &module, &state, Strategy::Delayed, 7);
        assert_eq!(out.state.len(), 24);
        assert_eq!(g.value(out.state.features).shape(), (24, 32));
        assert_eq!(out.nit.as_ref().unwrap().len(), 24);
        // Output positions are a subset of input positions.
        for p in out.state.positions.points() {
            assert!(cloud().points().contains(p));
        }
    }

    #[test]
    fn trace_schedules_mlp_per_strategy() {
        let module = offset_module(vec![3, 16, 32]);
        for (strategy, pre, post) in [
            (Strategy::Original, 0usize, 2usize),
            (Strategy::LtdDelayed, 1, 1),
            (Strategy::Delayed, 2, 0),
        ] {
            let mut g = Graph::new();
            let state = ModuleState::from_cloud(&mut g, &cloud());
            let out = run_module(&mut g, &module, &state, strategy, 7);
            assert_eq!(out.trace.mlp_pre.len(), pre, "{strategy}");
            assert_eq!(out.trace.mlp_post.len(), post, "{strategy}");
            let agg = out.trace.aggregate.as_ref().unwrap();
            assert_eq!(agg.fused_reduce, strategy == Strategy::Delayed);
            assert_eq!(out.trace.reduce.is_none(), strategy == Strategy::Delayed);
        }
    }

    #[test]
    fn delayed_trace_has_fewer_macs_but_wider_gather() {
        let module = offset_module(vec![3, 16, 32]);
        let mut g = Graph::new();
        let state = ModuleState::from_cloud(&mut g, &cloud());
        let orig = run_module(&mut g, &module, &state, Strategy::Original, 7);
        let mut g2 = Graph::new();
        let state2 = ModuleState::from_cloud(&mut g2, &cloud());
        let del = run_module(&mut g2, &module, &state2, Strategy::Delayed, 7);
        assert!(del.trace.mlp_macs() < orig.trace.mlp_macs(), "fewer MACs (Fig. 9)");
        let wo = orig.trace.aggregate.as_ref().unwrap().working_set_bytes();
        let wd = del.trace.aggregate.as_ref().unwrap().working_set_bytes();
        assert!(wd > wo, "wider gather working set (§IV-C)");
    }

    #[test]
    fn same_seed_same_nit_across_strategies() {
        // The comparison experiments rely on all strategies sharing the
        // neighbor structure for a given input and seed.
        let module = offset_module(vec![3, 8]);
        let mut nits = Vec::new();
        for strategy in Strategy::ALL {
            let mut g = Graph::new();
            let state = ModuleState::from_cloud(&mut g, &cloud());
            let out = run_module(&mut g, &module, &state, strategy, 99);
            nits.push(out.nit.unwrap());
        }
        assert_eq!(nits[0], nits[1]);
        assert_eq!(nits[1], nits[2]);
    }

    #[test]
    fn global_module_state_is_single_point() {
        let mut rng = mesorasi_pointcloud::seeded_rng(2);
        let module = Module::new(ModuleConfig::global("g", vec![3, 64]), NormMode::None, &mut rng);
        let mut g = Graph::new();
        let state = ModuleState::from_cloud(&mut g, &cloud());
        let out = run_module(&mut g, &module, &state, Strategy::Original, 0);
        assert_eq!(out.state.len(), 1);
        assert_eq!(g.value(out.state.features).shape(), (1, 64));
        assert!(out.nit.is_none());
        assert!(out.trace.search.is_none());
    }

    #[test]
    fn feature_knn_module_runs() {
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        let module =
            Module::new(ModuleConfig::edge("ec", 96, 4, vec![3, 12]), NormMode::None, &mut rng);
        let mut g = Graph::new();
        let state = ModuleState::from_cloud(&mut g, &cloud());
        let out = run_module(&mut g, &module, &state, Strategy::Delayed, 0);
        assert_eq!(out.state.len(), 96);
        assert_eq!(g.value(out.state.features).shape(), (96, 12));
        // Feature-space search dims recorded.
        assert_eq!(out.trace.search.as_ref().unwrap().dim, 3);
    }

    #[test]
    fn feature_propagation_upsamples() {
        let module = offset_module(vec![3, 16]);
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        let fp_mlp = SharedMlp::new(&[16, 8], NormMode::None, true, &mut rng);
        let mut g = Graph::new();
        let fine = cloud();
        let state = ModuleState::from_cloud(&mut g, &fine);
        let coarse = run_module(&mut g, &module, &state, Strategy::Delayed, 7).state;
        let (up, trace) = run_feature_propagation(&mut g, &fp_mlp, &coarse, &fine, None, "fp1");
        assert_eq!(up.len(), 96);
        assert_eq!(g.value(up.features).shape(), (96, 8));
        assert_eq!(trace.search.as_ref().unwrap().k, 3);
    }

    #[test]
    fn feature_propagation_broadcasts_from_global() {
        let mut rng = mesorasi_pointcloud::seeded_rng(5);
        let gmod = Module::new(ModuleConfig::global("g", vec![3, 32]), NormMode::None, &mut rng);
        let fp_mlp = SharedMlp::new(&[32, 16], NormMode::None, true, &mut rng);
        let mut g = Graph::new();
        let fine = cloud();
        let state = ModuleState::from_cloud(&mut g, &fine);
        let coarse = run_module(&mut g, &gmod, &state, Strategy::Original, 0).state;
        let (up, _) = run_feature_propagation(&mut g, &fp_mlp, &coarse, &fine, None, "fp");
        assert_eq!(g.value(up.features).shape(), (96, 16));
    }

    #[test]
    fn knn3_matches_reference_selection() {
        let cloud = sample_shape(ShapeClass::Sphere, 170, 8);
        for q in [0usize, 31, 169] {
            let want: Vec<usize> = mesorasi_knn::bruteforce::knn_point(&cloud, cloud.point(q), 3)
                .iter()
                .map(|c| c.index)
                .collect();
            let got: Vec<usize> =
                knn3(cloud.points(), cloud.point(q)).iter().map(|c| c.index).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn fp_stencils_into_reuses_buffers_and_matches() {
        let fine = sample_shape(ShapeClass::Chair, 120, 2);
        let coarse = fine.select(&(0..40).collect::<Vec<_>>());
        let (want_idx, want_w) = fp_stencils(&coarse, &fine);
        let (mut idx, mut w) = (Vec::new(), Vec::new());
        fp_stencils_into(&coarse, &fine, &mut idx, &mut w);
        assert_eq!(idx, want_idx);
        assert_eq!(w, want_w);
        // Second fill must not grow the buffers.
        let caps = (idx.capacity(), w.capacity());
        fp_stencils_into(&coarse, &fine, &mut idx, &mut w);
        assert_eq!((idx.capacity(), w.capacity()), caps);
    }

    #[test]
    fn select_centroids_into_matches_allocating_variant() {
        let cloud = sample_shape(ShapeClass::Lamp, 90, 4);
        let (mut shuffle, mut out) = (Vec::new(), Vec::new());
        select_centroids_into(&cloud, 24, 11, &mut shuffle, &mut out);
        assert_eq!(out, select_centroids(&cloud, 24, 11));
        select_centroids_into(&cloud, 90, 11, &mut shuffle, &mut out);
        assert_eq!(out, (0..90).collect::<Vec<_>>(), "identity selection when sizes match");
    }

    #[test]
    fn head_trace_records_layers() {
        let mut rng = mesorasi_pointcloud::seeded_rng(6);
        let head = SharedMlp::new(&[32, 16, 10], NormMode::None, false, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(4, 32));
        let (out, trace) = run_head(&mut g, &head, x, "classifier");
        assert_eq!(g.value(out).shape(), (4, 10));
        assert_eq!(trace.mlp_post.len(), 2);
        assert!(trace.search.is_none() && trace.aggregate.is_none());
    }
}
