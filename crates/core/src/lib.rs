//! Delayed-aggregation: the Mesorasi paper's algorithmic contribution.
//!
//! A point-cloud module computes each output point as
//! `p_o = F(A(N(p_i), p_i))` — neighbor search, aggregation, feature
//! computation (paper Equ. 1). Because `F` (a shared MLP) is approximately
//! distributive over the subtraction in `A`, the order can be swapped:
//! `p_o ≈ A(F(N(p_i)), F(p_i))` (Equ. 2). That *delayed aggregation*
//!
//! 1. lets `N` and `F` run in parallel (they were serialized), and
//! 2. runs `F` on the `N_in` input points instead of the `N_out × K`
//!    aggregated neighbor rows, cutting MACs and activation footprints.
//!
//! This crate implements the primitive in three layers:
//!
//! * [`module`] / [`strategy`] — module descriptions and the three
//!   execution strategies ([`Strategy::Original`], [`Strategy::LtdDelayed`]
//!   — the GNN-style precise-but-limited variant, [`Strategy::Delayed`]),
//! * [`executor`] / [`runner`] — functional (trainable, autograd-backed)
//!   executors for offset modules (PointNet++ family), edge modules
//!   (DGCNN family), global modules and feature propagation,
//! * [`trace`] — workload traces: per-module operator lists with real
//!   neighbor index tables, consumed by `mesorasi-sim`'s hardware models,
//! * [`distributivity`] — the Equ. 3 identity, exact for the linear part,
//!   with utilities measuring the ReLU-induced approximation error,
//! * [`cost`] — closed-form MAC/footprint accounting (Figs. 7, 9, 10).
//!
//! # Example
//!
//! ```
//! use mesorasi_core::{module::{Module, ModuleConfig, NeighborMode}, runner, Strategy};
//! use mesorasi_nn::{Graph, layers::NormMode};
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//!
//! let mut rng = mesorasi_pointcloud::seeded_rng(0);
//! let config = ModuleConfig::offset("sa1", 32, 8, NeighborMode::CoordKnn, vec![3, 16, 32]);
//! let module = Module::new(config, NormMode::None, &mut rng);
//! let cloud = sample_shape(ShapeClass::Chair, 128, 1);
//!
//! let mut g = Graph::new();
//! let state = runner::ModuleState::from_cloud(&mut g, &cloud);
//! let out = runner::run_module(&mut g, &module, &state, Strategy::Delayed, 7);
//! assert_eq!(g.value(out.state.features).shape(), (32, 32));
//! ```

#![forbid(unsafe_code)]

pub mod cost;
pub mod distributivity;
pub mod engine;
pub mod executor;
pub mod module;
pub mod runner;
pub mod sample_cache;
pub mod strategy;
pub mod trace;

pub use sample_cache::{SampleCacheStats, DEFAULT_SAMPLE_CACHE_CAP};
pub use strategy::Strategy;
pub use trace::{ModuleTrace, NetworkTrace, Stage};
