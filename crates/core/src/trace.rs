//! Workload traces: what a network *did*, for the hardware models.
//!
//! A [`NetworkTrace`] records every operator one network inference executes,
//! with full dimensions and — crucially — the *real* [`NeighborIndexTable`]
//! of every aggregation, because the Aggregation Unit's bank-conflict
//! behaviour (paper §V-B) depends on the actual index distribution, not
//! just on sizes. `mesorasi-sim` replays traces against its GPU/NPU/AU
//! models; this module only records and accounts.

use crate::strategy::Strategy;
use mesorasi_knn::NeighborIndexTable;

/// The execution-time categories of Fig. 5 / Fig. 11 / Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Neighbor search (`N`).
    NeighborSearch,
    /// Aggregation (`A`): gathers, normalization subtractions.
    Aggregation,
    /// Feature computation (`F`): MLP layers and their reductions.
    FeatureCompute,
    /// Everything else: interpolation, classification heads, reshapes.
    Other,
}

impl Stage {
    /// All stages in the paper's reporting order.
    pub const ALL: [Stage; 4] =
        [Stage::NeighborSearch, Stage::Aggregation, Stage::FeatureCompute, Stage::Other];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NeighborSearch => "Neighbor Search",
            Stage::Aggregation => "Aggregation",
            Stage::FeatureCompute => "Feature Computation",
            Stage::Other => "Others",
        }
    }
}

/// One neighbor search: `queries` queries over `candidates` points of
/// dimension `dim`, returning `k` neighbors each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOp {
    /// Number of query (centroid) points.
    pub queries: usize,
    /// Number of candidate points searched.
    pub candidates: usize,
    /// Dimensionality of the search space (3 for coordinates; the feature
    /// width for DGCNN's dynamic graphs).
    pub dim: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// True for radius (ball) queries, which select by threshold scan
    /// instead of top-K sorting — much cheaper selection on a GPU, but
    /// implemented as a long chain of broadcast kernels in TF-style
    /// frameworks (the overhead the GPU model charges).
    pub radius_query: bool,
}

impl SearchOp {
    /// Multiply-accumulate work of the dense pairwise-distance computation
    /// GPU implementations perform (3 ops per dimension per pair).
    pub fn distance_macs(&self) -> u64 {
        (self.queries as u64) * (self.candidates as u64) * (self.dim as u64)
    }

    /// Comparison work of top-k selection, modeled as `candidates · log2(k)`
    /// per query (bitonic-style partial selection).
    pub fn selection_ops(&self) -> u64 {
        let logk = (self.k.max(2) as f64).log2().ceil() as u64;
        (self.queries as u64) * (self.candidates as u64) * logk
    }

    /// Bytes read: the candidate matrix once per query tile plus queries.
    pub fn bytes_read(&self) -> u64 {
        4 * ((self.queries * self.dim) as u64 + (self.candidates * self.dim) as u64)
    }

    /// Bytes written: the NIT (4-byte indices at the software level).
    pub fn bytes_written(&self) -> u64 {
        4 * (self.queries * self.k) as u64
    }
}

/// One MLP layer executed as a batched matrix product
/// (`rows × inner` · `inner × cols`), including its activation function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatMulOp {
    /// Batch rows.
    pub rows: usize,
    /// Inner (reduction) dimension.
    pub inner: usize,
    /// Output columns.
    pub cols: usize,
}

impl MatMulOp {
    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        (self.rows as u64) * (self.inner as u64) * (self.cols as u64)
    }

    /// Output activation size in bytes (the Fig. 10 quantity).
    pub fn output_bytes(&self) -> u64 {
        4 * (self.rows as u64) * (self.cols as u64)
    }

    /// Input activation size in bytes.
    pub fn input_bytes(&self) -> u64 {
        4 * (self.rows as u64) * (self.inner as u64)
    }

    /// Weight size in bytes (shared across rows — small, per Fig. 3).
    pub fn weight_bytes(&self) -> u64 {
        4 * (self.inner as u64) * (self.cols as u64)
    }
}

/// One aggregation: for each NIT entry, gather `width`-wide rows from a
/// `table_rows × width` table and (for the delayed strategy) reduce and
/// subtract in the same pass.
#[derive(Debug, Clone)]
pub struct AggregateOp {
    /// The real neighbor indices — drives bank-conflict simulation.
    pub nit: NeighborIndexTable,
    /// Rows of the gathered-from table (`N_in`).
    pub table_rows: usize,
    /// Width of each gathered row: `M_in` for original order, `M_out` for
    /// delayed (the working-set blow-up of §IV-C).
    pub width: usize,
    /// Row gathers per NIT entry: `K + 1` for offset modules (K neighbors
    /// plus the centroid row), `2K` for edge modules (each edge reads the
    /// neighbor and the repeated centroid).
    pub rows_per_entry: usize,
    /// True when the max reduction and centroid subtraction are fused into
    /// the aggregation (delayed strategy; what the AU executes).
    pub fused_reduce: bool,
}

impl AggregateOp {
    /// Size of the gathered-from table in bytes — the gather working set
    /// (512 KB vs 12 KB in the paper's PointNet++ module-1 example).
    pub fn working_set_bytes(&self) -> u64 {
        4 * (self.table_rows as u64) * (self.width as u64)
    }

    /// Bytes gathered across all entries.
    pub fn bytes_gathered(&self) -> u64 {
        4 * (self.nit.len() as u64) * (self.rows_per_entry as u64) * (self.width as u64)
    }

    /// Subtraction count: one per output element for fused aggregation
    /// (max-before-subtract, §IV-A), one per gathered neighbor element
    /// otherwise.
    pub fn subtract_ops(&self) -> u64 {
        if self.fused_reduce {
            (self.nit.len() as u64) * (self.width as u64)
        } else {
            (self.nit.len() as u64) * (self.nit.k() as u64) * (self.width as u64)
        }
    }
}

/// A grouped max reduction (`groups × k × width` → `groups × width`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceOp {
    /// Number of groups (`N_out`).
    pub groups: usize,
    /// Rows reduced per group (`K`).
    pub k: usize,
    /// Feature width.
    pub width: usize,
}

impl ReduceOp {
    /// Comparison count.
    pub fn compare_ops(&self) -> u64 {
        (self.groups as u64) * (self.k.saturating_sub(1) as u64) * (self.width as u64)
    }
}

/// The trace of one module, with `F` split around the aggregation according
/// to the strategy:
///
/// * original: everything in `mlp_post` (runs after `A`),
/// * ltd: the first layer in `mlp_pre` (overlaps `N`), tail in `mlp_post`,
/// * delayed: everything in `mlp_pre`; `aggregate.fused_reduce == true`.
#[derive(Debug, Clone, Default)]
pub struct ModuleTrace {
    /// Module name (from the configuration).
    pub name: String,
    /// Neighbor search, absent for group-all modules and heads.
    pub search: Option<SearchOp>,
    /// MLP layers that may overlap with the search.
    pub mlp_pre: Vec<MatMulOp>,
    /// The aggregation, absent for group-all modules and heads.
    pub aggregate: Option<AggregateOp>,
    /// MLP layers that run after the aggregation.
    pub mlp_post: Vec<MatMulOp>,
    /// Standalone reduction (original/ltd); `None` when fused or global.
    pub reduce: Option<ReduceOp>,
    /// Unclassified extra work (interpolation weights, heads), in flops.
    pub other_flops: u64,
    /// Unclassified extra memory traffic, in bytes.
    pub other_bytes: u64,
}

impl ModuleTrace {
    /// MACs of all MLP layers in this module.
    pub fn mlp_macs(&self) -> u64 {
        self.mlp_pre.iter().chain(&self.mlp_post).map(MatMulOp::macs).sum()
    }

    /// Output activation sizes of every MLP layer, in bytes (Fig. 10).
    pub fn activation_sizes(&self) -> Vec<u64> {
        self.mlp_pre.iter().chain(&self.mlp_post).map(MatMulOp::output_bytes).collect()
    }
}

/// The complete trace of one network inference under one strategy.
#[derive(Debug, Clone)]
pub struct NetworkTrace {
    /// Network name (e.g. "PointNet++ (c)").
    pub name: String,
    /// The strategy the trace was generated under.
    pub strategy: Strategy,
    /// Per-module traces, in execution order.
    pub modules: Vec<ModuleTrace>,
}

impl NetworkTrace {
    /// Creates an empty trace.
    pub fn new(name: &str, strategy: Strategy) -> Self {
        NetworkTrace { name: name.to_owned(), strategy, modules: Vec::new() }
    }

    /// Total MLP MACs (the Fig. 9 quantity).
    pub fn mlp_macs(&self) -> u64 {
        self.modules.iter().map(ModuleTrace::mlp_macs).sum()
    }

    /// Every MLP layer's output size in bytes (the Fig. 10 distribution).
    pub fn activation_sizes(&self) -> Vec<u64> {
        self.modules.iter().flat_map(ModuleTrace::activation_sizes).collect()
    }

    /// Total neighbor-search MACs.
    pub fn search_macs(&self) -> u64 {
        self.modules
            .iter()
            .filter_map(|m| m.search.as_ref())
            .map(|s| s.distance_macs() + s.selection_ops())
            .sum()
    }

    /// Total bytes gathered by aggregations.
    pub fn aggregation_bytes(&self) -> u64 {
        self.modules
            .iter()
            .filter_map(|m| m.aggregate.as_ref())
            .map(AggregateOp::bytes_gathered)
            .sum()
    }

    /// All aggregation ops (used by the AU simulator).
    pub fn aggregations(&self) -> impl Iterator<Item = &AggregateOp> + '_ {
        self.modules.iter().filter_map(|m| m.aggregate.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nit_2x2() -> NeighborIndexTable {
        let mut nit = NeighborIndexTable::new(2);
        nit.push_entry(0, &[0, 1]);
        nit.push_entry(2, &[2, 3]);
        nit
    }

    #[test]
    fn matmul_accounting() {
        let op = MatMulOp { rows: 1024, inner: 3, cols: 64 };
        assert_eq!(op.macs(), 1024 * 3 * 64);
        assert_eq!(op.output_bytes(), 4 * 1024 * 64);
        assert_eq!(op.weight_bytes(), 4 * 3 * 64);
    }

    #[test]
    fn search_accounting() {
        let op = SearchOp { queries: 512, candidates: 1024, dim: 3, k: 32, radius_query: false };
        assert_eq!(op.distance_macs(), 512 * 1024 * 3);
        assert_eq!(op.selection_ops(), 512 * 1024 * 5); // log2(32) = 5
        assert_eq!(op.bytes_written(), 4 * 512 * 32);
    }

    #[test]
    fn aggregate_working_set_grows_with_width() {
        // The §IV-C effect: delayed aggregation gathers from an N_in × M_out
        // table instead of N_in × M_in.
        let original = AggregateOp {
            nit: nit_2x2(),
            table_rows: 1024,
            width: 3,
            rows_per_entry: 3,
            fused_reduce: false,
        };
        let delayed = AggregateOp {
            nit: nit_2x2(),
            table_rows: 1024,
            width: 128,
            rows_per_entry: 3,
            fused_reduce: true,
        };
        assert_eq!(original.working_set_bytes(), 4 * 1024 * 3);
        assert_eq!(delayed.working_set_bytes(), 4 * 1024 * 128);
        assert!(delayed.working_set_bytes() > 40 * original.working_set_bytes());
    }

    #[test]
    fn fused_aggregation_subtracts_once_per_output() {
        let fused = AggregateOp {
            nit: nit_2x2(),
            table_rows: 8,
            width: 16,
            rows_per_entry: 3,
            fused_reduce: true,
        };
        let unfused = AggregateOp {
            nit: nit_2x2(),
            table_rows: 8,
            width: 16,
            rows_per_entry: 3,
            fused_reduce: false,
        };
        assert_eq!(fused.subtract_ops(), 2 * 16);
        assert_eq!(unfused.subtract_ops(), 2 * 2 * 16);
    }

    #[test]
    fn network_totals_sum_modules() {
        let mut trace = NetworkTrace::new("toy", Strategy::Delayed);
        trace.modules.push(ModuleTrace {
            name: "m1".into(),
            search: Some(SearchOp { queries: 4, candidates: 8, dim: 3, k: 2, radius_query: false }),
            mlp_pre: vec![MatMulOp { rows: 8, inner: 3, cols: 4 }],
            aggregate: Some(AggregateOp {
                nit: nit_2x2(),
                table_rows: 8,
                width: 4,
                rows_per_entry: 3,
                fused_reduce: true,
            }),
            mlp_post: vec![],
            reduce: None,
            other_flops: 0,
            other_bytes: 0,
        });
        trace.modules.push(ModuleTrace {
            name: "head".into(),
            mlp_post: vec![MatMulOp { rows: 1, inner: 4, cols: 10 }],
            ..ModuleTrace::default()
        });
        assert_eq!(trace.mlp_macs(), 8 * 3 * 4 + 4 * 10);
        assert_eq!(trace.activation_sizes(), vec![4 * 8 * 4, 4 * 10]);
        assert_eq!(trace.aggregations().count(), 1);
        assert!(trace.search_macs() > 0);
    }

    #[test]
    fn stage_labels_cover_paper_categories() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["Neighbor Search", "Aggregation", "Feature Computation", "Others"]);
    }
}
