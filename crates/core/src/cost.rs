//! Closed-form cost accounting, independent of execution.
//!
//! The trace layer records what actually ran; this module computes the same
//! quantities analytically from a [`ModuleConfig`], which the MAC-count and
//! footprint experiments (Figs. 7, 9, 10) use to sweep input sizes (e.g.
//! the 130 K-point KITTI frame of Fig. 7) without running anything.

use crate::module::{ModuleConfig, NeighborMode};
use crate::strategy::Strategy;

/// MLP MACs of one module under `strategy` with `n_in` input points.
///
/// * original: every layer over `N_out · K` aggregated rows,
/// * ltd: layer 1 over `N_in` rows, the tail over `N_out · K` rows,
/// * delayed: every layer over `N_in` rows (edge modules: layer 1 over
///   `N_in`, tail over `N_out` reduced rows).
pub fn mlp_macs(cfg: &ModuleConfig, strategy: Strategy, n_in: usize) -> u64 {
    let widths = cfg.layer_widths();
    let layer = |rows: usize, w: &[usize]| -> u64 {
        w.windows(2).map(|p| (rows as u64) * (p[0] as u64) * (p[1] as u64)).sum()
    };
    if matches!(cfg.neighbor, NeighborMode::Global) {
        return layer(n_in, &widths);
    }
    let edge_rows = cfg.n_out * cfg.k;
    match strategy {
        Strategy::Original => layer(edge_rows, &widths),
        Strategy::LtdDelayed => layer(n_in, &widths[..2]) + layer(edge_rows, &widths[1..]),
        Strategy::Delayed => {
            if cfg.edge {
                layer(n_in, &widths[..2]) + layer(cfg.n_out, &widths[1..])
            } else {
                layer(n_in, &widths)
            }
        }
    }
}

/// Per-layer MLP output sizes in bytes (the Fig. 10 violin data).
pub fn activation_sizes(cfg: &ModuleConfig, strategy: Strategy, n_in: usize) -> Vec<u64> {
    let widths = cfg.layer_widths();
    let outs = |rows: usize, w: &[usize]| -> Vec<u64> {
        w[1..].iter().map(|&c| 4 * (rows as u64) * (c as u64)).collect()
    };
    if matches!(cfg.neighbor, NeighborMode::Global) {
        return outs(n_in, &widths);
    }
    let edge_rows = cfg.n_out * cfg.k;
    match strategy {
        Strategy::Original => outs(edge_rows, &widths),
        Strategy::LtdDelayed => {
            let mut v = outs(n_in, &widths[..2]);
            v.extend(outs(edge_rows, &widths[1..]));
            v
        }
        Strategy::Delayed => {
            if cfg.edge {
                let mut v = outs(n_in, &widths[..2]);
                v.extend(outs(cfg.n_out, &widths[1..]));
                v
            } else {
                outs(n_in, &widths)
            }
        }
    }
}

/// MAC count of a conventional convolution layer: `H·W · C_in·C_out · k²`
/// (stride folded into the output size). Used by the Fig. 7 CNN baselines.
pub fn conv2d_macs(out_h: usize, out_w: usize, c_in: usize, c_out: usize, kernel: usize) -> u64 {
    (out_h as u64) * (out_w as u64) * (c_in as u64) * (c_out as u64) * (kernel as u64).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pn_first_module() -> ModuleConfig {
        // The Fig. 3 example: 1024 → 512 points, K = 32, MLP [3, 64, 64, 128].
        ModuleConfig::offset("sa1", 512, 32, NeighborMode::CoordKnn, vec![3, 64, 64, 128])
    }

    #[test]
    fn original_macs_match_paper_example() {
        // Original: 512 NFMs of 32×3 through the MLP = 16384 rows.
        let cfg = pn_first_module();
        let rows = 512 * 32;
        let expect = (rows * (3 * 64 + 64 * 64 + 64 * 128)) as u64;
        assert_eq!(mlp_macs(&cfg, Strategy::Original, 1024), expect);
    }

    #[test]
    fn delayed_macs_run_once_per_input_point() {
        // Delayed: one 1024×3 matrix through the MLP (paper §IV-B: "the new
        // algorithm executes MLP only on one 1024×3 matrix").
        let cfg = pn_first_module();
        let expect = (1024 * (3 * 64 + 64 * 64 + 64 * 128)) as u64;
        assert_eq!(mlp_macs(&cfg, Strategy::Delayed, 1024), expect);
    }

    #[test]
    fn delayed_reduces_macs_by_an_order_of_magnitude_here() {
        let cfg = pn_first_module();
        let orig = mlp_macs(&cfg, Strategy::Original, 1024);
        let del = mlp_macs(&cfg, Strategy::Delayed, 1024);
        // 512·32 / 1024 = 16× fewer rows.
        assert_eq!(orig / del, 16);
    }

    #[test]
    fn ltd_saves_only_first_layer() {
        let cfg = pn_first_module();
        let ltd = mlp_macs(&cfg, Strategy::LtdDelayed, 1024);
        let orig = mlp_macs(&cfg, Strategy::Original, 1024);
        let rows = (512 * 32) as u64;
        let expect = 1024 * 3 * 64 + rows * (64 * 64 + 64 * 128);
        assert_eq!(ltd, expect);
        assert!(ltd < orig);
        assert!(ltd > mlp_macs(&cfg, Strategy::Delayed, 1024));
    }

    #[test]
    fn activation_sizes_shrink_with_delayed() {
        // Fig. 10: original layer outputs (512·32 rows) vs delayed (1024).
        let cfg = pn_first_module();
        let orig = activation_sizes(&cfg, Strategy::Original, 1024);
        let del = activation_sizes(&cfg, Strategy::Delayed, 1024);
        assert_eq!(orig.len(), 3);
        assert_eq!(del.len(), 3);
        let orig_max = *orig.iter().max().unwrap();
        let del_max = *del.iter().max().unwrap();
        // 16384×128×4 B = 8 MB vs 1024×128×4 B = 512 KB.
        assert_eq!(orig_max, 8 << 20);
        assert_eq!(del_max, 512 << 10);
    }

    #[test]
    fn global_module_is_strategy_invariant() {
        let cfg = ModuleConfig::global("g", vec![256, 512, 1024]);
        let a = mlp_macs(&cfg, Strategy::Original, 128);
        let b = mlp_macs(&cfg, Strategy::Delayed, 128);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_delayed_runs_tail_on_reduced_rows() {
        let cfg = ModuleConfig::edge("ec", 1024, 20, vec![64, 64, 64]);
        let del = mlp_macs(&cfg, Strategy::Delayed, 1024);
        // layer 1: 1024 rows × (128·64); tail: 1024 reduced rows × (64·64).
        let expect = 1024 * (128 * 64) + 1024 * (64 * 64);
        assert_eq!(del, expect);
        let orig = mlp_macs(&cfg, Strategy::Original, 1024);
        assert!(del < orig / 10, "edge delayed saves ≥ K× on both layers");
    }

    #[test]
    fn conv_macs_alexnet_conv1() {
        // AlexNet conv1: 96 filters of 11×11×3 over a 55×55 output.
        let macs = conv2d_macs(55, 55, 3, 96, 11);
        assert_eq!(macs, 55 * 55 * 3 * 96 * 121);
    }
}
