//! Pure functional executors for one module, given a precomputed neighbor
//! index table.
//!
//! These are the algorithmic heart of the reproduction: the same module
//! semantics in the three orders of Fig. 3 (original) and Fig. 8 (delayed),
//! all expressed on the autograd graph so each variant is trainable and
//! their outputs can be compared numerically.
//!
//! | variant | MLP batch | aggregation | exactness |
//! |---|---|---|---|
//! | original | `N_out·K` offset rows | before MLP | reference |
//! | ltd      | layer 1 on `N_in` rows, tail on `N_out·K` | between | exact (linear part only hoisted) |
//! | delayed  | full MLP on `N_in` rows (PFT) | after MLP, fused with max | approximate through ReLU |

use crate::engine::{rec, IndexRole};
use crate::module::Module;
use mesorasi_knn::NeighborIndexTable;
use mesorasi_nn::{Graph, VarId};

fn check_nit(g: &Graph, features: VarId, module: &Module, nit: &NeighborIndexTable) {
    let n_in = g.value(features).rows();
    assert_eq!(
        g.value(features).cols(),
        module.config.m_in(),
        "{}: feature width must equal the module's M_in",
        module.config.name
    );
    assert_eq!(
        nit.len(),
        module.config.n_out,
        "{}: NIT entries must equal N_out",
        module.config.name
    );
    assert_eq!(nit.k(), module.config.k, "{}: NIT K must match config", module.config.name);
    if let Some(max) = nit.max_index() {
        assert!(max < n_in, "{}: NIT references row {max} >= N_in = {n_in}", module.config.name);
    }
}

/// Original-order offset module: gather neighbors, subtract centroids, run
/// the MLP over `N_out·K` offset rows, max-reduce per group.
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn original_offset(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let k = nit.k();
    let gathered = g.gather(features, nit.neighbors_flat().to_vec());
    rec::bind_index(gathered, IndexRole::Neighbors);
    let centroids = g.gather(features, nit.centroids().to_vec());
    rec::bind_index(centroids, IndexRole::Centroids);
    let offsets = g.sub_centroid(gathered, centroids, k);
    let h = module.mlp.forward(g, offsets);
    g.group_max(h, k)
}

/// Limited delayed-aggregation offset module (Ltd-Mesorasi): hoists only
/// the first layer's matrix product before aggregation — exact, because
/// `(p_k − p_i)·W = p_k·W − p_i·W` — then runs the MLP tail per edge.
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn ltd_offset(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let k = nit.k();
    let t = module.mlp.first_layer().forward_linear_only(g, features);
    let gathered = g.gather(t, nit.neighbors_flat().to_vec());
    rec::bind_index(gathered, IndexRole::Neighbors);
    let centroids = g.gather(t, nit.centroids().to_vec());
    rec::bind_index(centroids, IndexRole::Centroids);
    let offsets = g.sub_centroid(gathered, centroids, k);
    let h = module.mlp.forward_after_first_linear(g, offsets);
    g.group_max(h, k)
}

/// Full delayed-aggregation offset module (paper Equ. 2 with the
/// max-before-subtract optimization of §IV-A): compute the Point Feature
/// Table with the whole MLP over the `N_in` input points, then per centroid
/// take the column-wise max of its neighbors' PFT rows and subtract the
/// centroid's own PFT row.
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn delayed_offset(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let pft = module.mlp.forward(g, features);
    let reduced = g.gather_max(pft, nit.neighbors_flat(), nit.k());
    rec::bind_index(reduced, IndexRole::Neighbors);
    let centroids = g.gather(pft, nit.centroids().to_vec());
    rec::bind_index(centroids, IndexRole::Centroids);
    g.sub(reduced, centroids)
}

/// Splits an edge module's first-layer product into the centroid half
/// (`x·W_top`) and the offset half (`x·W_bot`), exploiting
/// `[a | b]·W = a·W_top + b·W_bot`.
fn edge_first_layer_halves(g: &mut Graph, module: &Module, features: VarId) -> (VarId, VarId) {
    let m = module.config.m_in();
    let w = g.param(&module.mlp.first_layer().weight);
    let w_top = g.gather(w, (0..m).collect());
    let w_bot = g.gather(w, (m..2 * m).collect());
    let u = g.matmul(features, w_top);
    let v = g.matmul(features, w_bot);
    (u, v)
}

/// Original-order edge module (DGCNN's EdgeConv): per edge, the MLP
/// consumes `[x_i | x_j − x_i]`; the K edge outputs of each centroid are
/// max-reduced.
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn original_edge(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let k = nit.k();
    let repeated_centroids: Vec<usize> =
        nit.centroids().iter().flat_map(|&c| std::iter::repeat_n(c, k)).collect();
    let gathered = g.gather(features, nit.neighbors_flat().to_vec());
    rec::bind_index(gathered, IndexRole::Neighbors);
    let centroid_rows = g.gather(features, repeated_centroids);
    rec::bind_index(centroid_rows, IndexRole::Repeated);
    let offsets = g.sub(gathered, centroid_rows);
    let edge_rows = g.hstack(centroid_rows, offsets);
    let h = module.mlp.forward(g, edge_rows);
    g.group_max(h, k)
}

/// Ltd edge module: the first layer's product is hoisted per point
/// (`u = x·W_top`, `v = x·W_bot`), edges assemble the exact pre-activation
/// `u_i − v_i + v_j`, and the MLP tail still runs per edge.
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn ltd_edge(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let k = nit.k();
    let (u, v) = edge_first_layer_halves(g, module, features);
    let repeated_centroids: Vec<usize> =
        nit.centroids().iter().flat_map(|&c| std::iter::repeat_n(c, k)).collect();
    let u_i = g.gather(u, repeated_centroids.clone());
    rec::bind_index(u_i, IndexRole::Repeated);
    let v_i = g.gather(v, repeated_centroids);
    rec::bind_index(v_i, IndexRole::Repeated);
    let v_j = g.gather(v, nit.neighbors_flat().to_vec());
    rec::bind_index(v_j, IndexRole::Neighbors);
    let centroid_term = g.sub(u_i, v_i);
    let pre = g.add(centroid_term, v_j);
    let h = module.mlp.forward_after_first_linear(g, pre);
    g.group_max(h, k)
}

/// Delayed edge module: per-point halves `u`, `v` are computed once; the
/// offset half is max-reduced over each centroid's neighbors *before* the
/// non-linearity (`max_j φ(c + v_j) = φ(c + max_j v_j)` — exact for a
/// single-layer MLP since φ is monotone), then the MLP tail runs on the
/// `N_out` reduced rows (the Equ. 3-style approximation for deeper MLPs).
///
/// # Panics
///
/// Panics when the NIT disagrees with the module configuration.
pub fn delayed_edge(
    g: &mut Graph,
    module: &Module,
    features: VarId,
    nit: &NeighborIndexTable,
) -> VarId {
    check_nit(g, features, module, nit);
    let (u, v) = edge_first_layer_halves(g, module, features);
    let reduced_v = g.gather_max(v, nit.neighbors_flat(), nit.k());
    rec::bind_index(reduced_v, IndexRole::Neighbors);
    let u_i = g.gather(u, nit.centroids().to_vec());
    rec::bind_index(u_i, IndexRole::Centroids);
    let v_i = g.gather(v, nit.centroids().to_vec());
    rec::bind_index(v_i, IndexRole::Centroids);
    let centroid_term = g.sub(u_i, v_i);
    let pre = g.add(centroid_term, reduced_v);
    module.mlp.forward_after_first_linear(g, pre)
}

/// Group-all module: the MLP runs over all input rows, followed by a global
/// column-wise max — identical in every strategy (there is no neighbor
/// aggregation to reorder), so the strategy distinction collapses here.
pub fn global_module(g: &mut Graph, module: &Module, features: VarId) -> VarId {
    assert_eq!(
        g.value(features).cols(),
        module.config.m_in(),
        "{}: feature width must equal the module's M_in",
        module.config.name
    );
    let h = module.mlp.forward(g, features);
    g.global_max(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ModuleConfig, NeighborMode};
    use mesorasi_knn::bruteforce;
    use mesorasi_nn::layers::NormMode;
    use mesorasi_pointcloud::sampling::random_indices;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
    use mesorasi_tensor::{ops, Matrix};

    fn setup(edge: bool, widths: Vec<usize>) -> (Module, Matrix, NeighborIndexTable) {
        let mut rng = mesorasi_pointcloud::seeded_rng(42);
        let cloud = sample_shape(ShapeClass::Chair, 64, 1);
        let config = if edge {
            ModuleConfig::edge("test-edge", 16, 4, widths)
        } else {
            ModuleConfig::offset("test-offset", 16, 4, NeighborMode::CoordKnn, widths)
        };
        let module = Module::new(config, NormMode::None, &mut rng);
        let centroids = random_indices(&cloud, 16, 2);
        let nit = bruteforce::knn_indices(&cloud, &centroids, 4);
        let features = Matrix::from_vec(64, 3, cloud.to_xyz_rows());
        (module, features, nit)
    }

    #[test]
    fn all_offset_variants_have_output_shape_nout_by_mout() {
        let (module, features, nit) = setup(false, vec![3, 8, 12]);
        for f in [original_offset, ltd_offset, delayed_offset] {
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = f(&mut g, &module, x, &nit);
            assert_eq!(g.value(y).shape(), (16, 12));
        }
    }

    #[test]
    fn all_edge_variants_have_output_shape_nout_by_mout() {
        let (module, features, nit) = setup(true, vec![3, 8, 12]);
        for f in [original_edge, ltd_edge, delayed_edge] {
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = f(&mut g, &module, x, &nit);
            assert_eq!(g.value(y).shape(), (16, 12));
        }
    }

    #[test]
    fn ltd_offset_equals_original_exactly() {
        // Hoisting only the linear part is precise (paper §VII-C): for any
        // depth and any activation pattern the two must agree bitwise-ish.
        let (module, features, nit) = setup(false, vec![3, 8, 8, 5]);
        let mut g1 = Graph::new();
        let x1 = g1.input(features.clone());
        let a = original_offset(&mut g1, &module, x1, &nit);
        let mut g2 = Graph::new();
        let x2 = g2.input(features);
        let b = ltd_offset(&mut g2, &module, x2, &nit);
        let diff = ops::sub(g1.value(a), g2.value(b)).max_abs();
        assert!(diff < 1e-4, "ltd must be exact, diff = {diff}");
    }

    #[test]
    fn ltd_edge_equals_original_exactly() {
        let (module, features, nit) = setup(true, vec![3, 8, 5]);
        let mut g1 = Graph::new();
        let x1 = g1.input(features.clone());
        let a = original_edge(&mut g1, &module, x1, &nit);
        let mut g2 = Graph::new();
        let x2 = g2.input(features);
        let b = ltd_edge(&mut g2, &module, x2, &nit);
        let diff = ops::sub(g1.value(a), g2.value(b)).max_abs();
        assert!(diff < 1e-4, "ltd edge must be exact, diff = {diff}");
    }

    #[test]
    fn delayed_edge_single_layer_equals_original_exactly() {
        // For a single-layer edge MLP, moving the max inside the monotone
        // non-linearity is exact: max_j φ(c + v_j) = φ(c + max_j v_j).
        let (module, features, nit) = setup(true, vec![3, 10]);
        let mut g1 = Graph::new();
        let x1 = g1.input(features.clone());
        let a = original_edge(&mut g1, &module, x1, &nit);
        let mut g2 = Graph::new();
        let x2 = g2.input(features);
        let b = delayed_edge(&mut g2, &module, x2, &nit);
        let diff = ops::sub(g1.value(a), g2.value(b)).max_abs();
        assert!(diff < 1e-4, "single-layer delayed edge must be exact, diff = {diff}");
    }

    #[test]
    fn delayed_offset_is_close_but_not_identical_with_relu() {
        let (module, features, nit) = setup(false, vec![3, 16, 8]);
        let mut g1 = Graph::new();
        let x1 = g1.input(features.clone());
        let a = original_offset(&mut g1, &module, x1, &nit);
        let mut g2 = Graph::new();
        let x2 = g2.input(features);
        let b = delayed_offset(&mut g2, &module, x2, &nit);
        let a = g1.value(a);
        let b = g2.value(b);
        let diff = ops::sub(a, b).max_abs();
        assert!(diff > 0.0, "ReLU makes delayed aggregation approximate");
        // But bounded: the approximation must stay within the activation
        // scale (both are built from the same weights and inputs).
        let scale = a.max_abs().max(b.max_abs()).max(1e-6);
        assert!(diff / scale < 2.0, "divergence should be bounded, got {diff} vs scale {scale}");
    }

    #[test]
    fn gradients_flow_through_every_variant() {
        let (module, features, nit) = setup(false, vec![3, 6, 4]);
        for f in [original_offset, ltd_offset, delayed_offset] {
            let mut g = Graph::new();
            let x = g.input(features.clone());
            let y = f(&mut g, &module, x, &nit);
            let t = g.input(Matrix::zeros(16, 4));
            let loss = g.mse(y, t);
            g.backward(loss);
            let w_grad = g.param_grad(module.mlp.first_layer().weight.id());
            assert!(w_grad.is_some(), "first-layer weight must receive gradient");
            assert!(w_grad.unwrap().max_abs() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "NIT entries must equal N_out")]
    fn mismatched_nit_panics() {
        let (module, features, _) = setup(false, vec![3, 8]);
        let mut bad = NeighborIndexTable::new(4);
        bad.push_entry(0, &[0, 1, 2, 3]);
        let mut g = Graph::new();
        let x = g.input(features);
        let _ = original_offset(&mut g, &module, x, &bad);
    }

    #[test]
    fn global_module_reduces_to_single_row() {
        let mut rng = mesorasi_pointcloud::seeded_rng(5);
        let module = Module::new(ModuleConfig::global("g", vec![8, 16]), NormMode::None, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(32, 8, |r, c| ((r * c) as f32).sin()));
        let y = global_module(&mut g, &module, x);
        assert_eq!(g.value(y).shape(), (1, 16));
    }
}
