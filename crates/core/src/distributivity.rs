//! The approximate-distributivity identity (paper Equ. 3) and tools to
//! measure the error the ReLU non-linearity introduces.
//!
//! Without the activation function, an MLP distributes *exactly* over the
//! subtraction in aggregation:
//!
//! ```text
//! (P − 1·pᵢᵀ) · W₁ · W₂ = P·W₁·W₂ − 1·pᵢᵀ·W₁·W₂
//! ```
//!
//! With φ = ReLU between layers the two sides differ; delayed-aggregation
//! accepts that difference and recovers accuracy by training (Fig. 16).
//! These helpers quantify the divergence so tests — and the accuracy
//! experiment — can assert it is bounded and shrinks as activations leave
//! the clipping region.

use mesorasi_tensor::{ops, Matrix};

/// Applies a bias-free MLP `x ↦ φ(…φ(x·W₁)·W₂…)` with ReLU between layers
/// (and after the last, matching point-cloud modules).
pub fn mlp_forward(x: &Matrix, weights: &[Matrix]) -> Matrix {
    assert!(!weights.is_empty(), "at least one layer");
    let mut h = x.clone();
    for w in weights {
        h = ops::relu(&ops::matmul(&h, w));
    }
    h
}

/// Applies the same MLP without any non-linearity.
pub fn linear_forward(x: &Matrix, weights: &[Matrix]) -> Matrix {
    assert!(!weights.is_empty(), "at least one layer");
    let mut h = x.clone();
    for w in weights {
        h = ops::matmul(&h, w);
    }
    h
}

/// Left side of Equ. 3: the MLP applied to the difference `a − b`.
pub fn mlp_of_difference(a: &Matrix, b: &Matrix, weights: &[Matrix]) -> Matrix {
    mlp_forward(&ops::sub(a, b), weights)
}

/// Right side of Equ. 3: the difference of the MLP applied to each operand.
pub fn difference_of_mlp(a: &Matrix, b: &Matrix, weights: &[Matrix]) -> Matrix {
    ops::sub(&mlp_forward(a, weights), &mlp_forward(b, weights))
}

/// Relative divergence between the two sides of Equ. 3 under ReLU:
/// `‖lhs − rhs‖_F / max(‖lhs‖_F, ε)`.
pub fn relative_divergence(a: &Matrix, b: &Matrix, weights: &[Matrix]) -> f32 {
    let lhs = mlp_of_difference(a, b, weights);
    let rhs = difference_of_mlp(a, b, weights);
    let err = ops::sub(&lhs, &rhs).frobenius_norm();
    err / lhs.frobenius_norm().max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_weights(widths: &[usize], seed: u64) -> Vec<Matrix> {
        let mut rng = mesorasi_pointcloud::seeded_rng(seed);
        widths
            .windows(2)
            .map(|w| Matrix::from_fn(w[0], w[1], |_, _| rng.gen_range(-0.5..0.5f32)))
            .collect()
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = mesorasi_pointcloud::seeded_rng(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0f32))
    }

    #[test]
    fn linear_mlp_distributes_exactly() {
        let weights = random_weights(&[3, 16, 8], 1);
        let a = random_matrix(20, 3, 2);
        let b = random_matrix(20, 3, 3);
        let lhs = linear_forward(&ops::sub(&a, &b), &weights);
        let rhs = ops::sub(&linear_forward(&a, &weights), &linear_forward(&b, &weights));
        assert!(ops::sub(&lhs, &rhs).max_abs() < 1e-4, "linear part must be exact (Equ. 3)");
    }

    #[test]
    fn relu_breaks_exactness() {
        let weights = random_weights(&[3, 16, 8], 4);
        let a = random_matrix(20, 3, 5);
        let b = random_matrix(20, 3, 6);
        assert!(relative_divergence(&a, &b, &weights) > 0.0);
    }

    #[test]
    fn divergence_vanishes_in_the_positive_orthant() {
        // If every pre-activation stays positive, ReLU is the identity and
        // the distribution is exact again. Use positive weights and inputs
        // with a ≥ b elementwise.
        let mut rng = mesorasi_pointcloud::seeded_rng(7);
        let weights: Vec<Matrix> = [(3usize, 8usize), (8, 4)]
            .iter()
            .map(|&(i, o)| Matrix::from_fn(i, o, |_, _| rng.gen_range(0.1..0.5f32)))
            .collect();
        let b = Matrix::from_fn(10, 3, |_, _| rng.gen_range(0.1..0.5f32));
        let diff = Matrix::from_fn(10, 3, |_, _| rng.gen_range(0.1..0.5f32));
        let a = ops::add(&b, &diff);
        // a − b ≥ 0, weights ≥ 0 ⇒ all pre-activations on both sides ≥ 0.
        let d = relative_divergence(&a, &b, &weights);
        assert!(d < 1e-5, "no clipping ⇒ exact, got divergence {d}");
    }

    #[test]
    fn divergence_is_bounded_for_realistic_scales() {
        // For unit-scale inputs and Xavier-scale weights the divergence must
        // stay within the activation scale — the property that makes
        // retraining able to absorb it (Fig. 16).
        let weights = random_weights(&[3, 32, 32], 8);
        let a = random_matrix(64, 3, 9);
        let b = random_matrix(64, 3, 10);
        let d = relative_divergence(&a, &b, &weights);
        assert!(d < 2.0, "divergence should be O(1), got {d}");
    }

    #[test]
    fn deeper_mlps_diverge_at_least_as_much_on_average() {
        // Each extra non-linearity adds clipping error; check the trend on
        // an ensemble to avoid flakiness from a single draw.
        let mut shallow_total = 0.0f32;
        let mut deep_total = 0.0f32;
        for seed in 0..10 {
            let shallow = random_weights(&[3, 16], 100 + seed);
            let deep = random_weights(&[3, 16, 16, 16], 200 + seed);
            let a = random_matrix(32, 3, 300 + seed);
            let b = random_matrix(32, 3, 400 + seed);
            shallow_total += relative_divergence(&a, &b, &shallow);
            deep_total += relative_divergence(&a, &b, &deep);
        }
        assert!(
            deep_total > shallow_total,
            "deeper stacks should diverge more: deep {deep_total} vs shallow {shallow_total}"
        );
    }
}
