//! The plan-and-execute inference engine.
//!
//! `mesorasi_nn::plan` can replay a recorded op sequence against a
//! liveness-planned arena, but knows nothing about point clouds. This
//! module supplies the missing half: *where the dynamic operands come
//! from*. A forward pass has exactly three kinds of per-sample values the
//! IR cannot carry —
//!
//! 1. **input states**: the xyz feature matrix of the sample cloud (and,
//!    for F-PointNet, the masked/recentered crop derived from it),
//! 2. **neighbor structure**: centroid selections and neighbor-search
//!    results (the NIT), which the executors consume as gather/reduce
//!    index lists,
//! 3. **interpolation stencils**: the 3-NN inverse-distance weights of
//!    feature propagation.
//!
//! While a [`PlanEngine`] records a network's forward once, a thread-local
//! recorder (armed only during recording) captures a list of [`DynStep`]s
//! describing how each of those values derives from the sample. Executing
//! a *new* sample interleaves plan ranges with the dynamic steps — the
//! feature-space searches of DGCNN read intermediate features straight out
//! of the arena — and the derived [`Bindings`] are cached per sample (the
//! NIT cache), so repeated inference on a seen sample runs pure planned
//! tensor code with **zero per-sample allocation**.
//!
//! The searches, centroid sampling, and stencil computation are the very
//! functions the tape-based runner calls, so planned execution is
//! bit-identical to [`crate::runner::run_module`]-based forwards at every
//! thread count. The engine assumes frozen parameters: plans snapshot
//! weights at compile time, and cached NITs for feature-space searches are
//! only valid while the weights that produced those features stay put.

use crate::module::NeighborMode;
use crate::runner::{fp_stencils_into, search_nit_into, select_centroids_into};
use crate::sample_cache::{SampleCache, SampleCacheStats, DEFAULT_SAMPLE_CACHE_CAP};
use mesorasi_knn::stats::SearchCounters;
use mesorasi_knn::{NeighborIndexTable, PagerStats, SearchContext, SearchPlanner};
use mesorasi_nn::ir::VarId;
use mesorasi_nn::plan::{Arena, Arena64, ArenaStats, Bindings, DynMarks, Plan, ShadowPlan};
use mesorasi_nn::Graph;
use mesorasi_pointcloud::PointCloud;
use mesorasi_tensor::{Dtype, Matrix};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// The allocation-free state derivation: reads the sample cloud, writes
/// the derived positions into the engine's persistent state buffer.
pub type DeriveIntoFn = Arc<dyn Fn(&PointCloud, &mut PointCloud) + Send + Sync>;

/// How a registered input state's positions derive from the sample cloud.
#[derive(Clone)]
pub enum StateSource {
    /// The sample cloud itself (the root state of every network).
    Sample,
    /// A pure function of the sample cloud (e.g. F-PointNet's
    /// mask-and-recenter crop). Must be deterministic.
    Derived(Arc<dyn Fn(&PointCloud) -> PointCloud + Send + Sync>),
    /// Like [`StateSource::Derived`], but writing into the engine's
    /// persistent state buffer instead of returning a fresh cloud — the
    /// streaming form, which derives without allocating on warm frames.
    DerivedInto(DeriveIntoFn),
}

impl std::fmt::Debug for StateSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateSource::Sample => write!(f, "Sample"),
            StateSource::Derived(_) => write!(f, "Derived(..)"),
            StateSource::DerivedInto(_) => write!(f, "DerivedInto(..)"),
        }
    }
}

/// Carves a frame of `n` points into contiguous fixed-budget tiles — the
/// StreamGrid-style *compulsory split* that bounds per-tile memory and
/// latency regardless of frame size. Splitting is fully deterministic:
/// tile `i` covers `i·B .. min((i+1)·B, n)`, so there are `⌈n/B⌉` tiles,
/// every tile except possibly the last holds exactly `B` points, and the
/// last holds the remainder (`1..=B` points; a frame smaller than one
/// budget is a single short tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSplitter {
    budget: usize,
}

impl TileSplitter {
    /// A splitter with a fixed per-tile point budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(budget: usize) -> TileSplitter {
        assert!(budget > 0, "tile budget must be positive");
        TileSplitter { budget }
    }

    /// The per-tile point budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of tiles a frame of `n` points splits into (`0` for an
    /// empty frame).
    pub fn tile_count(&self, n: usize) -> usize {
        n.div_ceil(self.budget)
    }

    /// The half-open point range of tile `i` in a frame of `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.tile_count(n)`.
    pub fn tile(&self, i: usize, n: usize) -> std::ops::Range<usize> {
        assert!(i < self.tile_count(n), "tile {i} out of range for {n} points");
        i * self.budget..((i + 1) * self.budget).min(n)
    }

    /// The tiles of a frame of `n` points, in split order.
    pub fn tiles(&self, n: usize) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.tile_count(n)).map(move |i| self.tile(i, n))
    }
}

/// One per-sample derivation the engine replays between plan ranges.
/// `at` is the tape position the step must complete before.
#[derive(Debug)]
pub enum DynStep {
    /// Derive a position state and write its xyz rows into the plan input.
    Input {
        /// Tape position of the `Input` node.
        at: usize,
        /// The state id being derived.
        state: usize,
        /// The `Input` node whose value is the state's xyz rows.
        input_node: usize,
        /// How the positions derive from the sample.
        source: StateSource,
    },
    /// Select centroids and run the module's neighbor search, filling the
    /// index bindings the executors consume.
    Search {
        /// Tape position before the module's first op.
        at: usize,
        /// Input state id.
        state_in: usize,
        /// Output state id (`None` for searches whose output state is
        /// never position-referenced downstream).
        state_out: Option<usize>,
        /// The search mode (kNN / ball / feature-space).
        neighbor: NeighborMode,
        /// Centroid count.
        n_out: usize,
        /// Neighbors per centroid.
        k: usize,
        /// Centroid-sampling seed recorded from the tape forward.
        seed: u64,
        /// For feature-space search: the tape node holding the features.
        feature_node: Option<usize>,
        /// Binding for the flattened neighbor lists.
        neighbors_bid: Option<usize>,
        /// Binding for the centroid index list.
        centroids_bid: Option<usize>,
        /// Binding for centroids repeated `k` times each (edge modules).
        repeated_bid: Option<usize>,
    },
    /// Compute the 3-NN inverse-distance stencil from `coarse` onto `fine`.
    Stencil {
        /// Tape position of the weighted-gather node.
        at: usize,
        /// Coarse (source) state id.
        coarse: usize,
        /// Fine (target) state id.
        fine: usize,
        /// Stencil binding filled by this step.
        bid: usize,
    },
}

impl DynStep {
    fn at(&self) -> usize {
        match self {
            DynStep::Input { at, .. }
            | DynStep::Search { at, .. }
            | DynStep::Stencil { at, .. } => *at,
        }
    }
}

/// Which index vector of a module's NIT an executor op consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IndexRole {
    /// `nit.neighbors_flat()`.
    Neighbors,
    /// `nit.centroids()`.
    Centroids,
    /// Each centroid repeated `k` times (edge-module row expansion).
    Repeated,
}

/// A position state registered during recording. `positions` is `None` for
/// states whose positions cannot be re-derived (group-all outputs) — legal
/// as long as no later step needs them.
struct StateRec {
    positions: Option<PointCloud>,
}

struct OpenSearch {
    at: usize,
    state_in: usize,
    neighbor: NeighborMode,
    n_out: usize,
    k: usize,
    seed: u64,
    feature_node: Option<usize>,
    neighbors_bid: Option<usize>,
    centroids_bid: Option<usize>,
    repeated_bid: Option<usize>,
}

/// Everything the thread-local recorder accumulates during one recording
/// forward pass.
#[derive(Default)]
pub(crate) struct Recording {
    steps: Vec<DynStep>,
    marks: DynMarks,
    states: Vec<StateRec>,
    state_by_var: HashMap<usize, usize>,
    open: Option<OpenSearch>,
    error: Option<String>,
}

thread_local! {
    static RECORDER: RefCell<Option<Recording>> = const { RefCell::new(None) };
}

/// Recorder hooks the runner and executors call. Every function is a no-op
/// when no recording is active on this thread, so the training path pays
/// one thread-local read per call site.
pub(crate) mod rec {
    use super::*;

    fn with(f: impl FnOnce(&mut Recording)) {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                f(rec);
            }
        });
    }

    /// Registers an input state created by `ModuleState::from_cloud[_derived]`.
    pub(crate) fn input_state(input_var: VarId, cloud: &PointCloud, source: Option<StateSource>) {
        with(|rec| {
            let source = match source {
                Some(s) => s,
                None if rec.states.is_empty() => StateSource::Sample,
                None => {
                    rec.error = Some(
                        "a mid-network input state has no derivation; create it with \
                         ModuleState::from_cloud_derived so the plan can replay it"
                            .into(),
                    );
                    return;
                }
            };
            let state = rec.states.len();
            rec.states.push(StateRec { positions: Some(cloud.clone()) });
            rec.state_by_var.insert(input_var.index(), state);
            rec.steps.push(DynStep::Input {
                at: input_var.index(),
                state,
                input_node: input_var.index(),
                source,
            });
        });
    }

    /// Opens a module search: executors will attach index roles to it.
    pub(crate) fn begin_search(
        at: usize,
        state_features: VarId,
        neighbor: NeighborMode,
        n_out: usize,
        k: usize,
        seed: u64,
    ) {
        with(|rec| {
            debug_assert!(rec.open.is_none(), "module recordings never nest");
            let Some(&state_in) = rec.state_by_var.get(&state_features.index()) else {
                rec.error = Some(format!(
                    "module input features (node {}) belong to no registered state",
                    state_features.index()
                ));
                return;
            };
            if rec.states[state_in].positions.is_none() {
                rec.error =
                    Some("a searching module consumes a group-all output's positions".into());
                return;
            }
            let feature_node =
                matches!(neighbor, NeighborMode::FeatureKnn).then_some(state_features.index());
            rec.open = Some(OpenSearch {
                at,
                state_in,
                neighbor,
                n_out,
                k,
                seed,
                feature_node,
                neighbors_bid: None,
                centroids_bid: None,
                repeated_bid: None,
            });
        });
    }

    /// Marks `var`'s index operand as derived from the open search's NIT.
    pub(crate) fn bind_index(var: VarId, role: IndexRole) {
        with(|rec| {
            let n_index = &mut rec.marks.n_index;
            let Some(open) = rec.open.as_mut() else {
                return; // executors may run outside run_module in tests
            };
            let slot = match role {
                IndexRole::Neighbors => &mut open.neighbors_bid,
                IndexRole::Centroids => &mut open.centroids_bid,
                IndexRole::Repeated => &mut open.repeated_bid,
            };
            let bid = *slot.get_or_insert_with(|| {
                let bid = *n_index;
                *n_index += 1;
                bid
            });
            rec.marks.indices.insert(var.index(), bid);
        });
    }

    /// Closes the open search, registering the module's output state.
    pub(crate) fn end_search(out_features: VarId, out_positions: &PointCloud) {
        with(|rec| {
            let Some(open) = rec.open.take() else { return };
            let state_out = rec.states.len();
            rec.states.push(StateRec { positions: Some(out_positions.clone()) });
            rec.state_by_var.insert(out_features.index(), state_out);
            rec.steps.push(DynStep::Search {
                at: open.at,
                state_in: open.state_in,
                state_out: Some(state_out),
                neighbor: open.neighbor,
                n_out: open.n_out,
                k: open.k,
                seed: open.seed,
                feature_node: open.feature_node,
                neighbors_bid: open.neighbors_bid,
                centroids_bid: open.centroids_bid,
                repeated_bid: open.repeated_bid,
            });
        });
    }

    /// Aliases `new_features` onto the state `base_features` belongs to —
    /// the skip-link/dense-concat pattern where new features sit on
    /// existing positions.
    pub(crate) fn alias_state(base_features: VarId, new_features: VarId) {
        with(|rec| {
            let Some(&state) = rec.state_by_var.get(&base_features.index()) else {
                rec.error = Some(format!(
                    "cannot alias features (node {}) onto unregistered state (node {})",
                    new_features.index(),
                    base_features.index()
                ));
                return;
            };
            rec.state_by_var.insert(new_features.index(), state);
        });
    }

    /// Registers a group-all module's output state: downstream feature
    /// propagation may look it up by features var (the broadcast path),
    /// but its positions are not re-derivable per sample.
    pub(crate) fn global_state(out_features: VarId) {
        with(|rec| {
            let state = rec.states.len();
            rec.states.push(StateRec { positions: None });
            rec.state_by_var.insert(out_features.index(), state);
        });
    }

    /// Records a feature-propagation step. `stencil_var` is the
    /// weighted-gather node when the 3-NN path ran (`None` for the
    /// broadcast path, whose gather indices are structural).
    pub(crate) fn feature_propagation(
        coarse_features: VarId,
        fine_positions: &PointCloud,
        stencil_var: Option<VarId>,
        out_features: VarId,
    ) {
        with(|rec| {
            // Resolve the fine level by position equality with a known
            // state — the runner API passes positions, not states.
            let fine = rec
                .states
                .iter()
                .position(|s| s.positions.as_ref().is_some_and(|p| p.content_eq(fine_positions)));
            let Some(fine) = fine else {
                rec.error =
                    Some("feature propagation targets positions of no registered state".into());
                return;
            };
            if let Some(var) = stencil_var {
                let Some(&coarse) = rec.state_by_var.get(&coarse_features.index()) else {
                    rec.error = Some("feature propagation coarse state is unregistered".into());
                    return;
                };
                if rec.states[coarse].positions.is_none() {
                    rec.error =
                        Some("feature propagation interpolates from a group-all output".into());
                    return;
                }
                let bid = rec.marks.n_stencil;
                rec.marks.n_stencil += 1;
                rec.marks.stencils.insert(var.index(), bid);
                rec.steps.push(DynStep::Stencil { at: var.index(), coarse, fine, bid });
            }
            // The output state sits on the fine level's positions, so it
            // *aliases* the fine state — replay derives `fine` anyway, and
            // no separate derivation step exists for the FP output.
            rec.state_by_var.insert(out_features.index(), fine);
        });
    }
}

struct Compiled {
    n_points: usize,
    plan: Plan,
    steps: Vec<DynStep>,
    /// Steps that survived plan dead-code elimination.
    step_live: Vec<bool>,
    arena: Arena,
    /// NIT cache: hash-keyed, true-LRU bindings per seen sample.
    samples: SampleCache,
    /// The search arena: planner + per-space reusable index storage, keyed
    /// by module-state id so streaming frames rebuild indices in place.
    search: SearchContext,
    /// Reusable NIT buffer the searches write into before binding fill.
    nit: NeighborIndexTable,
    /// Reusable centroid-selection buffers.
    centroids: Vec<usize>,
    shuffle: Vec<usize>,
    /// Reusable per-state position clouds (`state_set[i]` marks the ones
    /// derived during the current pass).
    state_bufs: Vec<PointCloud>,
    state_set: Vec<bool>,
    /// Persistent bindings of the streaming (cache-bypass) path.
    stream_bindings: Option<Bindings>,
    /// The f64 shadow-execution state, built lazily on the first
    /// [`Dtype::F64`] run against this plan.
    shadow: Option<ShadowExec>,
}

/// Lazy per-plan state of the f64 execution mode: the widened constants,
/// the f64 arena, and the rounded-to-f32 output views callers borrow.
struct ShadowExec {
    plan: ShadowPlan,
    arena: Arena64,
    /// One f32 matrix per plan output, refreshed (rounded once per
    /// element) after every shadow replay.
    outs: Vec<Matrix>,
}

/// Replays the complete plan in f64 against the bindings the f32 pass
/// derived, then rounds every output to f32 once. Neighbor structure is
/// **dtype-invariant by construction**: every dynamic step (centroid
/// selection, neighbor search — including DGCNN's feature-space kNN —
/// and stencil derivation) reads the f32 arena, so an f64 run gathers
/// exactly the rows an f32 run gathers and only the dense arithmetic
/// changes precision.
fn run_shadow(plan: &Plan, shadow: &mut Option<ShadowExec>, bindings: &Bindings) {
    let ex = shadow.get_or_insert_with(|| ShadowExec {
        plan: plan.shadow(),
        arena: plan.arena64(),
        outs: vec![Matrix::zeros(0, 0); plan.output_count()],
    });
    plan.run_f64(&ex.plan, &mut ex.arena, bindings);
    for (i, o) in ex.outs.iter_mut().enumerate() {
        plan.output64(&ex.plan, &ex.arena, i).round_into(o);
    }
}

impl Compiled {
    /// Heap bytes retained by the search arena: cached indices, NIT and
    /// centroid buffers, the per-state position clouds, and the clouds the
    /// sample cache keeps for collision checks.
    fn search_bytes(&self) -> usize {
        self.search.storage_bytes()
            + self.nit.storage_bytes()
            + self.samples.cloud_bytes()
            + (self.centroids.capacity() + self.shuffle.capacity()) * std::mem::size_of::<usize>()
            + self.state_bufs.iter().map(PointCloud::storage_bytes).sum::<usize>()
    }
}

/// Borrow of a finished execution's outputs.
pub struct PlannedOutputs<'a> {
    plan: &'a Plan,
    arena: &'a Arena,
    outputs: usize,
    /// When the engine ran in [`Dtype::F64`] mode: the rounded shadow
    /// outputs, overriding the f32 arena values.
    shadow_outs: Option<&'a [Matrix]>,
}

impl<'a> PlannedOutputs<'a> {
    /// The `i`-th output requested by the recording closure. The borrow
    /// carries the engine's lifetime, so several outputs can be held at
    /// once. In [`Dtype::F64`] mode this is the shadow execution's value,
    /// rounded to f32 once at the boundary.
    pub fn get(&self, i: usize) -> &'a Matrix {
        match self.shadow_outs {
            Some(outs) => &outs[i],
            None => self.plan.output(self.arena, i),
        }
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.outputs
    }

    /// True when the recording produced no outputs (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.outputs == 0
    }

    /// Arena statistics of the executed plan.
    pub fn stats(&self) -> ArenaStats {
        self.plan.stats(self.arena)
    }
}

/// Usage statistics of one compiled plan: the tensor arena plus the search
/// arena that backs neighbor-search replay.
#[derive(Debug, Clone, Copy)]
pub struct EngineStats {
    /// Tensor-arena statistics (slots, bytes, reuse, growth).
    pub arena: ArenaStats,
    /// Heap bytes retained by the search arena: cached indices,
    /// verification clouds, NIT/centroid buffers, per-state positions.
    pub search_bytes: usize,
    /// Search-traffic counters of this plan's context.
    pub search: SearchCounters,
    /// NIT sample-cache traffic (hits / misses / LRU evictions).
    pub cache: SampleCacheStats,
    /// Octree node-pager traffic (hits / misses / evictions / residency);
    /// all-zero unless a paged octree answered searches for this plan.
    pub pager: PagerStats,
    /// Fixed per-tile point budget of the tiled streaming path (`None`
    /// when the engine runs untiled, cost-model chunked).
    pub tile_budget: Option<usize>,
    /// Heap bytes retained by the process-wide per-worker search scratch
    /// pool (the parallel half of the memory-ceiling contract; shared
    /// across engines, bounded by worker count).
    pub parallel_scratch_bytes: usize,
}

/// A plan-and-execute inference session.
///
/// One engine serves one frozen `(network, strategy, seed)` combination —
/// the recording closure the caller passes must be a pure function of
/// `(Graph, PointCloud)`. Plans are compiled per input shape on first
/// sight; per-sample neighbor structure is cached so the steady state
/// (repeated samples) allocates nothing. For frame sequences that never
/// repeat, [`PlanEngine::run_streamed`] bypasses the cache and reuses a
/// persistent search arena instead.
pub struct PlanEngine {
    compiled: Vec<Compiled>,
    planner: SearchPlanner,
    sample_cache_cap: usize,
    dtype: Dtype,
    tile_budget: Option<usize>,
    lod: usize,
    pager_budget: Option<usize>,
}

impl Default for PlanEngine {
    fn default() -> PlanEngine {
        PlanEngine::new()
    }
}

impl PlanEngine {
    /// An engine with no compiled plans yet, planning search backends via
    /// `MESORASI_SEARCH` / the cost model.
    pub fn new() -> PlanEngine {
        PlanEngine::with_planner(SearchPlanner::from_env())
    }

    /// An engine with an explicit search planner (the session builder's
    /// backend override).
    pub fn with_planner(planner: SearchPlanner) -> PlanEngine {
        PlanEngine {
            compiled: Vec::new(),
            planner,
            sample_cache_cap: DEFAULT_SAMPLE_CACHE_CAP,
            dtype: Dtype::F32,
            tile_budget: None,
            lod: 0,
            pager_budget: mesorasi_knn::pager::budget_from_env(),
        }
    }

    /// Routes every per-frame derivation through fixed-budget point tiles:
    /// input-row fills are chunked by [`TileSplitter`] boundaries and batch
    /// searches run in `budget`-query tiles across the worker pool (each
    /// worker holding pooled scratch, with the in-flight tile window
    /// bounded by the participant count). `None` (the default) restores
    /// cost-model chunking. Tiling is a scheduling knob only — outputs are
    /// bit-identical at every budget and thread count. Applies to
    /// already-compiled plans immediately.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is `Some(0)`.
    pub fn set_tile_budget(&mut self, budget: Option<usize>) {
        assert!(budget != Some(0), "tile budget must be positive");
        self.tile_budget = budget;
        for c in &mut self.compiled {
            c.search.set_tile_budget(budget);
        }
    }

    /// The fixed tile budget set via [`PlanEngine::set_tile_budget`].
    pub fn tile_budget(&self) -> Option<usize> {
        self.tile_budget
    }

    /// Sets the octree LOD level for coordinate searches: `0` (the
    /// default) keeps every search exact; level `ℓ ≥ 1` lets octree-served
    /// searches scan per-node representative subsamples at depth `ℓ`
    /// instead of full leaves — approximate neighborhoods at lower
    /// latency. Backends other than the octree ignore the knob, so
    /// paper-scale clouds are unaffected. Applies to already-compiled
    /// plans immediately.
    pub fn set_lod(&mut self, lod: usize) {
        self.lod = lod;
        for c in &mut self.compiled {
            c.search.set_lod(lod);
        }
    }

    /// The octree LOD level set via [`PlanEngine::set_lod`].
    pub fn lod(&self) -> usize {
        self.lod
    }

    /// Sets the octree leaf-payload pager budget: `None` keeps payloads
    /// resident, `Some(bytes)` pages them through a file-backed LRU under
    /// that budget (bit-identical results, bounded residency). Defaults
    /// from `MESORASI_PAGER_BUDGET`. Applies to already-compiled plans
    /// immediately; their octree slots rebuild onto the new store on next
    /// use.
    pub fn set_pager_budget(&mut self, budget: Option<usize>) {
        self.pager_budget = budget;
        for c in &mut self.compiled {
            c.search.set_pager_budget(budget);
        }
    }

    /// The pager budget set via [`PlanEngine::set_pager_budget`].
    pub fn pager_budget(&self) -> Option<usize> {
        self.pager_budget
    }

    /// Octree pager traffic summed over every compiled plan.
    pub fn pager_stats(&self) -> PagerStats {
        let mut total = PagerStats::default();
        for c in &self.compiled {
            total.add(&c.search.pager_stats());
        }
        total
    }

    /// Selects the execution dtype for subsequent runs.
    ///
    /// [`Dtype::F32`] (the default) is pure native execution. In
    /// [`Dtype::F64`] mode the engine still runs the f32 plan — the
    /// dynamic derivation steps (searches, stencils) read intermediate
    /// features from the f32 arena, which keeps neighbor structure
    /// dtype-invariant — and then replays the complete plan through the
    /// sequential f64 shadow kernels, so [`PlannedOutputs::get`] returns
    /// f64-accumulated values rounded once to f32. Shadow state is built
    /// lazily per compiled plan on the first f64 run; switching back to
    /// f32 keeps it around for later reuse.
    pub fn set_dtype(&mut self, dtype: Dtype) {
        self.dtype = dtype;
    }

    /// The execution dtype selected via [`PlanEngine::set_dtype`].
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Sets the per-plan NIT sample-cache capacity (0 disables caching —
    /// every request re-derives, like the streaming path). Applies to
    /// already-compiled plans immediately, evicting LRU-first if shrinking.
    pub fn set_sample_cache_cap(&mut self, cap: usize) {
        self.sample_cache_cap = cap;
        for c in &mut self.compiled {
            c.samples.set_cap(cap);
        }
    }

    /// NIT sample-cache traffic summed over every compiled plan.
    pub fn sample_cache_stats(&self) -> SampleCacheStats {
        let mut total = SampleCacheStats::default();
        for c in &self.compiled {
            total.add(&c.samples.stats());
        }
        total
    }

    /// Runs one planned forward. `record` must build the network's forward
    /// on the given graph and return the output vars to keep — it is only
    /// invoked when `cloud`'s shape has no compiled plan yet.
    ///
    /// # Panics
    ///
    /// Panics when the recorded forward contains per-sample values the
    /// recorder cannot derive (see [`crate::runner::ModuleState::from_cloud_derived`]),
    /// or when a replay disagrees with the recorded shapes.
    pub fn run<'a>(
        &'a mut self,
        cloud: &PointCloud,
        record: &dyn Fn(&mut Graph, &PointCloud) -> Vec<VarId>,
    ) -> PlannedOutputs<'a> {
        let dtype = self.dtype;
        let ci = self.ensure_compiled(cloud, record);
        let c = &mut self.compiled[ci];

        let hash = cloud.content_hash();
        // Split the borrows: the cache hands out `&Bindings` while the plan
        // runs against the arena.
        let Compiled { samples, plan, arena, shadow, .. } = c;
        match samples.get(hash, cloud) {
            Some(bindings) => {
                // Steady state: pure planned tensor execution, no searches,
                // no allocation (the LRU relink is pointer surgery).
                plan.run(arena, bindings);
                if dtype == Dtype::F64 {
                    run_shadow(plan, shadow, bindings);
                }
            }
            None => {
                let mut bindings = Bindings::for_plan(&c.plan);
                derive_and_run(c, cloud, &mut bindings);
                if dtype == Dtype::F64 {
                    run_shadow(&c.plan, &mut c.shadow, &bindings);
                }
                // True LRU: at capacity exactly one (least recently used)
                // entry is evicted — never a wholesale clear, so hot
                // samples survive unbounded fresh traffic.
                c.samples.insert(hash, cloud, bindings);
            }
        }
        self.outputs_of(ci)
    }

    /// Runs one planned forward in streaming (frame-sequence) mode: the
    /// per-sample NIT cache is bypassed — frames of a stream rarely repeat,
    /// so caching them would only burn memory — and every per-frame
    /// derivation (input matrices, centroid selections, neighbor searches,
    /// stencils) writes into this engine's persistent buffers. Search
    /// indices warm-start from the previous frame: same-shaped frames
    /// rebuild index *contents* while reusing capacity, so a warm stream
    /// performs zero heap allocations per frame, searches included.
    /// Outputs are bit-identical to [`PlanEngine::run`] on the same cloud.
    ///
    /// # Panics
    ///
    /// As [`PlanEngine::run`].
    pub fn run_streamed<'a>(
        &'a mut self,
        cloud: &PointCloud,
        record: &dyn Fn(&mut Graph, &PointCloud) -> Vec<VarId>,
    ) -> PlannedOutputs<'a> {
        let dtype = self.dtype;
        let ci = self.ensure_compiled(cloud, record);
        let c = &mut self.compiled[ci];
        let mut bindings = match c.stream_bindings.take() {
            Some(b) => b,
            None => Bindings::for_plan(&c.plan),
        };
        derive_and_run(c, cloud, &mut bindings);
        if dtype == Dtype::F64 {
            run_shadow(&c.plan, &mut c.shadow, &bindings);
        }
        c.stream_bindings = Some(bindings);
        self.outputs_of(ci)
    }

    /// The output borrow of a finished execution, honoring the dtype mode.
    fn outputs_of(&self, ci: usize) -> PlannedOutputs<'_> {
        let c = &self.compiled[ci];
        PlannedOutputs {
            plan: &c.plan,
            arena: &c.arena,
            outputs: c.plan.output_count(),
            shadow_outs: match self.dtype {
                Dtype::F64 => c.shadow.as_ref().map(|s| s.outs.as_slice()),
                Dtype::F32 => None,
            },
        }
    }

    /// Statistics of the plan compiled for `n_points`, if any: tensor-arena
    /// usage plus search-arena bytes and traffic counters.
    pub fn stats(&self, n_points: usize) -> Option<EngineStats> {
        self.compiled.iter().find(|c| c.n_points == n_points).map(|c| EngineStats {
            arena: c.plan.stats(&c.arena),
            search_bytes: c.search_bytes(),
            search: c.search.counters(),
            cache: c.samples.stats(),
            pager: c.search.pager_stats(),
            tile_budget: self.tile_budget,
            parallel_scratch_bytes: mesorasi_knn::parallel_scratch_bytes(),
        })
    }

    /// Search-traffic counters summed over every compiled plan.
    pub fn search_counters(&self) -> SearchCounters {
        let mut total = SearchCounters::default();
        for c in &self.compiled {
            total.add(&c.search.counters());
        }
        total
    }

    /// Number of distinct input shapes compiled so far.
    pub fn compiled_plans(&self) -> usize {
        self.compiled.len()
    }

    fn ensure_compiled(
        &mut self,
        cloud: &PointCloud,
        record: &dyn Fn(&mut Graph, &PointCloud) -> Vec<VarId>,
    ) -> usize {
        if let Some(i) = self.compiled.iter().position(|c| c.n_points == cloud.len()) {
            return i;
        }

        // Arm the recorder for this thread; disarm even on unwind.
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                RECORDER.with(|r| *r.borrow_mut() = None);
            }
        }
        RECORDER.with(|r| *r.borrow_mut() = Some(Recording::default()));
        let _disarm = Disarm;
        let mut g = Graph::new();
        let outputs = record(&mut g, cloud);
        let recording = RECORDER.with(|r| r.borrow_mut().take()).expect("recording armed above");
        assert!(!outputs.is_empty(), "the recording closure must return outputs");
        if let Some(err) = recording.error {
            panic!("this forward pass cannot be planned: {err}");
        }
        assert!(recording.open.is_none(), "recording ended inside a module");

        let plan = Plan::from_graph(&g, &outputs, &recording.marks);
        plan.check_no_aliasing();
        let step_live = compute_step_live(&plan, &recording);
        let arena = plan.arena();
        let n_states = recording.states.len();
        self.compiled.push(Compiled {
            n_points: cloud.len(),
            plan,
            steps: recording.steps,
            step_live,
            arena,
            samples: SampleCache::new(self.sample_cache_cap),
            search: {
                let mut search = SearchContext::with_planner(self.planner);
                search.set_tile_budget(self.tile_budget);
                search.set_lod(self.lod);
                search.set_pager_budget(self.pager_budget);
                search
            },
            nit: NeighborIndexTable::default(),
            centroids: Vec::new(),
            shuffle: Vec::new(),
            state_bufs: vec![PointCloud::new(); n_states],
            state_set: vec![false; n_states],
            stream_bindings: None,
            shadow: None,
        });
        self.compiled.len() - 1
    }
}

/// A step is live when a surviving plan node consumes one of its bindings,
/// or a later live step needs a state it derives. Dead steps (e.g. the
/// box-branch searches of F-PointNet when only segmentation logits were
/// requested) are skipped wholesale at execution time.
fn compute_step_live(plan: &Plan, recording: &Recording) -> Vec<bool> {
    // Binding liveness from the marked consumer nodes.
    let mut index_live = vec![false; recording.marks.n_index];
    for (&node, &bid) in &recording.marks.indices {
        index_live[bid] = index_live[bid] || plan.is_live(node);
    }
    let mut stencil_live = vec![false; recording.marks.n_stencil];
    for (&node, &bid) in &recording.marks.stencils {
        stencil_live[bid] = stencil_live[bid] || plan.is_live(node);
    }

    let mut needed_state = vec![false; recording.states.len()];
    let mut live = vec![false; recording.steps.len()];
    for (si, step) in recording.steps.iter().enumerate().rev() {
        match step {
            DynStep::Stencil { coarse, fine, bid, .. } => {
                if stencil_live[*bid] {
                    live[si] = true;
                    needed_state[*coarse] = true;
                    needed_state[*fine] = true;
                }
            }
            DynStep::Search {
                state_in,
                state_out,
                neighbors_bid,
                centroids_bid,
                repeated_bid,
                feature_node,
                ..
            } => {
                let binds_live = [neighbors_bid, centroids_bid, repeated_bid]
                    .into_iter()
                    .flatten()
                    .any(|&b| index_live[b]);
                let out_needed = state_out.is_some_and(|s| needed_state[s]);
                if binds_live || out_needed {
                    live[si] = true;
                    needed_state[*state_in] = true;
                    if let Some(fnode) = feature_node {
                        assert!(
                            plan.is_live(*fnode),
                            "a live feature-space search reads an eliminated feature node"
                        );
                    }
                }
            }
            DynStep::Input { state, input_node, .. } => {
                if needed_state[*state] || plan.input_position(*input_node).is_some() {
                    live[si] = true;
                }
            }
        }
    }
    live
}

/// Cache miss or streamed frame: interleave plan ranges with the live
/// dynamic steps, filling `b`, and finish the run. All per-sample
/// derivation writes into the compiled plan's persistent buffers — state
/// positions, centroid selections, the NIT, and the search indices all
/// reuse capacity, so a same-shaped frame derives without allocating.
fn derive_and_run(c: &mut Compiled, cloud: &PointCloud, b: &mut Bindings) {
    let Compiled {
        plan,
        arena,
        steps,
        step_live,
        search,
        nit,
        centroids,
        shuffle,
        state_bufs,
        state_set,
        ..
    } = c;
    let tiles = search.tile_budget().map(TileSplitter::new);
    state_set.iter_mut().for_each(|s| *s = false);
    let mut cursor = 0usize;
    for (si, step) in steps.iter().enumerate() {
        if !step_live[si] {
            continue;
        }
        let at = step.at();
        if at > cursor {
            plan.run_range(arena, b, cursor, at);
            cursor = at;
        }
        match step {
            DynStep::Input { state, input_node, source, .. } => {
                match source {
                    StateSource::Sample => state_bufs[*state].copy_from(cloud),
                    StateSource::Derived(f) => {
                        let derived = f(cloud);
                        state_bufs[*state].copy_from(&derived);
                    }
                    StateSource::DerivedInto(f) => f(cloud, &mut state_bufs[*state]),
                }
                state_set[*state] = true;
                if let Some(ip) = plan.input_position(*input_node) {
                    write_xyz_rows(&state_bufs[*state], &mut b.inputs[ip], tiles);
                }
            }
            DynStep::Search {
                state_in,
                state_out,
                neighbor,
                n_out,
                k,
                seed,
                feature_node,
                neighbors_bid,
                centroids_bid,
                repeated_bid,
                ..
            } => {
                assert!(state_set[*state_in], "live steps derive their inputs first");
                let positions = &state_bufs[*state_in];
                select_centroids_into(positions, *n_out, *seed, shuffle, centroids);
                let features = feature_node.map(|f| plan.value(arena, VarId::from_index(f)));
                // Spaces are keyed by state id: stable across frames, so a
                // stream rebuilds each space's index in place, and shared
                // within a frame by every module searching the same state.
                search_nit_into(
                    search,
                    *state_in as u64,
                    positions,
                    features,
                    *neighbor,
                    centroids,
                    *k,
                    nit,
                );
                if let Some(bid) = neighbors_bid {
                    b.indices[*bid].clear();
                    b.indices[*bid].extend_from_slice(nit.neighbors_flat());
                }
                if let Some(bid) = centroids_bid {
                    b.indices[*bid].clear();
                    b.indices[*bid].extend_from_slice(nit.centroids());
                }
                if let Some(bid) = repeated_bid {
                    let out = &mut b.indices[*bid];
                    out.clear();
                    for &cen in nit.centroids() {
                        out.extend(std::iter::repeat_n(cen, *k));
                    }
                }
                if let Some(so) = state_out {
                    let (src, dst) = two_bufs(state_bufs, *state_in, *so);
                    src.select_into(centroids, dst);
                    state_set[*so] = true;
                }
            }
            DynStep::Stencil { coarse, fine, bid, .. } => {
                assert!(
                    state_set[*coarse] && state_set[*fine],
                    "stencil endpoints derive before the stencil"
                );
                let (idx, w) = &mut b.stencils[*bid];
                fp_stencils_into(&state_bufs[*coarse], &state_bufs[*fine], idx, w);
            }
        }
    }
    plan.run_range(arena, b, cursor, plan.len());
}

/// Writes `positions`' xyz rows into `m` (reshaped to `n × 3`), reusing
/// its backing allocation — the streaming path's replacement for
/// `Matrix::from_vec(cloud.to_xyz_rows())`. With a [`TileSplitter`], rows
/// fill in budget-sized tiles across the worker pool — a pure per-element
/// scatter, so any tiling is bit-identical to the sequential fill.
fn write_xyz_rows(positions: &PointCloud, m: &mut Matrix, tiles: Option<TileSplitter>) {
    m.reset_shape(positions.len(), 3);
    let data = m.as_mut_slice();
    let points = positions.points();
    let fill = |base: usize, rows: &mut [f32]| {
        for (j, out) in rows.chunks_exact_mut(3).enumerate() {
            let p = points[base + j];
            out[0] = p.x;
            out[1] = p.y;
            out[2] = p.z;
        }
    };
    match tiles {
        Some(t) if t.tile_count(positions.len()) > 1 => {
            mesorasi_par::par_chunks_mut(data, t.budget() * 3, |ti, rows| {
                fill(t.tile(ti, positions.len()).start, rows);
            });
        }
        _ => fill(0, data),
    }
}

/// Disjoint `(source, destination)` borrows of two state buffers — a
/// module's output state is always distinct from its input state.
fn two_bufs(bufs: &mut [PointCloud], src: usize, dst: usize) -> (&PointCloud, &mut PointCloud) {
    assert_ne!(src, dst, "a module's output state is distinct from its input");
    if src < dst {
        let (lo, hi) = bufs.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(src);
        (&hi[0], &mut lo[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, ModuleConfig, NeighborMode};
    use crate::runner::{self, ModuleState};
    use crate::Strategy;
    use mesorasi_nn::layers::{NormMode, SharedMlp};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn offset_module(neighbor: NeighborMode) -> Module {
        let mut rng = mesorasi_pointcloud::seeded_rng(11);
        Module::new(
            ModuleConfig::offset("sa", 24, 6, neighbor, vec![3, 16, 12]),
            NormMode::Feature,
            &mut rng,
        )
    }

    fn edge_module() -> Module {
        let mut rng = mesorasi_pointcloud::seeded_rng(12);
        Module::new(ModuleConfig::edge("ec", 96, 5, vec![3, 10, 8]), NormMode::None, &mut rng)
    }

    fn tape_module_forward(module: &Module, cloud: &PointCloud, strategy: Strategy) -> Matrix {
        let mut g = Graph::new();
        let state = ModuleState::from_cloud(&mut g, cloud);
        let out = runner::run_module(&mut g, module, &state, strategy, 5);
        g.value(out.state.features).clone()
    }

    #[test]
    fn planned_module_matches_tape_on_fresh_clouds() {
        for strategy in Strategy::ALL {
            for module in [
                offset_module(NeighborMode::CoordKnn),
                offset_module(NeighborMode::CoordBall { radius: 0.4 }),
                edge_module(),
            ] {
                let mut engine = PlanEngine::new();
                let record = |g: &mut Graph, cloud: &PointCloud| {
                    let state = ModuleState::from_cloud(g, cloud);
                    let out = runner::run_module(g, &module, &state, strategy, 5);
                    vec![out.state.features]
                };
                // Record on cloud 1, then execute fresh clouds 2 and 3:
                // the per-sample searches must be re-derived, bit-exactly.
                for cloud_seed in [1, 2, 3] {
                    let cloud = sample_shape(ShapeClass::Cup, 96, cloud_seed);
                    let expected = tape_module_forward(&module, &cloud, strategy);
                    let out = engine.run(&cloud, &record);
                    assert_eq!(
                        out.get(0),
                        &expected,
                        "{strategy} {} cloud {cloud_seed}: planned != tape",
                        module.config.name
                    );
                }
                assert_eq!(engine.compiled_plans(), 1, "one shape, one plan");
            }
        }
    }

    #[test]
    fn repeated_samples_hit_the_nit_cache_without_growth() {
        let module = offset_module(NeighborMode::CoordKnn);
        let mut engine = PlanEngine::new();
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let cloud = sample_shape(ShapeClass::Bottle, 80, 4);
        let first = engine.run(&cloud, &record).get(0).clone();
        for _ in 0..3 {
            let again = engine.run(&cloud, &record);
            assert_eq!(again.get(0), &first, "steady-state replay must be stable");
            assert_eq!(again.stats().grow_events, 0, "steady state must not grow slots");
        }
    }

    #[test]
    fn feature_propagation_replays_with_fresh_stencils() {
        let module = offset_module(NeighborMode::CoordKnn);
        let mut rng = mesorasi_pointcloud::seeded_rng(13);
        let fp_mlp = SharedMlp::new(&[12 + 3, 8], NormMode::None, true, &mut rng);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let coarse = runner::run_module(g, &module, &state, Strategy::Delayed, 5).state;
            let (up, _) = runner::run_feature_propagation(
                g,
                &fp_mlp,
                &coarse,
                &state.positions,
                Some(state.features),
                "fp",
            );
            vec![up.features]
        };
        let mut engine = PlanEngine::new();
        for cloud_seed in [7, 8] {
            let cloud = sample_shape(ShapeClass::Lamp, 64, cloud_seed);
            let mut g = Graph::new();
            let expected = record(&mut g, &cloud)[0];
            let expected = g.value(expected).clone();
            let out = engine.run(&cloud, &record);
            assert_eq!(out.get(0), &expected, "cloud {cloud_seed}");
        }
    }

    #[test]
    fn derived_input_states_replay_per_sample() {
        // A mid-network state derived from the sample (F-PointNet's
        // mask/recenter pattern): the plan must re-derive it per sample.
        let module = offset_module(NeighborMode::CoordKnn);
        let derive: Arc<dyn Fn(&PointCloud) -> PointCloud + Send + Sync> = Arc::new(|cloud| {
            let half: Vec<usize> = (0..cloud.len() / 2).collect();
            cloud.select(&half)
        });
        let record = move |g: &mut Graph, cloud: &PointCloud| {
            let cropped = derive(cloud);
            let state = ModuleState::from_cloud_derived(g, &cropped, derive.clone());
            let out = runner::run_module(g, &module, &state, Strategy::Original, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        for cloud_seed in [20, 21] {
            let cloud = sample_shape(ShapeClass::Chair, 96, cloud_seed);
            let mut g = Graph::new();
            let expected = record(&mut g, &cloud)[0];
            let expected = g.value(expected).clone();
            let out = engine.run(&cloud, &record);
            assert_eq!(out.get(0), &expected, "cloud {cloud_seed}");
        }
    }

    #[test]
    fn streamed_frames_match_cached_runs_bit_exactly() {
        // The streaming path bypasses the NIT cache and reuses the search
        // arena across frames — outputs must not change by a single bit,
        // including for ball and feature-space searches.
        for module in [
            offset_module(NeighborMode::CoordKnn),
            offset_module(NeighborMode::CoordBall { radius: 0.4 }),
            edge_module(),
        ] {
            let record = |g: &mut Graph, cloud: &PointCloud| {
                let state = ModuleState::from_cloud(g, cloud);
                let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
                vec![out.state.features]
            };
            let mut cached = PlanEngine::new();
            let mut streamed = PlanEngine::new();
            for frame_seed in [1, 2, 3, 4] {
                let cloud = sample_shape(ShapeClass::Cup, 96, frame_seed);
                let want = cached.run(&cloud, &record).get(0).clone();
                let got = streamed.run_streamed(&cloud, &record);
                assert_eq!(
                    got.get(0),
                    &want,
                    "{} frame {frame_seed}: streamed != cached",
                    module.config.name
                );
            }
        }
    }

    #[test]
    fn streamed_engine_reports_search_arena_stats() {
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        for frame_seed in [10, 11] {
            let cloud = sample_shape(ShapeClass::Bottle, 80, frame_seed);
            let _ = engine.run_streamed(&cloud, &record);
        }
        let stats = engine.stats(80).expect("plan compiled");
        assert!(stats.search_bytes > 0, "search arena must retain storage");
        assert!(stats.search.query_calls >= 2, "one search per frame");
        assert!(stats.search.distance_evals > 0);
        assert_eq!(stats.arena.grow_events, 0);
        let totals = engine.search_counters();
        assert_eq!(totals, stats.search, "one plan ⇒ totals equal per-plan counters");
    }

    #[test]
    fn mixed_traffic_has_no_full_clear_cache_cliff() {
        // The serving workload that exposed the old bug: a hot sample
        // interleaved with unbounded fresh traffic. The wholesale-clear
        // cache dropped the hot entry every time a fresh burst crossed the
        // cap; true LRU must keep the hot sample's hit rate at 100% across
        // more distinct samples than the cache holds.
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        engine.set_sample_cache_cap(8);
        let hot = sample_shape(ShapeClass::Chair, 64, 1000);
        let want = engine.run(&hot, &record).get(0).clone();
        let fresh_count = 32; // 4× the cap: would trigger 4 wholesale clears
        for seed in 0..fresh_count {
            let fresh = sample_shape(ShapeClass::Cup, 64, seed);
            let _ = engine.run(&fresh, &record);
            let again = engine.run(&hot, &record);
            assert_eq!(again.get(0), &want, "hot sample replay after fresh #{seed}");
        }
        let cache = engine.sample_cache_stats();
        // Every hot re-run hits; only the fresh samples miss.
        assert_eq!(cache.hits, fresh_count, "hot sample never evicted");
        assert_eq!(cache.misses, 1 + fresh_count);
        assert!(cache.hit_rate() > 0.45, "hit rate floor, got {}", cache.hit_rate());
        assert_eq!(cache.entries, 8, "cache stays full, never cleared");
        // 1 hot + 32 fresh inserts into 8 slots: the first 8 fill, the
        // remaining 25 each evict exactly one entry.
        assert_eq!(cache.evictions, fresh_count - 7, "one eviction per overflow");
    }

    #[test]
    fn eviction_preserves_bit_identical_outputs() {
        // Evict a sample by flooding the cache, then re-run it: the
        // re-derivation must reproduce the original output bit-for-bit.
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        engine.set_sample_cache_cap(2);
        let victim = sample_shape(ShapeClass::Lamp, 64, 7);
        let want = engine.run(&victim, &record).get(0).clone();
        for seed in 0..4 {
            let _ = engine.run(&sample_shape(ShapeClass::Table, 64, seed), &record);
        }
        let evictions_before = engine.sample_cache_stats().evictions;
        assert!(evictions_before >= 3, "victim must have been evicted");
        let misses_before = engine.sample_cache_stats().misses;
        let again = engine.run(&victim, &record).get(0).clone();
        assert_eq!(again, want, "re-derived output differs from the cached one");
        assert_eq!(
            engine.sample_cache_stats().misses,
            misses_before + 1,
            "the re-run was a miss (the victim really was evicted)"
        );
    }

    #[test]
    fn cache_stats_surface_in_engine_stats() {
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        let cloud = sample_shape(ShapeClass::Bottle, 80, 4);
        let _ = engine.run(&cloud, &record);
        let _ = engine.run(&cloud, &record);
        let stats = engine.stats(80).expect("plan compiled");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.entries, 1);
        assert_eq!(stats.cache.capacity, DEFAULT_SAMPLE_CACHE_CAP);
        assert_eq!(stats.cache.evictions, 0);
    }

    #[test]
    fn f64_mode_tracks_f32_and_keeps_neighbor_structure() {
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let cloud = sample_shape(ShapeClass::Cup, 96, 7);

        let mut f32_engine = PlanEngine::new();
        let f32_out = f32_engine.run(&cloud, &record).get(0).clone();

        let mut engine = PlanEngine::new();
        engine.set_dtype(Dtype::F64);
        assert_eq!(engine.dtype(), Dtype::F64);
        // Cover both the cache-miss (derive) and cache-hit paths.
        let first = engine.run(&cloud, &record).get(0).clone();
        let second = engine.run(&cloud, &record).get(0).clone();
        assert_eq!(first, second, "f64 replay must be deterministic");
        assert_eq!(first.shape(), f32_out.shape());
        for r in 0..first.rows() {
            for (a, b) in first.row(r).iter().zip(f32_out.row(r)) {
                assert!(
                    (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                    "f64 value {a} drifted from f32 value {b}"
                );
            }
        }
        // Streamed execution honors the dtype too.
        let streamed = engine.run_streamed(&cloud, &record).get(0).clone();
        assert_eq!(streamed, first, "streamed f64 must match cached f64");

        // Switching back to f32 returns the native arena values.
        engine.set_dtype(Dtype::F32);
        assert_eq!(engine.run(&cloud, &record).get(0), &f32_out);
    }

    #[test]
    fn tile_splitter_pins_remainder_rules() {
        let t = TileSplitter::new(64);
        assert_eq!(t.budget(), 64);
        // Exact multiple: every tile holds exactly the budget.
        assert_eq!(t.tile_count(256), 4);
        assert_eq!(t.tiles(256).collect::<Vec<_>>(), vec![0..64, 64..128, 128..192, 192..256]);
        // Remainder: the last tile holds what is left (1..=budget points).
        assert_eq!(t.tile_count(200), 4);
        assert_eq!(t.tile(3, 200), 192..200);
        // One past an exact multiple: a one-point remainder tile.
        assert_eq!(t.tile_count(257), 5);
        assert_eq!(t.tile(4, 257), 256..257);
        // Frame smaller than one budget: a single short tile.
        assert_eq!(t.tile_count(10), 1);
        assert_eq!(t.tiles(10).collect::<Vec<_>>(), vec![0..10]);
        // Empty frame: no tiles.
        assert_eq!(t.tile_count(0), 0);
        assert_eq!(t.tiles(0).count(), 0);
        // Tiles partition the frame: contiguous, in order, disjoint.
        for n in [1usize, 63, 64, 65, 500] {
            let mut covered = 0;
            for r in t.tiles(n) {
                assert_eq!(r.start, covered, "tiles are contiguous and ordered");
                assert!(r.len() <= t.budget() && !r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, n, "tiles cover the frame exactly");
        }
    }

    #[test]
    #[should_panic(expected = "tile budget must be positive")]
    fn zero_budget_splitter_panics() {
        let _ = TileSplitter::new(0);
    }

    #[test]
    fn tiled_streaming_is_bit_identical_to_untiled() {
        // The tiled hot path re-chunks input fills and searches; outputs
        // must not move by a bit at any budget or thread count, including
        // the N (one tile) and N+1 edge budgets.
        for module in [
            offset_module(NeighborMode::CoordKnn),
            offset_module(NeighborMode::CoordBall { radius: 0.4 }),
            edge_module(),
        ] {
            let record = |g: &mut Graph, cloud: &PointCloud| {
                let state = ModuleState::from_cloud(g, cloud);
                let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
                vec![out.state.features]
            };
            let n = 96;
            let mut untiled = PlanEngine::new();
            for budget in [16, n, n + 1] {
                let mut tiled = PlanEngine::new();
                tiled.set_tile_budget(Some(budget));
                assert_eq!(tiled.tile_budget(), Some(budget));
                for frame_seed in [1, 2] {
                    let cloud = sample_shape(ShapeClass::Cup, n, frame_seed);
                    let want = untiled.run_streamed(&cloud, &record).get(0).clone();
                    for threads in [1, 4] {
                        let got = mesorasi_par::with_threads(threads, || {
                            tiled.run_streamed(&cloud, &record).get(0).clone()
                        });
                        assert_eq!(
                            got, want,
                            "{} budget {budget} threads {threads} frame {frame_seed}",
                            module.config.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn derive_into_states_replay_without_cloning() {
        // The streaming form of the derived-input pattern: the derivation
        // writes into the engine's state buffer and must replay per sample
        // bit-identically to the allocating form.
        let module = offset_module(NeighborMode::CoordKnn);
        let derive = |cloud: &PointCloud| {
            let half: Vec<usize> = (0..cloud.len() / 2).collect();
            cloud.select(&half)
        };
        let derive_into: DeriveIntoFn = Arc::new(move |cloud, out| {
            let half: Vec<usize> = (0..cloud.len() / 2).collect();
            cloud.select_into(&half, out);
        });
        let record = move |g: &mut Graph, cloud: &PointCloud| {
            let cropped = derive(cloud);
            let state = ModuleState::from_cloud_derived_into(g, &cropped, derive_into.clone());
            let out = runner::run_module(g, &module, &state, Strategy::Original, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        for cloud_seed in [30, 31] {
            let cloud = sample_shape(ShapeClass::Chair, 96, cloud_seed);
            let mut g = Graph::new();
            let expected = record(&mut g, &cloud)[0];
            let expected = g.value(expected).clone();
            let got = engine.run_streamed(&cloud, &record);
            assert_eq!(got.get(0), &expected, "cloud {cloud_seed}");
        }
    }

    #[test]
    fn stats_surface_tile_budget_and_parallel_scratch() {
        let module = offset_module(NeighborMode::CoordKnn);
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let state = ModuleState::from_cloud(g, cloud);
            let out = runner::run_module(g, &module, &state, Strategy::Delayed, 5);
            vec![out.state.features]
        };
        let mut engine = PlanEngine::new();
        engine.set_tile_budget(Some(32));
        let cloud = sample_shape(ShapeClass::Bottle, 80, 4);
        let _ = engine.run_streamed(&cloud, &record);
        let stats = engine.stats(80).expect("plan compiled");
        assert_eq!(stats.tile_budget, Some(32));
        // The pool is process-wide; after any parallel tiled search it
        // retains bytes, but a 1-thread run may legitimately report 0.
    }

    #[test]
    #[should_panic(expected = "cannot be planned")]
    fn underivable_mid_network_input_is_rejected() {
        let record = |g: &mut Graph, cloud: &PointCloud| {
            let _root = ModuleState::from_cloud(g, cloud);
            // A second from_cloud with no derivation: not replayable.
            let other = sample_shape(ShapeClass::Table, 16, 99);
            let state = ModuleState::from_cloud(g, &other);
            vec![state.features]
        };
        let mut engine = PlanEngine::new();
        let cloud = sample_shape(ShapeClass::Chair, 32, 1);
        let _ = engine.run(&cloud, &record);
    }
}
