//! Execution strategies for point-cloud modules.

use std::fmt;

/// How a module orders aggregation relative to feature computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The conventional order `F(A(N(p), p))`: search, aggregate neighbor
    /// offsets into an `N_out·K × M_in` matrix, run the MLP over it, reduce.
    /// `N → A → F` are fully serialized (paper §III).
    Original,
    /// Limited delayed-aggregation (the paper's Ltd-Mesorasi baseline,
    /// §VII-C), as in GCN/GraphSage-style GNN implementations: only the
    /// *first matrix-vector product* is hoisted before aggregation. Exact —
    /// matrix multiplication distributes over subtraction — but every later
    /// layer still runs on aggregated `N_out·K` rows, so only layer-1 MACs
    /// are saved and only layer 1 overlaps with neighbor search.
    LtdDelayed,
    /// Full delayed-aggregation `A(F(N(p)), F(p))` (paper Equ. 2): the whole
    /// MLP runs once per input point (the Point Feature Table), in parallel
    /// with neighbor search; aggregation follows, fused with the max
    /// reduction and the centroid subtraction (`max(p_k − p_i) =
    /// max(p_k) − p_i`, §IV-A). Approximate through ReLU; accuracy is
    /// recovered by training (Fig. 16).
    Delayed,
}

impl Strategy {
    /// All strategies, in baseline-to-proposed order.
    pub const ALL: [Strategy; 3] = [Strategy::Original, Strategy::LtdDelayed, Strategy::Delayed];

    /// True when this strategy lets (part of) feature computation overlap
    /// with neighbor search.
    pub fn overlaps_search(self) -> bool {
        !matches!(self, Strategy::Original)
    }

    /// True when the full MLP runs before aggregation.
    pub fn hoists_full_mlp(self) -> bool {
        matches!(self, Strategy::Delayed)
    }

    /// Short name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Original => "original",
            Strategy::LtdDelayed => "ltd-delayed",
            Strategy::Delayed => "delayed",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_and_hoist_flags() {
        assert!(!Strategy::Original.overlaps_search());
        assert!(Strategy::LtdDelayed.overlaps_search());
        assert!(Strategy::Delayed.overlaps_search());
        assert!(Strategy::Delayed.hoists_full_mlp());
        assert!(!Strategy::LtdDelayed.hoists_full_mlp());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = Strategy::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
