//! Point-cloud module descriptions.

use mesorasi_nn::layers::{NormMode, SharedMlp};
use rand::rngs::StdRng;

/// How a module finds the neighbors of each centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborMode {
    /// K-nearest-neighbors in the original 3-D coordinate space
    /// (PointNet++-family modules; paper §V-A: "neighbor searches in all
    /// modules search in the original 3-D coordinate space").
    CoordKnn,
    /// Radius query with padding in 3-D coordinate space (PointNet++'s
    /// grouping operator).
    CoordBall {
        /// Query radius, in the unit-sphere-normalized coordinate system.
        radius: f32,
    },
    /// KNN in the feature space produced by the previous module (DGCNN's
    /// dynamic graph; §V-A: "the neighbor search in module i searches in
    /// the output feature space of module (i−1)").
    FeatureKnn,
    /// No search: a single group containing every input point (the final
    /// "group-all" set-abstraction module of PointNet++, and PointNet's
    /// global max pooling).
    Global,
}

/// Static description of one module: sizes, search mode, MLP widths.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleConfig {
    /// Human-readable name (used in traces and reports).
    pub name: String,
    /// Number of output points (centroids), `N_out`.
    pub n_out: usize,
    /// Neighbors per centroid, `K`.
    pub k: usize,
    /// Neighbor search mode.
    pub neighbor: NeighborMode,
    /// MLP widths starting at the *per-point* input feature dimension,
    /// e.g. `[3, 64, 64, 128]` for PointNet++'s first module. For edge
    /// modules the first layer actually consumes `2 × widths[0]` inputs
    /// (the `[x_i | x_j − x_i]` concatenation); [`Module::new`] handles
    /// the doubling.
    pub mlp_widths: Vec<usize>,
    /// True for DGCNN-style edge modules whose MLP input is the
    /// concatenation of the centroid feature and the neighbor offset.
    pub edge: bool,
}

impl ModuleConfig {
    /// A PointNet++-style offset module (MLP input = neighbor offsets).
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes (`n_out == 0`, `k == 0`, fewer than two
    /// MLP widths).
    pub fn offset(
        name: &str,
        n_out: usize,
        k: usize,
        neighbor: NeighborMode,
        mlp_widths: Vec<usize>,
    ) -> Self {
        let c = ModuleConfig { name: name.to_owned(), n_out, k, neighbor, mlp_widths, edge: false };
        c.validate();
        c
    }

    /// A DGCNN-style edge module (MLP input = `[x_i | x_j − x_i]`) with
    /// feature-space KNN, DGCNN's dynamic-graph search.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes.
    pub fn edge(name: &str, n_out: usize, k: usize, mlp_widths: Vec<usize>) -> Self {
        Self::edge_with(name, n_out, k, NeighborMode::FeatureKnn, mlp_widths)
    }

    /// An edge module with an explicit neighbor mode — DensePoint's
    /// enhanced aggregation concatenates the centroid feature like an edge
    /// module but searches by ball query in coordinate space.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes.
    pub fn edge_with(
        name: &str,
        n_out: usize,
        k: usize,
        neighbor: NeighborMode,
        mlp_widths: Vec<usize>,
    ) -> Self {
        let c = ModuleConfig { name: name.to_owned(), n_out, k, neighbor, mlp_widths, edge: true };
        c.validate();
        c
    }

    /// A group-all module: every input point in one group, global max.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes.
    pub fn global(name: &str, mlp_widths: Vec<usize>) -> Self {
        let c = ModuleConfig {
            name: name.to_owned(),
            n_out: 1,
            k: 0,
            neighbor: NeighborMode::Global,
            mlp_widths,
            edge: false,
        };
        c.validate();
        c
    }

    fn validate(&self) {
        assert!(self.n_out > 0, "{}: n_out must be positive", self.name);
        assert!(
            self.mlp_widths.len() >= 2,
            "{}: MLP needs at least input and output widths",
            self.name
        );
        assert!(
            self.mlp_widths.iter().all(|&w| w > 0),
            "{}: MLP widths must be positive",
            self.name
        );
        if !matches!(self.neighbor, NeighborMode::Global) {
            assert!(self.k > 0, "{}: k must be positive", self.name);
        }
    }

    /// Per-point input feature dimension `M_in`.
    pub fn m_in(&self) -> usize {
        self.mlp_widths[0]
    }

    /// Output feature dimension `M_out`.
    pub fn m_out(&self) -> usize {
        *self.mlp_widths.last().expect("validated: at least two widths")
    }

    /// The widths of the MLP as actually constructed (the first width is
    /// doubled for edge modules).
    pub fn layer_widths(&self) -> Vec<usize> {
        let mut w = self.mlp_widths.clone();
        if self.edge {
            w[0] *= 2;
        }
        w
    }

    /// Number of MLP layers.
    pub fn depth(&self) -> usize {
        self.mlp_widths.len() - 1
    }
}

/// A module description bound to its trainable shared MLP.
#[derive(Debug, Clone)]
pub struct Module {
    /// The static configuration.
    pub config: ModuleConfig,
    /// The shared MLP implementing `F`.
    pub mlp: SharedMlp,
}

impl Module {
    /// Instantiates the MLP for `config` with fresh weights.
    pub fn new(config: ModuleConfig, norm: NormMode, rng: &mut StdRng) -> Self {
        let mlp = SharedMlp::new(&config.layer_widths(), norm, true, rng);
        Module { config, mlp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_config_dimensions() {
        let c = ModuleConfig::offset("sa1", 512, 32, NeighborMode::CoordKnn, vec![3, 64, 64, 128]);
        assert_eq!(c.m_in(), 3);
        assert_eq!(c.m_out(), 128);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.layer_widths(), vec![3, 64, 64, 128]);
    }

    #[test]
    fn edge_config_doubles_first_width() {
        let c = ModuleConfig::edge("ec1", 1024, 20, vec![3, 64]);
        assert_eq!(c.layer_widths(), vec![6, 64]);
        assert_eq!(c.m_in(), 3);
        assert!(c.edge);
        assert_eq!(c.neighbor, NeighborMode::FeatureKnn);
    }

    #[test]
    fn global_config_has_no_search() {
        let c = ModuleConfig::global("sa3", vec![256, 512, 1024]);
        assert_eq!(c.n_out, 1);
        assert_eq!(c.neighbor, NeighborMode::Global);
    }

    #[test]
    #[should_panic(expected = "n_out must be positive")]
    fn zero_n_out_panics() {
        let _ = ModuleConfig::offset("bad", 0, 8, NeighborMode::CoordKnn, vec![3, 8]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = ModuleConfig::offset("bad", 8, 0, NeighborMode::CoordKnn, vec![3, 8]);
    }

    #[test]
    fn module_builds_mlp_with_doubled_edge_input() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let m = Module::new(ModuleConfig::edge("ec", 16, 4, vec![5, 7]), NormMode::None, &mut rng);
        assert_eq!(m.mlp.widths(), vec![10, 7]);
    }
}
