//! Hash-keyed, true-LRU cache of per-sample engine bindings.
//!
//! The plan-and-execute engine caches the derived [`Bindings`] of every
//! sample it has seen so repeated inference replays pure planned tensor
//! code. The original cache was a flat `Vec` probed with a linear scan and
//! **cleared wholesale** when it reached capacity — fine for bounded eval
//! sets that fit entirely, but a serving workload mixing repeated and fresh
//! traffic walks straight off that cliff: every 1024th fresh sample threw
//! away the hot set, so the next wave of repeated requests all missed at
//! once (a periodic latency spike), and every lookup paid O(entries)
//! regardless.
//!
//! This cache fixes both failure modes:
//!
//! * **lookup** is a hash-map probe on [`PointCloud::content_hash`] with a
//!   [`PointCloud::content_eq`] collision guard — O(1) per request, and a
//!   hit performs zero heap allocations (the LRU relink is pointer surgery
//!   on preallocated slots);
//! * **eviction** removes exactly one entry — the least recently used —
//!   so hot samples survive unbounded fresh traffic and the hit rate
//!   degrades smoothly instead of sawtoothing to zero.
//!
//! Eviction never affects results: a re-seen evicted sample is re-derived
//! through the same deterministic search/stencil code, bit-identically.

use mesorasi_nn::plan::Bindings;
use mesorasi_pointcloud::PointCloud;
use std::collections::HashMap;

/// Default per-plan capacity — covers every eval set in the repo while
/// bounding memory for unbounded streams (the original cache's cap, kept).
pub const DEFAULT_SAMPLE_CACHE_CAP: usize = 1024;

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Traffic counters of one sample cache (monotonic since engine build).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SampleCacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Capacity (0 disables caching entirely).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh derivation.
    pub misses: u64,
    /// Entries evicted (always exactly one per insert at capacity — never
    /// a wholesale clear).
    pub evictions: u64,
}

impl SampleCacheStats {
    /// Accumulates `other` (sessions sum their workers; engines sum their
    /// per-shape plans). `entries`/`capacity` sum too: the aggregate is
    /// "total cached samples / total cache room".
    pub fn add(&mut self, other: &SampleCacheStats) {
        self.entries += other.entries;
        self.capacity += other.capacity;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    hash: u64,
    cloud: PointCloud,
    bindings: Bindings,
    /// Towards more recently used (NIL at the head).
    prev: usize,
    /// Towards less recently used (NIL at the tail).
    next: usize,
}

/// The cache: preallocated slots threaded onto an intrusive LRU list,
/// indexed by content hash.
pub struct SampleCache {
    cap: usize,
    slots: Vec<Slot>,
    /// Content hash → slot ids carrying it (collisions are possible, so a
    /// bucket may hold several slots; `content_eq` disambiguates).
    by_hash: HashMap<u64, Vec<usize>>,
    /// Most recently used slot, or NIL when empty.
    head: usize,
    /// Least recently used slot, or NIL when empty.
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SampleCache {
    /// An empty cache holding at most `cap` samples (0 disables caching).
    pub fn new(cap: usize) -> SampleCache {
        SampleCache {
            cap,
            slots: Vec::new(),
            by_hash: HashMap::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> SampleCacheStats {
        SampleCacheStats {
            entries: self.slots.len(),
            capacity: self.cap,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Looks up the bindings cached for `cloud` (whose content hash the
    /// caller already computed). A hit promotes the entry to
    /// most-recently-used and allocates nothing.
    pub fn lookup(&mut self, hash: u64, cloud: &PointCloud) -> Option<&Bindings> {
        let ids = self.by_hash.get(&hash)?.as_slice();
        let slot = ids.iter().copied().find(|&i| self.slots[i].cloud.content_eq(cloud));
        match slot {
            Some(i) => {
                self.hits += 1;
                self.move_to_front(i);
                Some(&self.slots[i].bindings)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a lookup miss (the caller found no bucket for the hash at
    /// all, so [`SampleCache::lookup`] never ran its counter).
    fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Looks up like [`SampleCache::lookup`] but counts the miss even when
    /// the hash has no bucket. This is the entry point the engine uses.
    pub fn get(&mut self, hash: u64, cloud: &PointCloud) -> Option<&Bindings> {
        if self.by_hash.contains_key(&hash) {
            self.lookup(hash, cloud)
        } else {
            self.note_miss();
            None
        }
    }

    /// Inserts freshly derived bindings for `cloud`, evicting exactly the
    /// least-recently-used entry when at capacity. No-op when the cache is
    /// disabled (`cap == 0`). The caller guarantees `cloud` is not already
    /// cached (it just missed).
    pub fn insert(&mut self, hash: u64, cloud: &PointCloud, bindings: Bindings) {
        if self.cap == 0 {
            return;
        }
        if self.slots.len() >= self.cap {
            // Reuse the evicted slot's cloud buffers for the newcomer.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "cap >= 1 and len >= cap imply a tail");
            self.unlink(victim);
            self.remove_hash_entry(self.slots[victim].hash, victim);
            self.evictions += 1;
            let slot = &mut self.slots[victim];
            slot.hash = hash;
            slot.cloud.copy_from(cloud);
            slot.bindings = bindings;
            self.by_hash.entry(hash).or_default().push(victim);
            self.link_front(victim);
        } else {
            let i = self.slots.len();
            self.slots.push(Slot { hash, cloud: cloud.clone(), bindings, prev: NIL, next: NIL });
            self.by_hash.entry(hash).or_default().push(i);
            self.link_front(i);
        }
    }

    /// Shrinks (or grows) the capacity, evicting least-recently-used
    /// entries until the cache fits. Growing never drops entries.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
        while self.slots.len() > cap {
            let victim = self.tail;
            self.unlink(victim);
            self.remove_hash_entry(self.slots[victim].hash, victim);
            self.evictions += 1;
            // Swap-remove the slot Vec entry and patch the moved slot's id
            // in both the list links and its hash bucket.
            let last = self.slots.len() - 1;
            self.slots.swap_remove(victim);
            if victim != last {
                self.rename_slot(last, victim);
            }
        }
    }

    /// Capacity (0 = disabled).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Heap bytes retained by the cached clouds (the bindings' matrices are
    /// accounted by the arena stats of the plan that shaped them).
    pub fn cloud_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.cloud.storage_bytes()).sum()
    }

    fn move_to_front(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.link_front(i);
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn remove_hash_entry(&mut self, hash: u64, slot: usize) {
        if let Some(bucket) = self.by_hash.get_mut(&hash) {
            bucket.retain(|&s| s != slot);
            if bucket.is_empty() {
                self.by_hash.remove(&hash);
            }
        }
    }

    /// After `swap_remove` moved the slot stored at index `old` to `new`,
    /// fix every reference to it.
    fn rename_slot(&mut self, old: usize, new: usize) {
        let (prev, next, hash) = {
            let s = &self.slots[new];
            (s.prev, s.next, s.hash)
        };
        match prev {
            NIL => {
                if self.head == old {
                    self.head = new;
                }
            }
            p => self.slots[p].next = new,
        }
        match next {
            NIL => {
                if self.tail == old {
                    self.tail = new;
                }
            }
            n => self.slots[n].prev = new,
        }
        if self.head == old {
            self.head = new;
        }
        if self.tail == old {
            self.tail = new;
        }
        if let Some(bucket) = self.by_hash.get_mut(&hash) {
            for s in bucket.iter_mut() {
                if *s == old {
                    *s = new;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::Point3;

    fn cloud(seed: u32) -> PointCloud {
        PointCloud::from_points(vec![Point3::new(seed as f32, 0.0, 1.0)])
    }

    fn bindings() -> Bindings {
        Bindings { inputs: Vec::new(), indices: Vec::new(), stencils: Vec::new() }
    }

    #[test]
    fn hit_promotes_and_counts() {
        let mut cache = SampleCache::new(4);
        for s in 0..3 {
            let c = cloud(s);
            assert!(cache.get(c.content_hash(), &c).is_none());
            cache.insert(c.content_hash(), &c, bindings());
        }
        let c0 = cloud(0);
        assert!(cache.get(c0.content_hash(), &c0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 0));
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn eviction_is_lru_not_wholesale() {
        let mut cache = SampleCache::new(2);
        let (a, b, c) = (cloud(1), cloud(2), cloud(3));
        cache.insert(a.content_hash(), &a, bindings());
        cache.insert(b.content_hash(), &b, bindings());
        // Touch `a` so `b` is the LRU entry, then insert `c`.
        assert!(cache.get(a.content_hash(), &a).is_some());
        cache.insert(c.content_hash(), &c, bindings());
        assert_eq!(cache.len(), 2, "one eviction, not a clear");
        assert!(cache.get(a.content_hash(), &a).is_some(), "recently used survives");
        assert!(cache.get(b.content_hash(), &b).is_none(), "LRU entry evicted");
        assert!(cache.get(c.content_hash(), &c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn hot_entry_survives_unbounded_fresh_traffic() {
        // The cliff regression test at the data-structure level: a hot
        // sample touched between fresh inserts must never be evicted, no
        // matter how many distinct samples stream past.
        let mut cache = SampleCache::new(8);
        let hot = cloud(9999);
        cache.insert(hot.content_hash(), &hot, bindings());
        for s in 0..100 {
            let f = cloud(s);
            assert!(cache.get(f.content_hash(), &f).is_none());
            cache.insert(f.content_hash(), &f, bindings());
            assert!(cache.get(hot.content_hash(), &hot).is_some(), "fresh insert #{s} evicted hot");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 100, "every hot touch hits");
        assert_eq!(stats.evictions, 100 - 7, "one eviction per insert past capacity");
        assert_eq!(stats.entries, 8);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SampleCache::new(0);
        let c = cloud(1);
        cache.insert(c.content_hash(), &c, bindings());
        assert!(cache.is_empty());
        assert!(cache.get(c.content_hash(), &c).is_none());
    }

    #[test]
    fn set_cap_trims_lru_first() {
        let mut cache = SampleCache::new(4);
        for s in 0..4 {
            let c = cloud(s);
            cache.insert(c.content_hash(), &c, bindings());
        }
        // Touch 0 and 1 so 2 is LRU.
        for s in [0, 1] {
            let c = cloud(s);
            assert!(cache.get(c.content_hash(), &c).is_some());
        }
        cache.set_cap(2);
        assert_eq!(cache.len(), 2);
        for (s, want) in [(0u32, true), (1, true), (2, false), (3, false)] {
            let c = cloud(s);
            assert_eq!(cache.get(c.content_hash(), &c).is_some(), want, "seed {s}");
        }
    }

    #[test]
    fn hash_collisions_disambiguate_by_content() {
        // Force a collision by inserting under the same hash key manually.
        let mut cache = SampleCache::new(4);
        let (a, b) = (cloud(1), cloud(2));
        let fake_hash = 42u64;
        cache.insert(fake_hash, &a, bindings());
        cache.insert(fake_hash, &b, bindings());
        assert!(cache.get(fake_hash, &a).is_some());
        assert!(cache.get(fake_hash, &b).is_some());
        assert!(cache.get(fake_hash, &cloud(3)).is_none(), "content guard rejects");
    }

    #[test]
    fn stats_add_and_hit_rate() {
        let mut a = SampleCacheStats { entries: 1, capacity: 4, hits: 3, misses: 1, evictions: 0 };
        let b = SampleCacheStats { entries: 2, capacity: 4, hits: 1, misses: 3, evictions: 2 };
        a.add(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.capacity, 8);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SampleCacheStats::default().hit_rate(), 0.0);
    }
}
