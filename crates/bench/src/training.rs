//! Training loops for the accuracy experiment (Fig. 16).
//!
//! The paper trains all seven networks "with delayed-aggregation from
//! scratch until the accuracy converges" and compares against the original
//! formulation (§VII-B). These loops do the same on the synthetic tasks at
//! reduced scale: one loop per task family (classification, part
//! segmentation, frustum detection), each parameterized by the execution
//! [`Strategy`] so the identical code trains both formulations.

use mesorasi_core::Strategy;
use mesorasi_networks::datasets::{Dataset, FrustumExample};
use mesorasi_networks::fpointnet::FPointNet;
use mesorasi_networks::session::{Session, SessionBuilder};
use mesorasi_networks::PointCloudNetwork;
use mesorasi_nn::metrics::{accuracy, bev_iou, geometric_mean, ConfusionMatrix};
use mesorasi_nn::optim::{Adam, Optimizer};
use mesorasi_nn::Graph;
use mesorasi_pointcloud::{Point3, PointCloud};
use mesorasi_tensor::Matrix;
use rand::seq::SliceRandom;

/// One evaluation session over a weight snapshot of `net`: the batched
/// inference path ([`Session::infer_batch`]) chunks the test set over the
/// session's worker engines, each of which compiles one plan and replays
/// its chunk against a reusable arena.
fn eval_session(net: &dyn PointCloudNetwork, strategy: Strategy, seed: u64) -> Session {
    SessionBuilder::from_network_ref(net).strategy(strategy).seed(seed).build()
}

/// Epoch-seeded training order: batch-size-1 SGD over class-sorted data
/// would otherwise forget early classes every epoch.
fn shuffled_order(n: usize, seed: u64, epoch: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = mesorasi_pointcloud::seeded_rng(seed ^ (epoch as u64).wrapping_mul(0x9e37));
    order.shuffle(&mut rng);
    order
}

/// Hyper-parameters shared by the training loops.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sampling seed (kept fixed across strategies for comparability).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        // Small-batch training of deep unnormalized-ish stacks is
        // collapse-prone at higher rates (a whole class of runs degenerates
        // to constant predictions); 5e-4 is stable for all seven networks.
        TrainConfig { epochs: 12, lr: 5e-4, seed: 7 }
    }
}

/// Trains a classification network and returns test accuracy in percent.
pub fn train_classifier(
    net: &mut dyn PointCloudNetwork,
    ds: &Dataset,
    strategy: Strategy,
    cfg: TrainConfig,
) -> f64 {
    let mut opt = Adam::new(cfg.lr);
    for epoch in 0..cfg.epochs {
        for i in shuffled_order(ds.train.len(), cfg.seed, epoch) {
            let cloud = ds.augmented_train_cloud(i, epoch as u64);
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, cfg.seed);
            let l = g.softmax_cross_entropy(out.logits, vec![ds.train[i].label]);
            g.backward(l);
            opt.step(&mut net.params_mut(), &g);
        }
    }
    evaluate_classifier(net, ds, strategy, cfg.seed)
}

/// Test accuracy (%) of a classification network. Runs batched on a
/// [`Session`] (bit-identical to tape forwards).
pub fn evaluate_classifier(
    net: &dyn PointCloudNetwork,
    ds: &Dataset,
    strategy: Strategy,
    seed: u64,
) -> f64 {
    let session = eval_session(net, strategy, seed);
    let clouds: Vec<&PointCloud> = ds.test.iter().map(|ex| &ex.cloud).collect();
    let predictions: Vec<u32> = session
        .infer_batch(&clouds)
        .into_iter()
        .map(|out| out.into_classification().predicted())
        .collect();
    let labels: Vec<u32> = ds.test.iter().map(|ex| ex.label).collect();
    accuracy(&predictions, &labels) * 100.0
}

/// Trains a segmentation network and returns test mIoU in percent.
pub fn train_segmenter(
    net: &mut dyn PointCloudNetwork,
    ds: &Dataset,
    parts: u32,
    strategy: Strategy,
    cfg: TrainConfig,
) -> f64 {
    let mut opt = Adam::new(cfg.lr);
    for epoch in 0..cfg.epochs {
        for i in shuffled_order(ds.train.len(), cfg.seed, epoch) {
            let cloud = ds.augmented_train_cloud(i, epoch as u64);
            let labels = cloud.labels().expect("segmentation clouds are labelled").to_vec();
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, cfg.seed);
            let l = g.softmax_cross_entropy(out.logits, labels);
            g.backward(l);
            opt.step(&mut net.params_mut(), &g);
        }
    }
    evaluate_segmenter(net, ds, parts, strategy, cfg.seed)
}

/// Test mIoU (%) of a segmentation network (batched [`Session`]).
pub fn evaluate_segmenter(
    net: &dyn PointCloudNetwork,
    ds: &Dataset,
    parts: u32,
    strategy: Strategy,
    seed: u64,
) -> f64 {
    let session = eval_session(net, strategy, seed);
    let clouds: Vec<&PointCloud> = ds.test.iter().map(|ex| &ex.cloud).collect();
    let per_example = session.infer_batch(&clouds);
    let mut cm = ConfusionMatrix::new(parts as usize);
    for (ex, out) in ds.test.iter().zip(per_example) {
        let predictions = out.into_segmentation().labels();
        cm.record(&predictions, ex.cloud.labels().expect("labelled"));
    }
    cm.mean_iou() * 100.0
}

/// Centroid of the points the box network actually sees (the ground-truth
/// mask crop) — box residuals are regressed relative to this, mirroring
/// \[41\]'s mask-coordinate frame.
fn mask_centroid(net: &FPointNet, cloud: &PointCloud) -> Point3 {
    let mask = net.mask_indices(cloud);
    cloud.select(&mask).centroid()
}

/// Regression target for a frustum's box head:
/// `[cx − mx, cy − my, 0, w, h, 0, 0]` relative to the mask centroid.
fn box_target(net: &FPointNet, ex: &FrustumExample) -> Matrix {
    let (cx, cy, w, h) = ex.bev_box;
    let m = mask_centroid(net, &ex.cloud);
    Matrix::from_vec(1, 7, vec![cx - m.x, cy - m.y, 0.0, w, h, 0.0, 0.0])
}

/// Trains the F-PointNet pipeline (segmentation + box regression jointly)
/// and returns the geometric mean over object classes of the mean BEV IoU —
/// the paper's detection metric (§VI).
pub fn train_detector(
    net: &mut FPointNet,
    train: &[FrustumExample],
    test: &[FrustumExample],
    strategy: Strategy,
    cfg: TrainConfig,
) -> f64 {
    let mut opt = Adam::new(cfg.lr);
    for epoch in 0..cfg.epochs {
        for i in shuffled_order(train.len(), cfg.seed, epoch) {
            let ex = &train[i];
            let mut g = Graph::new();
            let det = net.forward_detection(&mut g, &ex.cloud, strategy, cfg.seed);
            let labels = ex.cloud.labels().expect("frustums are labelled").to_vec();
            let seg_loss = g.softmax_cross_entropy(det.seg_logits, labels);
            let target = g.input(box_target(net, ex));
            let box_loss = g.mse(det.box_params, target);
            let box_loss = g.scale(box_loss, 0.5);
            let total = g.add(seg_loss, box_loss);
            g.backward(total);
            opt.step(&mut net.params_mut(), &g);
        }
    }
    evaluate_detector(net, test, strategy, cfg.seed)
}

/// Detection metric: geometric mean over classes of mean BEV IoU between
/// the regressed box and ground truth.
pub fn evaluate_detector(
    net: &FPointNet,
    test: &[FrustumExample],
    strategy: Strategy,
    seed: u64,
) -> f64 {
    let session = eval_session(net, strategy, seed);
    let clouds: Vec<&PointCloud> = test.iter().map(|ex| &ex.cloud).collect();
    let ious: Vec<f64> = session
        .infer_batch(&clouds)
        .into_iter()
        .zip(test)
        .map(|(out, ex)| {
            let boxes = out.into_detection();
            let predicted = boxes.bev_box(mask_centroid(net, &ex.cloud));
            bev_iou(predicted, ex.bev_box)
        })
        .collect();
    let mut per_class: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (ex, iou) in test.iter().zip(ious) {
        per_class[ex.class as usize].push(iou);
    }
    let class_means: Vec<f64> = per_class
        .iter()
        .filter(|v| !v.is_empty())
        .map(|v| v.iter().sum::<f64>() / v.len() as f64)
        .collect();
    if class_means.is_empty() {
        return 0.0;
    }
    geometric_mean(&class_means) * 100.0
}

/// Predicted-mask quality (per-point accuracy, %) — a secondary diagnostic
/// for the detection pipeline.
pub fn detector_mask_accuracy(
    net: &FPointNet,
    test: &[FrustumExample],
    strategy: Strategy,
    seed: u64,
) -> f64 {
    let session = eval_session(net, strategy, seed);
    let clouds: Vec<&PointCloud> = test.iter().map(|ex| &ex.cloud).collect();
    let per_example = session.infer_batch(&clouds);
    let mut predictions = Vec::new();
    let mut labels = Vec::new();
    for (ex, out) in test.iter().zip(per_example) {
        predictions.extend(out.into_detection().mask_labels());
        labels.extend_from_slice(ex.cloud.labels().expect("labelled"));
    }
    accuracy(&predictions, &labels) * 100.0
}

/// Rebalances a frustum set so every class has at least one test example;
/// returns (train, test) splits.
pub fn split_frustums(
    mut frustums: Vec<FrustumExample>,
    test_fraction: f64,
) -> (Vec<FrustumExample>, Vec<FrustumExample>) {
    assert!((0.0..1.0).contains(&test_fraction));
    // Deterministic interleave: every ceil(1/f)-th example goes to test.
    let stride = (1.0 / test_fraction).ceil() as usize;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, ex) in frustums.drain(..).enumerate() {
        if i % stride == 0 {
            test.push(ex);
        } else {
            train.push(ex);
        }
    }
    (train, test)
}

/// Helper used by tests and the quickstart example: augmentation-free
/// single-cloud overfit check, returning the final loss.
pub fn overfit_single_cloud(
    net: &mut dyn PointCloudNetwork,
    cloud: &PointCloud,
    label: u32,
    strategy: Strategy,
    iters: usize,
    lr: f32,
) -> f32 {
    let mut opt = Adam::new(lr);
    let mut last = f32::INFINITY;
    for _ in 0..iters {
        let mut g = Graph::new();
        let out = net.forward(&mut g, cloud, strategy, 1);
        let l = g.softmax_cross_entropy(out.logits, vec![label]);
        last = g.value(l)[(0, 0)];
        g.backward(l);
        opt.step(&mut net.params_mut(), &g);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_networks::pointnetpp::PointNetPP;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn overfitting_one_cloud_drives_loss_down() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let mut net = PointNetPP::classification_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Chair, 128, 1);
        let final_loss = overfit_single_cloud(&mut net, &cloud, 2, Strategy::Delayed, 30, 5e-3);
        assert!(final_loss < 0.2, "single-sample overfit must converge, got {final_loss}");
    }

    #[test]
    fn split_frustums_partitions_everything() {
        let frustums = mesorasi_networks::datasets::frustums(2, 64, 3);
        let n = frustums.len();
        let (train, test) = split_frustums(frustums, 0.25);
        assert_eq!(train.len() + test.len(), n);
        assert!(!test.is_empty());
    }
}
