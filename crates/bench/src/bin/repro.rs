//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p mesorasi-bench --bin repro            # everything
//! cargo run --release -p mesorasi-bench --bin repro -- fig17   # one figure
//! cargo run --release -p mesorasi-bench --bin repro -- --list  # list ids
//! ```

use mesorasi_bench::{experiments, Context};
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("Regenerates the paper's tables and figures.");
        println!();
        println!("usage: repro [--list] [EXPERIMENT_ID ...]");
        println!();
        println!("With no arguments every experiment runs in order. Paper-scale");
        println!("traces are built once (in parallel) and shared.");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _) in experiments::all() {
            println!("{id}");
        }
        return;
    }

    let ctx = Context::new();
    let known = experiments::all();
    let selected: Vec<String> =
        if args.is_empty() { known.iter().map(|(id, _)| (*id).to_owned()).collect() } else { args };

    // Reject unknown ids before the expensive trace warm-up.
    for id in &selected {
        if !known.iter().any(|(name, _)| name == id) {
            eprintln!("[repro] unknown experiment '{id}'; use --list");
            std::process::exit(2);
        }
    }

    // Warm the trace cache in parallel for the trace-based experiments.
    let needs_traces =
        selected.iter().any(|id| !matches!(id.as_str(), "table1" | "fig06" | "area" | "fig16"));
    if needs_traces {
        eprintln!("[repro] building paper-scale traces (parallel)...");
        let t0 = Instant::now();
        ctx.warm_traces(&NetworkKind::ALL, &Strategy::ALL);
        eprintln!("[repro] traces ready in {:.1}s", t0.elapsed().as_secs_f64());
    }

    for id in &selected {
        let t0 = Instant::now();
        let output = experiments::run_one(&ctx, id).expect("ids validated above");
        println!("{output}");
        eprintln!("[repro] {id} done in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
}
