//! Regenerates the paper's tables and figures, and runs the perf harness.
//!
//! ```text
//! cargo run --release -p mesorasi-bench --bin repro            # everything
//! cargo run --release -p mesorasi-bench --bin repro -- fig17   # one figure
//! cargo run --release -p mesorasi-bench --bin repro -- --list  # list ids
//! cargo run --release -p mesorasi-bench --bin repro -- bench --json --smoke
//! ```

use mesorasi_bench::{diff, experiments, perf, serve_bench, Context};
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use std::io::Write;
use std::time::Instant;

/// Writes `s` plus a newline to stdout. A closed pipe (`repro ... | head`)
/// is a clean exit, not a panic — the standard Rust CLI SIGPIPE wart.
fn emit(s: &str) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = writeln!(out, "{s}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {e}");
    }
}

/// Probes that `path` is writable *before* the expensive measurement
/// runs, so a bad `--out` fails in milliseconds with a clear message
/// instead of a panic that loses a multi-minute run. The probe creates
/// (or truncates nothing of) the file; the real artifact overwrites it.
fn ensure_writable(path: &str) {
    if let Err(e) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        eprintln!("[repro] cannot write --out path {path}: {e}");
        std::process::exit(2);
    }
}

/// Compares a fresh (or `--current`) bench artifact against a committed
/// baseline (`repro bench-diff --baseline PATH [--current PATH]
/// [--threshold X] [--smoke]`) and exits non-zero past the threshold.
fn run_bench_diff(args: &[String]) -> ! {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = diff::DEFAULT_THRESHOLD;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("[repro] --baseline requires a path");
                    std::process::exit(2);
                }
            },
            "--current" => match it.next() {
                Some(p) => current_path = Some(p.clone()),
                None => {
                    eprintln!("[repro] --current requires a path");
                    std::process::exit(2);
                }
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 1.0 => threshold = t,
                _ => {
                    eprintln!("[repro] --threshold requires a number > 1.0");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "[repro] unknown bench-diff flag '{other}' (use --baseline PATH, \
                     --current PATH, --threshold X, --smoke)"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(baseline_path) = baseline_path else {
        eprintln!("[repro] bench-diff requires --baseline PATH (the committed BENCH_*.json)");
        std::process::exit(2);
    };

    let read_report = |path: &str| -> diff::ParsedReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("[repro] cannot read {path}: {e}");
            std::process::exit(2);
        });
        diff::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("[repro] cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };

    let baseline = read_report(&baseline_path);
    let current = match current_path {
        Some(p) => read_report(&p),
        None => {
            // Measure fresh, at the baseline's own scale unless --smoke
            // forces the reduced workloads (the diff refuses mismatches).
            eprintln!(
                "[repro] bench-diff: measuring a fresh {} run against {baseline_path}...",
                if smoke { "smoke" } else { "full" }
            );
            let report = perf::run(smoke);
            diff::parse_report(&report.to_json()).expect("the writer's own output parses")
        }
    };

    let d = diff::diff(&baseline, &current, threshold).unwrap_or_else(|e| {
        eprintln!("[repro] bench-diff: {e}");
        std::process::exit(2);
    });
    emit(d.to_table().trim_end());
    let regressions = d.regressions();
    for r in &regressions {
        eprintln!(
            "[repro] TRAJECTORY REGRESSION: {} is {:.2}x its committed baseline (gate: {:.2}x)",
            r.key, r.ratio, threshold
        );
    }
    std::process::exit(if regressions.is_empty() { 0 } else { 1 });
}

/// Runs the perf harness (`repro bench [--json] [--smoke] [--out PATH]`).
fn run_bench(args: &[String]) -> ! {
    let mut json = false;
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("[repro] --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("[repro] unknown bench flag '{other}' (use --json, --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    if let Some(p) = &out_path {
        ensure_writable(p);
    }
    eprintln!(
        "[repro] bench: {} workloads on {} host thread(s)...",
        if smoke { "smoke" } else { "full" },
        mesorasi_par::current_threads()
    );
    let report = perf::run(smoke);

    // The JSON artifact and the regression gate are the point of this
    // subcommand — neither may be skipped because stdout went away
    // (`repro bench ... | head`), so both happen before, and independently
    // of, table printing. A broken pipe here only silences the table.
    if json {
        let path = out_path.unwrap_or_else(|| report.filename());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("[repro] cannot write {path}: {e} — the run is lost, fix the path");
            std::process::exit(2);
        }
        eprintln!("[repro] wrote {path}");
    }

    {
        let mut out = std::io::stdout().lock();
        if let Err(e) = writeln!(out, "{}", report.to_table().trim_end()) {
            if e.kind() != std::io::ErrorKind::BrokenPipe {
                panic!("failed writing to stdout: {e}");
            }
        }
    }

    let regressions = report.regressions();
    let engine_regressions = report.engine_regressions();
    let batch_regressions = report.batch_regressions();
    if smoke
        && !(regressions.is_empty()
            && engine_regressions.is_empty()
            && batch_regressions.is_empty())
    {
        for r in &regressions {
            eprintln!(
                "[repro] REGRESSION: {}/{} at {} threads is {:.2}x the sequential time \
                 (gate: 1.5x)",
                r.op,
                r.backend,
                r.threads,
                r.speedup_vs_1t.map_or(f64::INFINITY, |s| 1.0 / s)
            );
        }
        for r in &engine_regressions {
            let vs_tape = r.extra.map_or(0.0, |e| e.speedup_vs_tape);
            eprintln!(
                "[repro] REGRESSION: planned inference on {} is {:.2}x the tape time \
                 (gate: planned must not be slower)",
                r.backend,
                if vs_tape > 0.0 { 1.0 / vs_tape } else { f64::INFINITY }
            );
        }
        for r in &batch_regressions {
            let b = r.batch.expect("batch regressions carry batch extras");
            eprintln!(
                "[repro] REGRESSION: infer_batch({}) on {} is {:.2}x the sequential \
                 per-sample time (gate: 1.5x)",
                b.batch_size,
                r.backend,
                if b.speedup_vs_sequential > 0.0 {
                    1.0 / b.speedup_vs_sequential
                } else {
                    f64::INFINITY
                }
            );
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Runs the served-latency harness
/// (`repro serve-bench [--json] [--smoke] [--out PATH]`).
fn run_serve_bench(args: &[String]) -> ! {
    let mut json = false;
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("[repro] --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "[repro] unknown serve-bench flag '{other}' (use --json, --smoke, --out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(p) = &out_path {
        ensure_writable(p);
    }
    eprintln!(
        "[repro] serve-bench: {} streams, {} load, {} host thread(s)...",
        serve_bench::STREAMS,
        if smoke { "smoke" } else { "full" },
        mesorasi_par::current_threads()
    );
    let report = serve_bench::run(smoke);

    if json {
        let path = out_path.unwrap_or_else(|| format!("SERVE_{}.json", report.date));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("[repro] cannot write {path}: {e} — the run is lost, fix the path");
            std::process::exit(2);
        }
        eprintln!("[repro] wrote {path}");
    }

    {
        let mut out = std::io::stdout().lock();
        if let Err(e) = writeln!(out, "{}", report.to_table().trim_end()) {
            if e.kind() != std::io::ErrorKind::BrokenPipe {
                panic!("failed writing to stdout: {e}");
            }
        }
    }

    // Unlike `bench`, the serve gate holds in full runs too: sheds and
    // latency cliffs are correctness-adjacent, not tuning noise.
    let violations = report.serve_regressions();
    for v in &violations {
        eprintln!("[repro] REGRESSION: {v}");
    }
    std::process::exit(if violations.is_empty() { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        emit("Regenerates the paper's tables and figures.");
        emit("");
        emit("usage: repro [--list] [EXPERIMENT_ID ...]");
        emit("       repro bench [--json] [--smoke] [--out PATH]");
        emit("       repro serve-bench [--json] [--smoke] [--out PATH]");
        emit("       repro bench-diff --baseline PATH [--current PATH]");
        emit("                        [--threshold X] [--smoke]");
        emit("");
        emit("With no arguments every experiment runs in order. Paper-scale");
        emit("traces are built once (in parallel) and shared.");
        emit("");
        emit("`repro bench` times the parallel kernels across a thread sweep,");
        emit("whole-network forwards (tape vs Session), and batched Session");
        emit("throughput; --json writes BENCH_<date>.json (mesorasi-bench/8),");
        emit("--smoke runs reduced workloads and exits non-zero if a parallel,");
        emit("planned, or batched path regresses past its gate.");
        emit("");
        emit("`repro serve-bench` serves inference over TCP and drives it with");
        emit("concurrent sensor-replay streams (fresh vs mixed traffic),");
        emit("reporting p50/p99/p999 request latency; --json writes");
        emit("SERVE_<date>.json (same mesorasi-bench/8 schema). Exits non-zero");
        emit("on any shed request or a mixed-traffic p99 beyond 1.5x fresh.");
        emit("MESORASI_THREADS caps the pool.");
        emit("");
        emit("`repro bench-diff` compares a bench artifact (--current, or a");
        emit("fresh in-process run) against a committed baseline per (op,");
        emit("backend, threads, dtype, batch) record, printing a trajectory");
        emit("table and exiting non-zero when any shared configuration is");
        emit("more than --threshold (default 1.5) times slower.");
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-diff") {
        run_bench_diff(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-bench") {
        run_serve_bench(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _) in experiments::all() {
            emit(id);
        }
        return;
    }

    let ctx = Context::new();
    let known = experiments::all();
    let selected: Vec<String> =
        if args.is_empty() { known.iter().map(|(id, _)| (*id).to_owned()).collect() } else { args };

    // Reject unknown ids before the expensive trace warm-up.
    for id in &selected {
        if !known.iter().any(|(name, _)| name == id) {
            eprintln!("[repro] unknown experiment '{id}'; use --list");
            std::process::exit(2);
        }
    }

    // Warm the trace cache in parallel for the trace-based experiments.
    let needs_traces =
        selected.iter().any(|id| !matches!(id.as_str(), "table1" | "fig06" | "area" | "fig16"));
    if needs_traces {
        eprintln!("[repro] building paper-scale traces (parallel)...");
        let t0 = Instant::now();
        ctx.warm_traces(&NetworkKind::ALL, &Strategy::ALL);
        eprintln!("[repro] traces ready in {:.1}s", t0.elapsed().as_secs_f64());
    }

    for id in &selected {
        let t0 = Instant::now();
        let output = experiments::run_one(&ctx, id).expect("ids validated above");
        emit(&output);
        eprintln!("[repro] {id} done in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
}
