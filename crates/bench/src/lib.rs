//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each `experiments::figNN` module reproduces one figure: it assembles the
//! workload (paper-scale network traces on synthetic clouds), runs the
//! hardware models, and prints a paper-value-vs-measured table. The `repro`
//! binary runs them all (`cargo run --release -p mesorasi-bench --bin
//! repro`); `EXPERIMENTS.md` archives the output.
//!
//! The [`Context`] caches paper-scale traces — the expensive part — so
//! experiments that share workloads (most of them) build each trace once.

#![forbid(unsafe_code)]

pub mod context;
pub mod diff;
pub mod experiments;
pub mod largecloud;
pub mod perf;
pub mod serve_bench;
pub mod training;

pub use context::Context;
