//! Bench-trajectory regression diff (`repro bench-diff`).
//!
//! Compares a freshly measured `BENCH_<date>.json` against a committed
//! baseline from an earlier PR, record by record, and fails when any
//! shared configuration got more than `threshold`× slower. This is the
//! longitudinal complement to the smoke gates in [`crate::perf`]: those
//! compare configurations against each other *within* one run (parallel
//! vs sequential, planned vs tape); this module compares the same
//! configuration against its own past, so a kernel that silently loses
//! its vectorized path — still self-consistent, still passing every
//! smoke gate — shows up as a trajectory regression.
//!
//! Records are matched on their full identity: `(op, backend, threads,
//! dtype, batch, tile_budget)`. `dtype` is absent on native-f32 records
//! (see [`crate::perf`], schema `/6`), `batch` distinguishes the
//! `infer_batch` sweep points that share an `(op, backend, threads)`
//! triple, and `tile_budget` (schema `/7`) does the same for the
//! `stream_tiled` sweep points. Keys present on only one side are
//! reported but never fail the
//! gate — new kernels appear and old ones retire as the repo grows, and
//! a trajectory gate that punished adding a benchmark would teach people
//! not to add benchmarks.
//!
//! Smoke and full runs use different workload sizes, so their times are
//! not comparable; [`diff`] refuses to cross them rather than emitting a
//! table of meaningless ratios.
//!
//! The parser is hand-rolled like the writer in [`crate::perf`] (this
//! environment has no JSON dependency) but general: it accepts any JSON
//! document and then projects out the bench fields, so field order,
//! whitespace, and unknown extras never break the gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Regression tolerance the CI gate applies when `--threshold` is not
/// given: a record may be up to 1.5× slower than the baseline (the
/// repo's standard tolerance, absorbing runner-to-runner jitter) before
/// the diff fails.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

// ---------------------------------------------------------------------
// Minimal JSON reader.
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` (the bench schema never needs
/// more than 53 bits of integer precision).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry the byte offset so a truncated
/// or hand-edited baseline fails with a pointer, not a shrug.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("input was a str"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(format!("malformed number at byte {start}"))
}

// ---------------------------------------------------------------------
// Bench-report projection.
// ---------------------------------------------------------------------

/// One record as read back from a bench artifact — only the identity
/// fields and the measurement the trajectory gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRecord {
    /// Kernel / phase name.
    pub op: String,
    /// Implementation / network the op ran on.
    pub backend: String,
    /// Thread count of the measurement.
    pub threads: u64,
    /// Element type; `"f32"` when the record carries no `dtype` field.
    pub dtype: String,
    /// Batch size for `infer_batch` records, 0 otherwise (part of the
    /// key: batch sizes share an `(op, backend, threads)` triple).
    pub batch: u64,
    /// Tile budget for `stream_tiled` records, 0 otherwise (part of the
    /// key: tile budgets share an `(op, backend, threads)` triple).
    pub tile_budget: u64,
    /// Mean wall time per operation, nanoseconds.
    pub ns_per_op: f64,
}

impl DiffRecord {
    /// Human-readable identity, used as the match key and in tables.
    pub fn key(&self) -> String {
        let mut k = format!("{}/{}", self.op, self.backend);
        if self.batch > 0 {
            let _ = write!(k, "[batch={}]", self.batch);
        }
        if self.tile_budget > 0 {
            let _ = write!(k, "[tile={}]", self.tile_budget);
        }
        if self.dtype != "f32" {
            let _ = write!(k, "[{}]", self.dtype);
        }
        let _ = write!(k, " @{}t", self.threads);
        k
    }
}

/// A bench artifact read back for diffing.
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// The artifact's `schema` string (e.g. `mesorasi-bench/6`).
    pub schema: String,
    /// The artifact's run date.
    pub date: String,
    /// Whether the run used the reduced smoke workloads.
    pub smoke: bool,
    /// The measurements.
    pub records: Vec<DiffRecord>,
}

/// Reads a bench JSON artifact back into diffable form.
///
/// Accepts every `mesorasi-bench/N` version: older artifacts simply
/// lack the newer identity fields, which default (`dtype` → `"f32"`,
/// `batch` → 0), so a `/5` baseline still diffs against a `/6` run for
/// the records both carry.
pub fn parse_report(src: &str) -> Result<ParsedReport, String> {
    let doc = parse_json(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field — not a bench artifact?")?;
    if !schema.starts_with("mesorasi-bench/") {
        return Err(format!("unrecognized schema {schema:?} (want mesorasi-bench/N)"));
    }
    let date = doc.get("date").and_then(Json::as_str).unwrap_or("unknown").to_owned();
    let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let records = doc
        .get("records")
        .and_then(|r| match r {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("missing `records` array")?;
    let mut out = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let field_str = |k: &str| {
            r.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("record {i}: missing string field `{k}`"))
        };
        let field_num = |k: &str| {
            r.get(k).and_then(Json::as_f64).ok_or(format!("record {i}: missing number field `{k}`"))
        };
        out.push(DiffRecord {
            op: field_str("op")?,
            backend: field_str("backend")?,
            threads: field_num("threads")? as u64,
            dtype: r.get("dtype").and_then(Json::as_str).unwrap_or("f32").to_owned(),
            batch: r.get("batch").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            tile_budget: r.get("tile_budget").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            ns_per_op: field_num("ns_per_op")?,
        });
    }
    Ok(ParsedReport { schema: schema.to_owned(), date, smoke, records: out })
}

// ---------------------------------------------------------------------
// The diff itself.
// ---------------------------------------------------------------------

/// One matched configuration: the same key measured in both runs.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The shared record identity (see [`DiffRecord::key`]).
    pub key: String,
    /// Baseline time, ns/op.
    pub base_ns: f64,
    /// Current time, ns/op.
    pub cur_ns: f64,
    /// `cur_ns / base_ns` — above 1.0 is slower than the baseline.
    pub ratio: f64,
}

/// The full comparison of two bench artifacts.
#[derive(Debug)]
pub struct DiffReport {
    /// Matched configurations, worst ratio first.
    pub rows: Vec<DiffRow>,
    /// Keys only the baseline has (retired benchmarks — informational).
    pub only_baseline: Vec<String>,
    /// Keys only the current run has (new benchmarks — informational).
    pub only_current: Vec<String>,
    /// The failure threshold the gate applies.
    pub threshold: f64,
}

impl DiffReport {
    /// Rows slower than the threshold. Empty means the gate passes.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.ratio > self.threshold).collect()
    }

    /// Plain-text table, worst ratio first, regressions flagged.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<44} {:>14} {:>14} {:>8}",
            "op/backend @threads", "baseline ns", "current ns", "ratio"
        );
        for r in &self.rows {
            let flag = if r.ratio > self.threshold {
                "  REGRESSION"
            } else if r.ratio < 1.0 / self.threshold {
                "  improved"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "{:<44} {:>14.0} {:>14.0} {:>7.2}x{flag}",
                r.key, r.base_ns, r.cur_ns, r.ratio
            );
        }
        for k in &self.only_baseline {
            let _ = writeln!(s, "{k:<44}  (baseline only — retired?)");
        }
        for k in &self.only_current {
            let _ = writeln!(s, "{k:<44}  (current only — new)");
        }
        let n_reg = self.regressions().len();
        let _ = writeln!(
            s,
            "{} configurations compared, {} regression(s) past {:.2}x",
            self.rows.len(),
            n_reg,
            self.threshold
        );
        s
    }
}

/// Compares `current` against `baseline` at `threshold`.
///
/// # Errors
///
/// Refuses to compare a smoke run against a full run — their workload
/// sizes differ, so every ratio would be noise.
pub fn diff(
    baseline: &ParsedReport,
    current: &ParsedReport,
    threshold: f64,
) -> Result<DiffReport, String> {
    if baseline.smoke != current.smoke {
        return Err(format!(
            "cannot compare a {} baseline against a {} run — workload sizes differ \
             (regenerate the baseline with the matching `repro bench` mode)",
            mode(baseline.smoke),
            mode(current.smoke)
        ));
    }
    // BTreeMap keeps key order deterministic; a key measured twice in one
    // artifact (it never is today) keeps its last record, on both sides.
    let base: BTreeMap<String, f64> =
        baseline.records.iter().map(|r| (r.key(), r.ns_per_op)).collect();
    let cur: BTreeMap<String, f64> =
        current.records.iter().map(|r| (r.key(), r.ns_per_op)).collect();

    let mut rows = Vec::new();
    for (key, &base_ns) in &base {
        if let Some(&cur_ns) = cur.get(key) {
            let ratio = if base_ns > 0.0 { cur_ns / base_ns } else { 1.0 };
            rows.push(DiffRow { key: key.clone(), base_ns, cur_ns, ratio });
        }
    }
    rows.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    let only_baseline = base.keys().filter(|k| !cur.contains_key(*k)).cloned().collect();
    let only_current = cur.keys().filter(|k| !base.contains_key(*k)).cloned().collect();
    Ok(DiffReport { rows, only_baseline, only_current, threshold })
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{BenchRecord, BenchReport};

    fn record(
        op: &'static str,
        backend: &'static str,
        threads: usize,
        dtype: Option<&'static str>,
        ns: f64,
    ) -> BenchRecord {
        BenchRecord {
            op,
            backend,
            threads,
            dtype,
            ns_per_op: ns,
            speedup_vs_1t: Some(1.0),
            extra: None,
            batch: None,
            search: None,
            serve: None,
            stream: None,
        }
    }

    fn report(smoke: bool, records: Vec<BenchRecord>) -> BenchReport {
        BenchReport { date: "2026-08-08".into(), unix_time: 1, host_threads: 2, smoke, records }
    }

    #[test]
    fn roundtrips_the_writers_own_output() {
        let rep = report(
            false,
            vec![
                record("matmul", "tensor", 2, None, 1000.0),
                record("matmul", "tensor", 1, Some("f64"), 9000.0),
            ],
        );
        let parsed = parse_report(&rep.to_json()).expect("writer output parses");
        assert_eq!(parsed.schema, "mesorasi-bench/8");
        assert!(!parsed.smoke);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].dtype, "f32");
        assert_eq!(parsed.records[1].dtype, "f64");
        assert_eq!(parsed.records[0].key(), "matmul/tensor @2t");
        assert_eq!(parsed.records[1].key(), "matmul/tensor[f64] @1t");
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let base = parse_report(
            &report(false, vec![record("matmul", "tensor", 2, None, 1000.0)]).to_json(),
        )
        .unwrap();
        let slow = parse_report(
            &report(false, vec![record("matmul", "tensor", 2, None, 2000.0)]).to_json(),
        )
        .unwrap();
        let d = diff(&base, &slow, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(d.regressions().len(), 1);
        assert!((d.regressions()[0].ratio - 2.0).abs() < 1e-9);
        assert!(d.to_table().contains("REGRESSION"), "{}", d.to_table());
    }

    #[test]
    fn jitter_inside_the_threshold_passes() {
        let base =
            parse_report(&report(false, vec![record("knn", "kdtree", 1, None, 1000.0)]).to_json())
                .unwrap();
        let cur =
            parse_report(&report(false, vec![record("knn", "kdtree", 1, None, 1400.0)]).to_json())
                .unwrap();
        assert!(diff(&base, &cur, DEFAULT_THRESHOLD).unwrap().regressions().is_empty());
    }

    #[test]
    fn unmatched_keys_inform_but_never_fail() {
        let base =
            parse_report(&report(false, vec![record("old_op", "x", 1, None, 10.0)]).to_json())
                .unwrap();
        let cur =
            parse_report(&report(false, vec![record("new_op", "y", 1, None, 10.0)]).to_json())
                .unwrap();
        let d = diff(&base, &cur, DEFAULT_THRESHOLD).unwrap();
        assert!(d.rows.is_empty());
        assert!(d.regressions().is_empty());
        assert_eq!(d.only_baseline, vec!["old_op/x @1t"]);
        assert_eq!(d.only_current, vec!["new_op/y @1t"]);
    }

    #[test]
    fn smoke_vs_full_refuses_to_compare() {
        let base = parse_report(&report(true, vec![]).to_json()).unwrap();
        let cur = parse_report(&report(false, vec![]).to_json()).unwrap();
        let err = diff(&base, &cur, DEFAULT_THRESHOLD).unwrap_err();
        assert!(err.contains("smoke"), "{err}");
    }

    #[test]
    fn batch_sizes_get_distinct_keys() {
        // infer_batch records share (op, backend, threads); the batch size
        // keeps their keys — and therefore their trajectories — separate.
        let mut r2 = record("infer_batch", "PointNet++ (c)", 2, None, 100.0);
        r2.batch = Some(crate::perf::BatchExtra {
            batch_size: 2,
            samples_per_sec: 1.0,
            speedup_vs_sequential: 1.0,
        });
        let mut r8 = record("infer_batch", "PointNet++ (c)", 2, None, 50.0);
        r8.batch = Some(crate::perf::BatchExtra {
            batch_size: 8,
            samples_per_sec: 1.0,
            speedup_vs_sequential: 1.0,
        });
        let parsed = parse_report(&report(false, vec![r2, r8]).to_json()).unwrap();
        let keys: Vec<String> = parsed.records.iter().map(DiffRecord::key).collect();
        assert_eq!(
            keys,
            vec![
                "infer_batch/PointNet++ (c)[batch=2] @2t",
                "infer_batch/PointNet++ (c)[batch=8] @2t"
            ]
        );
    }

    #[test]
    fn tile_budgets_get_distinct_keys() {
        // stream_tiled records share (op, backend, threads); the tile
        // budget keeps their trajectories separate, and the untiled
        // baseline (tile_budget 0) stays a plain key.
        let stream = |op: &'static str, tile: usize, ns: f64| {
            let mut r = record(op, "PointNet++ (c)", 2, None, ns);
            r.stream = Some(crate::perf::StreamExtra {
                tile_budget: tile,
                frames: 8,
                p99_frame_us: 100,
                speedup_vs_untiled: 1.0,
            });
            r
        };
        let rep = report(
            false,
            vec![
                stream("stream_tiled", 256, 100.0),
                stream("stream_tiled", 1024, 90.0),
                stream("stream_untiled", 0, 150.0),
            ],
        );
        let parsed = parse_report(&rep.to_json()).unwrap();
        let keys: Vec<String> = parsed.records.iter().map(DiffRecord::key).collect();
        assert_eq!(
            keys,
            vec![
                "stream_tiled/PointNet++ (c)[tile=256] @2t",
                "stream_tiled/PointNet++ (c)[tile=1024] @2t",
                "stream_untiled/PointNet++ (c) @2t"
            ]
        );
    }

    #[test]
    fn parser_survives_escapes_and_unknown_fields() {
        let doc = r#"{
            "schema": "mesorasi-bench/6", "date": "2026-08-08", "smoke": false,
            "future_field": [1, {"nested": null}],
            "records": [
                { "op": "knn", "backend": "a \"quoted\" grid", "threads": 4,
                  "ns_per_op": 12.5, "whatever": true }
            ]
        }"#;
        let parsed = parse_report(doc).expect("tolerant of unknown fields");
        assert_eq!(parsed.records[0].backend, "a \"quoted\" grid");
        assert_eq!(parsed.records[0].threads, 4);
    }

    #[test]
    fn malformed_json_errors_with_position() {
        let err = parse_report("{ \"schema\": \"mesorasi-bench/6\", ").unwrap_err();
        assert!(err.contains("byte") || err.contains("end of input"), "{err}");
        let err = parse_report("{}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
