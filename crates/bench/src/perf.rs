//! Machine-readable performance harness (`repro bench`).
//!
//! Measures the hot kernels — the matmul family, the grouped reductions,
//! and every neighbor-search backend with its index build/query split —
//! across a thread sweep, plus whole network forwards on both execution
//! engines (autograd tape vs a [`Session`]), batched session throughput,
//! and streamed frame sequences, and emits the results as
//! `BENCH_<date>.json` so the ROADMAP's performance trajectory accumulates
//! comparable data points across PRs.
//!
//! JSON schema (`mesorasi-bench/8`):
//!
//! ```json
//! {
//!   "schema": "mesorasi-bench/8",
//!   "date": "2026-07-28",
//!   "unix_time": 1785000000,
//!   "host_threads": 8,
//!   "smoke": false,
//!   "records": [
//!     { "op": "matmul", "backend": "tensor", "threads": 2,
//!       "ns_per_op": 812345.6, "speedup_vs_1t": 1.94 },
//!     { "op": "matmul", "backend": "naive", "threads": 2,
//!       "ns_per_op": 2712345.6, "speedup_vs_1t": 1.91 },
//!     { "op": "matmul", "backend": "tensor", "threads": 1,
//!       "ns_per_op": 9123456.7, "dtype": "f64", "speedup_vs_1t": 1.0 },
//!     { "op": "index_build", "backend": "kdtree", "threads": 1,
//!       "ns_per_op": 93210.5, "speedup_vs_1t": 1.0 },
//!     { "op": "index_build", "backend": "octree-1m-paged", "threads": 1,
//!       "ns_per_op": 48123456.0, "speedup_vs_1t": 1.0 },
//!     { "op": "query", "backend": "octree-128k-lod4", "threads": 2,
//!       "ns_per_op": 812345.0, "speedup_vs_1t": 1.88 },
//!     { "op": "forward_planned", "backend": "PointNet++ (c)", "threads": 8,
//!       "ns_per_op": 212345.6, "speedup_vs_tape": 3.41,
//!       "arena_peak_bytes": 1843200, "arena_slot_reuse": 6.5 },
//!     { "op": "infer_batch", "backend": "PointNet++ (c)", "threads": 8,
//!       "ns_per_op": 61234.5, "batch": 8, "samples_per_sec": 16330.6,
//!       "speedup_vs_sequential": 3.47 },
//!     { "op": "infer_frames", "backend": "PointNet++ (c)", "threads": 8,
//!       "ns_per_op": 70123.4, "frames": 24,
//!       "distance_evals_per_frame": 1843200.0,
//!       "index_builds_per_frame": 4.0,
//!       "index_build_ns_per_frame": 81234.0,
//!       "query_ns_per_frame": 412345.0 },
//!     { "op": "serve_mixed", "backend": "PointNet++ (c)", "threads": 8,
//!       "ns_per_op": 812345.0, "streams": 4, "requests": 256,
//!       "throughput_rps": 1234.5, "p50_us": 700, "p99_us": 1400,
//!       "p999_us": 1900, "shed": 0, "errored": 0 },
//!     { "op": "stream_tiled", "backend": "PointNet++ (c)", "threads": 2,
//!       "ns_per_op": 512345.0, "tile_budget": 256, "frames": 120,
//!       "p99_frame_us": 780, "speedup_vs_untiled": 1.62 }
//!   ]
//! }
//! ```
//!
//! `speedup_vs_1t` is the same op/backend's 1-thread time divided by this
//! record's time (1.0 for the 1-thread record itself; omitted on records
//! with no 1-thread baseline, i.e. the network forwards). The `knn` /
//! `ball` kernel records time pure *queries* against prebuilt indices;
//! the `index_build` records (new in `/4`) time a warm in-place rebuild
//! (`build_into`) of each index backend, so the build-vs-query split the
//! planner's cost model reasons about is measured directly. `forward_tape`
//! / `forward_planned` records compare the two engines per network (smoke:
//! kernel-sized instances; full: paper-scale); planned records carry the
//! arena statistics (`arena_peak_bytes`, `arena_slot_reuse` — values per
//! physical buffer) and `speedup_vs_tape`. `infer_batch` records time
//! [`Session::infer_batch`] per batch size: `ns_per_op` is per *sample*,
//! `samples_per_sec` is the batch throughput, and `speedup_vs_sequential`
//! divides the same network's single-sample sequential time
//! (`forward_planned`) by the per-sample batched time. `infer_frames`
//! records (new in `/4`) time [`Session::frames`] over a pool of distinct
//! same-shaped clouds — the streaming path re-searches every frame, so
//! unlike `forward_planned` (NIT-cache steady state) they include real
//! search work — and carry the session's [`mesorasi_knn::stats`] search
//! counters per frame: distance evaluations and the index-build vs query
//! time split of genuine inference traffic (Fig. 6-style analysis without
//! synthetic workloads).
//!
//! New in `/6`: the `matmul` kernel runs at paper scale (a 2048-point
//! feature block, `(2048, 128) x (128, 128)`) and is recorded through
//! three implementations — the register-tiled fast tier (`backend:
//! "tensor"`), the pre-tier reference kernel (`backend: "naive"`), and
//! the f64 shadow kernel (`backend: "tensor"`, `"dtype": "f64"`). The
//! optional `dtype` field is part of a record's identity for
//! [`crate::diff`] (`repro bench-diff`); records without it are the
//! native f32 tier. The committed artifact therefore carries the fast
//! tier's speedup over the scalar reference (the ISSUE's >= 2x
//! acceptance bar) as an ordinary pair of records.
//!
//! New in `/7`: the tiled streaming sweep and the full transpose-product
//! kernel family. `stream_tiled` records time [`Session::frames`] on a
//! tile-streaming session ([`SessionBuilder::tile_budget`]) over the same
//! distinct-cloud pool as `infer_frames`, for every tile budget in
//! [`STREAM_TILE_BUDGETS`] crossed with the thread sweep (so 1- and
//! 2-thread rows exist on any host, like the kernel records); the extras
//! carry the budget (part of the record's identity for `bench-diff`), the
//! frame count, the p99 frame latency (nearest-rank, microseconds), and
//! `speedup_vs_untiled` — the `stream_untiled` baseline's ns/frame over
//! this record's (the `stream_untiled` record is the same workload
//! through a sequential untiled session, the pre-tiling configuration;
//! it carries `tile_budget: 0`). The `matmul_at_b` / `matmul_a_bt`
//! kernels are recorded through both the register-tiled fast tier
//! (`backend: "tensor"`) and the pre-tier reference (`backend: "naive"`),
//! completing the naive-vs-tensor pairs the `/6` schema introduced for
//! `matmul`.
//!
//! New in `/8`: the out-of-core sweep (see [`crate::largecloud`]).
//! `index_build` and `query` records at 2^17- and 2^20-point scales
//! (smoke: one 2^15-point cloud) measure the octree backend — resident,
//! behind a ⅛-storage pager budget (`-paged`), and answering from the
//! depth-4 LOD sample (`-lod4`) — against the kd-tree and grid backends
//! on the same synthetic cloud. The cloud size and mode are encoded in
//! the backend label (`octree-1m-paged`, `kdtree-128k`, ...) because a
//! record's `bench-diff` identity is `(op, backend, threads, dtype)`.
//!
//! `serve_fresh` / `serve_mixed` records (new in `/5`, produced by
//! `repro serve-bench`, see [`crate::serve_bench`]) measure end-to-end
//! request latency through the `mesorasi-serve` network server under
//! concurrent client streams: `ns_per_op` is the mean send→response
//! latency, and the extras carry the latency tail (`p50_us` / `p99_us` /
//! `p999_us`, nearest-rank), achieved throughput, and the shed/error
//! counts. `serve_fresh` sends never-repeating clouds (every request an
//! engine NIT-cache miss); `serve_mixed` sends the hot-set-plus-fresh mix
//! a deployed server sees, where the engine cache must help.
//!
//! Four smoke gates guard CI: any parallel record more than 1.5× slower
//! than its own sequential baseline fails (parallelism may never change
//! results, and may not wreck performance either), any network whose
//! planned forward is slower than its tape forward fails (the inference
//! engine must never lose to the allocating tape), any batched record
//! more than 1.5× slower per sample than sequential single-sample
//! inference fails (batching must never wreck throughput), and any serve
//! record with sheds/errors, or a `serve_mixed` p99 more than 1.5× its
//! `serve_fresh` p99, fails (cache-friendly traffic may never develop a
//! latency cliff — the repo's standard 1.5× tolerance).

use mesorasi_core::Strategy;
use mesorasi_knn::feature::FeatureView;
use mesorasi_knn::{ball, bruteforce, feature, grid::UniformGrid, kdtree::KdTree};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_networks::session::{Session, SessionBuilder};
use mesorasi_nn::Graph;
use mesorasi_par as par;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{sampling, PointCloud};
use mesorasi_tensor::{group, ops, ops64, Matrix, Matrix64};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Planned-engine extras carried by `forward_planned` records (schema
/// `mesorasi-bench/2`).
#[derive(Debug, Clone, Copy)]
pub struct EngineExtra {
    /// Tape ns over planned ns for the same network and thread count.
    pub speedup_vs_tape: f64,
    /// Total bytes of the plan's arena.
    pub arena_peak_bytes: usize,
    /// Intermediates per physical buffer (1.0 = no reuse).
    pub arena_slot_reuse: f64,
}

/// Batched-throughput extras carried by `infer_batch` records (schema
/// `mesorasi-bench/3`).
#[derive(Debug, Clone, Copy)]
pub struct BatchExtra {
    /// Samples per [`Session::infer_batch`] call.
    pub batch_size: usize,
    /// Steady-state throughput of the batched call.
    pub samples_per_sec: f64,
    /// Sequential single-sample ns over batched per-sample ns for the same
    /// network (>1 means batching helps).
    pub speedup_vs_sequential: f64,
}

/// Search-traffic extras carried by `infer_frames` records (schema
/// `mesorasi-bench/4`): the session's search counters over the timed
/// window, normalized per frame.
#[derive(Debug, Clone, Copy)]
pub struct SearchExtra {
    /// Frames inferred in the timed window.
    pub frames: usize,
    /// Pairwise distance evaluations per frame (measured, not modeled).
    pub distance_evals_per_frame: f64,
    /// Index (re)builds per frame.
    pub index_builds_per_frame: f64,
    /// Nanoseconds spent building indices, per frame.
    pub index_build_ns_per_frame: f64,
    /// Nanoseconds spent answering queries, per frame.
    pub query_ns_per_frame: f64,
}

/// Served-latency extras carried by `serve_fresh` / `serve_mixed` records
/// (schema `mesorasi-bench/5`): the tail of end-to-end request latency
/// through the network server under concurrent streams.
#[derive(Debug, Clone, Copy)]
pub struct ServeExtra {
    /// Concurrent client connections the load ran over.
    pub streams: usize,
    /// Requests sent across all streams.
    pub requests: u64,
    /// Completed requests per second of wall-clock (slowest stream's
    /// window).
    pub throughput_rps: f64,
    /// Median send→response latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds (nearest-rank).
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds (nearest-rank).
    pub p999_us: u64,
    /// Requests shed by server admission control.
    pub shed: u64,
    /// Requests failed with any other typed error.
    pub errored: u64,
}

/// Tiled-streaming extras carried by `stream_tiled` / `stream_untiled`
/// records (schema `mesorasi-bench/7`).
#[derive(Debug, Clone, Copy)]
pub struct StreamExtra {
    /// Points per tile the session streamed with; `0` on the
    /// `stream_untiled` baseline record.
    pub tile_budget: usize,
    /// Frames inferred in the timed window.
    pub frames: usize,
    /// 99th-percentile frame latency, microseconds (nearest-rank).
    pub p99_frame_us: u64,
    /// The `stream_untiled` baseline's ns/frame over this record's
    /// (1.0 on the baseline itself; >1 means tiling + workers help).
    pub speedup_vs_untiled: f64,
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Kernel name (`matmul`, `knn`, `forward_tape`, `forward_planned`,
    /// `infer_batch`, ...).
    pub op: &'static str,
    /// Implementation / search structure / network the op ran on.
    pub backend: &'static str,
    /// Effective thread count the measurement ran at.
    pub threads: usize,
    /// Element type the kernel ran in; `None` means the native f32 tier
    /// (the only case before `/6`), `Some("f64")` the shadow-precision
    /// kernels. Part of the record's identity for `bench-diff`.
    pub dtype: Option<&'static str>,
    /// Mean wall time per operation, in nanoseconds (per sample for
    /// `infer_batch` records).
    pub ns_per_op: f64,
    /// `ns(1 thread) / ns(this)` for the same op/backend; `None` when no
    /// 1-thread baseline was measured (the network-forward records, which
    /// run at the host thread count only).
    pub speedup_vs_1t: Option<f64>,
    /// Planned-engine extras (`forward_planned` records only).
    pub extra: Option<EngineExtra>,
    /// Batched-throughput extras (`infer_batch` records only).
    pub batch: Option<BatchExtra>,
    /// Search-traffic extras (`infer_frames` records only).
    pub search: Option<SearchExtra>,
    /// Served-latency extras (`serve_fresh` / `serve_mixed` records only).
    pub serve: Option<ServeExtra>,
    /// Tiled-streaming extras (`stream_tiled` / `stream_untiled` records
    /// only).
    pub stream: Option<StreamExtra>,
}

/// A full harness run: records plus the metadata the JSON header carries.
#[derive(Debug)]
pub struct BenchReport {
    /// ISO `YYYY-MM-DD` of the run (UTC).
    pub date: String,
    /// Seconds since the Unix epoch at the start of the run.
    pub unix_time: u64,
    /// Hardware/env thread budget ([`par::current_threads`] outside any
    /// override) at run time.
    pub host_threads: usize,
    /// Whether the reduced smoke workloads were used.
    pub smoke: bool,
    /// All measurements, in (op, backend, threads) order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// `BENCH_<date>.json`, the canonical artifact name.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes the report (no external JSON dependency in this
    /// environment, so the writer is hand-rolled; the schema is flat).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mesorasi-bench/8\",\n");
        s.push_str(&format!("  \"date\": \"{}\",\n", self.date));
        s.push_str(&format!("  \"unix_time\": {},\n", self.unix_time));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let extra = r.extra.map_or(String::new(), |e| {
                format!(
                    ", \"speedup_vs_tape\": {:.3}, \"arena_peak_bytes\": {}, \
                     \"arena_slot_reuse\": {:.2}",
                    e.speedup_vs_tape, e.arena_peak_bytes, e.arena_slot_reuse
                )
            });
            let batch = r.batch.map_or(String::new(), |b| {
                format!(
                    ", \"batch\": {}, \"samples_per_sec\": {:.1}, \
                     \"speedup_vs_sequential\": {:.3}",
                    b.batch_size, b.samples_per_sec, b.speedup_vs_sequential
                )
            });
            let search = r.search.map_or(String::new(), |f| {
                format!(
                    ", \"frames\": {}, \"distance_evals_per_frame\": {:.1}, \
                     \"index_builds_per_frame\": {:.2}, \
                     \"index_build_ns_per_frame\": {:.1}, \"query_ns_per_frame\": {:.1}",
                    f.frames,
                    f.distance_evals_per_frame,
                    f.index_builds_per_frame,
                    f.index_build_ns_per_frame,
                    f.query_ns_per_frame
                )
            });
            let serve = r.serve.map_or(String::new(), |v| {
                format!(
                    ", \"streams\": {}, \"requests\": {}, \"throughput_rps\": {:.1}, \
                     \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"shed\": {}, \
                     \"errored\": {}",
                    v.streams,
                    v.requests,
                    v.throughput_rps,
                    v.p50_us,
                    v.p99_us,
                    v.p999_us,
                    v.shed,
                    v.errored
                )
            });
            let stream = r.stream.map_or(String::new(), |t| {
                format!(
                    ", \"tile_budget\": {}, \"frames\": {}, \"p99_frame_us\": {}, \
                     \"speedup_vs_untiled\": {:.3}",
                    t.tile_budget, t.frames, t.p99_frame_us, t.speedup_vs_untiled
                )
            });
            let speedup =
                r.speedup_vs_1t.map_or(String::new(), |s| format!(", \"speedup_vs_1t\": {s:.3}"));
            let dtype = r.dtype.map_or(String::new(), |d| format!(", \"dtype\": \"{d}\""));
            s.push_str(&format!(
                "    {{ \"op\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
                 \"ns_per_op\": {:.1}{dtype}{speedup}{extra}{batch}{search}{serve}{stream} }}{}\n",
                r.op,
                r.backend,
                r.threads,
                r.ns_per_op,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Plain-text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# bench {} (host threads: {}{})\n",
            self.date,
            self.host_threads,
            if self.smoke { ", smoke" } else { "" }
        ));
        s.push_str(&format!(
            "{:<18} {:<11} {:>7} {:>14} {:>12}\n",
            "op", "backend", "threads", "ns/op", "speedup"
        ));
        for r in &self.records {
            let extra = r.extra.map_or(String::new(), |e| {
                format!(
                    "   vs tape {:.2}x, arena {} KiB, reuse {:.1}",
                    e.speedup_vs_tape,
                    e.arena_peak_bytes / 1024,
                    e.arena_slot_reuse
                )
            });
            let batch = r.batch.map_or(String::new(), |b| {
                format!(
                    "   batch {:>2}: {:.0} samples/s, vs sequential {:.2}x",
                    b.batch_size, b.samples_per_sec, b.speedup_vs_sequential
                )
            });
            let search = r.search.map_or(String::new(), |f| {
                format!(
                    "   {:.0} dist evals/frame, build {:.0} ns + query {:.0} ns",
                    f.distance_evals_per_frame, f.index_build_ns_per_frame, f.query_ns_per_frame
                )
            });
            let serve = r.serve.map_or(String::new(), |v| {
                format!(
                    "   {} streams, {:.0} req/s, p50 {} us, p99 {} us, p999 {} us, shed {}",
                    v.streams, v.throughput_rps, v.p50_us, v.p99_us, v.p999_us, v.shed
                )
            });
            let stream = r.stream.map_or(String::new(), |t| {
                format!(
                    "   tile {} x {} frames, p99 {} us, vs untiled {:.2}x",
                    t.tile_budget, t.frames, t.p99_frame_us, t.speedup_vs_untiled
                )
            });
            let speedup = r.speedup_vs_1t.map_or("          -".into(), |s| format!("{s:>11.2}x"));
            let backend = match r.dtype {
                Some(d) => format!("{} ({d})", r.backend),
                None => r.backend.to_owned(),
            };
            s.push_str(&format!(
                "{:<18} {:<14} {:>7} {:>14.0} {speedup}{extra}{batch}{search}{serve}{stream}\n",
                r.op, backend, r.threads, r.ns_per_op
            ));
        }
        s
    }

    /// The CI smoke gate: parallel configurations more than 1.5× slower
    /// than their own sequential baseline. Empty means the gate passes.
    pub fn regressions(&self) -> Vec<&BenchRecord> {
        self.records
            .iter()
            .filter(|r| r.threads > 1 && r.speedup_vs_1t.is_some_and(|s| s < 1.0 / 1.5))
            .collect()
    }

    /// The engine smoke gate: networks whose planned forward was slower
    /// than their tape forward. Empty means the gate passes.
    pub fn engine_regressions(&self) -> Vec<&BenchRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.op == "forward_planned" && r.extra.is_some_and(|e| e.speedup_vs_tape < 1.0)
            })
            .collect()
    }

    /// The batching smoke gate: `infer_batch` records more than 1.5× slower
    /// per sample than sequential single-sample inference on the same
    /// network (the same tolerance the parallel gate applies, absorbing
    /// dispatch jitter on small hosts). Empty means the gate passes.
    pub fn batch_regressions(&self) -> Vec<&BenchRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.op == "infer_batch"
                    && r.batch.is_some_and(|b| b.speedup_vs_sequential < 1.0 / 1.5)
            })
            .collect()
    }

    /// The serving smoke gate, as human-readable violations (empty means
    /// the gate passes): no serve record may shed or error — the load
    /// generator sizes the queue so a healthy scheduler admits everything
    /// — and `serve_mixed` p99 latency may not exceed 1.5× the same
    /// backend's `serve_fresh` p99. Under the old wholesale cache clear,
    /// mixed traffic periodically hit an emptied cache and its tail blew
    /// past fresh-traffic latency; true LRU keeps the hot set resident, so
    /// this gate holding is exactly the "no cache cliff" property, served.
    pub fn serve_regressions(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for r in &self.records {
            let Some(v) = r.serve else { continue };
            if v.shed > 0 {
                violations.push(format!(
                    "{}/{}: {} of {} requests shed (gate: a sized queue sheds none)",
                    r.op, r.backend, v.shed, v.requests
                ));
            }
            if v.errored > 0 {
                violations.push(format!(
                    "{}/{}: {} of {} requests errored",
                    r.op, r.backend, v.errored, v.requests
                ));
            }
        }
        for mixed in self.records.iter().filter(|r| r.op == "serve_mixed") {
            let Some(m) = mixed.serve else { continue };
            let fresh = self
                .records
                .iter()
                .find(|r| r.op == "serve_fresh" && r.backend == mixed.backend)
                .and_then(|r| r.serve);
            if let Some(f) = fresh {
                if m.p99_us as f64 > 1.5 * f.p99_us as f64 {
                    violations.push(format!(
                        "serve_mixed/{}: p99 {} us exceeds 1.5x serve_fresh p99 {} us \
                         (cache-friendly traffic developed a latency cliff)",
                        mixed.backend, m.p99_us, f.p99_us
                    ));
                }
            }
        }
        violations
    }
}

/// Time budget per measured configuration.
fn budget(smoke: bool) -> Duration {
    if smoke {
        Duration::from_millis(25)
    } else {
        Duration::from_millis(150)
    }
}

/// Mean ns per call of `f` under `budget`, after one warm-up call.
pub(crate) fn time_ns<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The thread counts swept: 1 (sequential baseline), 2, and the host
/// budget. The 2-thread point is measured even on a 1-core host — the
/// pool override forces the worker count, exactly as `MESORASI_THREADS=2`
/// would — so the JSON artifact always carries speedup-trackable records
/// (a 1-core CI runner used to emit only `threads=1` rows, useless for
/// the perf trajectory). Counts beyond 2 stay host-capped because
/// oversubscription measures scheduler contention, not the backend.
fn thread_sweep(host: usize) -> Vec<usize> {
    let mut sweep = vec![1, 2, host];
    sweep.retain(|&t| t <= host || t == 2);
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// A deterministic test matrix (no RNG needed: a fixed mixing formula).
fn bench_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) % 29) as f32 * 0.1 - 1.4)
}

struct Workloads {
    mm_a: Matrix,
    mm_b: Matrix,
    red_src: Matrix,
    red_groups: Vec<usize>,
    red_k: usize,
    cloud: PointCloud,
    queries: Vec<usize>,
    knn_k: usize,
    radius: f32,
    feat_dim: usize,
}

impl Workloads {
    fn new(smoke: bool) -> Self {
        let (m, k, n) = if smoke { (96, 64, 64) } else { (2048, 128, 128) };
        let (points, n_queries, knn_k) = if smoke { (512, 128, 8) } else { (2048, 512, 16) };
        let (n_groups, red_k, red_cols) = if smoke { (128, 16, 64) } else { (512, 32, 128) };
        let red_src = bench_matrix(points, red_cols);
        let red_groups: Vec<usize> =
            (0..n_groups * red_k).map(|i| (i * 7 + i / red_k) % points).collect();
        let cloud = sample_shape(ShapeClass::Chair, points, 2020);
        let queries = sampling::random_indices(&cloud, n_queries, 7);
        Workloads {
            mm_a: bench_matrix(m, k),
            mm_b: bench_matrix(k, n),
            red_src,
            red_groups,
            red_k,
            cloud,
            queries,
            knn_k,
            radius: 0.25,
            feat_dim: if smoke { 16 } else { 32 },
        }
    }
}

/// Runs the full harness: every kernel at every swept thread count.
pub fn run(smoke: bool) -> BenchReport {
    let host_threads = par::current_threads();
    let sweep = thread_sweep(host_threads);
    let budget = budget(smoke);
    let w = Workloads::new(smoke);

    let grid = UniformGrid::build(&w.cloud, w.radius);
    let tree = KdTree::build(&w.cloud);
    let feat = bench_matrix(w.cloud.len(), w.feat_dim);
    let mm_at = w.mm_a.transposed();
    // Warm in-place rebuilds: what the search arena pays per streamed
    // frame, as opposed to the pure-query `knn`/`ball` records below.
    let kd_rebuild = std::cell::RefCell::new(KdTree::build(&w.cloud));
    let grid_rebuild = std::cell::RefCell::new(UniformGrid::build(&w.cloud, w.radius));

    // The fast-tier acceptance comparison: the same paper-scale product
    // through the pre-tier reference kernel and the f64 shadow kernel, so
    // the committed artifact carries the tier speedup and the cost of
    // shadow precision as first-class records.
    let naive_out = std::cell::RefCell::new(Matrix::zeros(0, 0));
    let at_b_naive_out = std::cell::RefCell::new(Matrix::zeros(0, 0));
    let a_bt_naive_out = std::cell::RefCell::new(Matrix::zeros(0, 0));
    let mm_bt = w.mm_b.transposed();
    let mut mm_a64 = Matrix64::zeros(0, 0);
    let mut mm_b64 = Matrix64::zeros(0, 0);
    mm_a64.copy_widened(&w.mm_a);
    mm_b64.copy_widened(&w.mm_b);
    let mm_out64 = std::cell::RefCell::new(Matrix64::zeros(0, 0));

    // (op, backend, dtype, runner) — each runner is one timed call.
    type Kernel<'a> = (&'static str, &'static str, Option<&'static str>, Box<dyn Fn() + 'a>);
    let kernels: Vec<Kernel<'_>> = vec![
        ("matmul", "tensor", None, Box::new(|| drop(black_box(ops::matmul(&w.mm_a, &w.mm_b))))),
        (
            "matmul",
            "naive",
            None,
            Box::new(|| ops::naive::matmul_into(&w.mm_a, &w.mm_b, &mut naive_out.borrow_mut())),
        ),
        (
            "matmul",
            "tensor",
            Some("f64"),
            Box::new(|| ops64::matmul_into(&mm_a64, &mm_b64, &mut mm_out64.borrow_mut())),
        ),
        (
            "matmul_at_b",
            "tensor",
            None,
            Box::new(|| drop(black_box(ops::matmul_at_b(&mm_at, &w.mm_b)))),
        ),
        (
            "matmul_at_b",
            "naive",
            None,
            Box::new(|| {
                ops::naive::matmul_at_b_into(&mm_at, &w.mm_b, &mut at_b_naive_out.borrow_mut())
            }),
        ),
        (
            "matmul_a_bt",
            "tensor",
            None,
            Box::new(|| drop(black_box(ops::matmul_a_bt(&w.mm_a, &mm_bt)))),
        ),
        (
            "matmul_a_bt",
            "naive",
            None,
            Box::new(|| {
                ops::naive::matmul_a_bt_into(&w.mm_a, &mm_bt, &mut a_bt_naive_out.borrow_mut())
            }),
        ),
        (
            "group_max_reduce",
            "tensor",
            None,
            Box::new(|| {
                let gathered = group::gather_rows(&w.red_src, &w.red_groups);
                drop(black_box(group::group_max_reduce(&gathered, w.red_k)))
            }),
        ),
        (
            "gather_max_reduce",
            "tensor",
            None,
            Box::new(|| {
                drop(black_box(group::gather_max_reduce(&w.red_src, &w.red_groups, w.red_k)))
            }),
        ),
        (
            "knn",
            "bruteforce",
            None,
            Box::new(|| drop(black_box(bruteforce::knn_indices(&w.cloud, &w.queries, w.knn_k)))),
        ),
        (
            "knn",
            "kdtree",
            None,
            Box::new(|| drop(black_box(tree.knn_indices(&w.cloud, &w.queries, w.knn_k)))),
        ),
        (
            "ball",
            "kdtree",
            None,
            Box::new(|| {
                drop(black_box(ball::ball_query(&w.cloud, &tree, &w.queries, w.radius, w.knn_k)))
            }),
        ),
        (
            "ball",
            "grid",
            None,
            Box::new(|| drop(black_box(grid.ball_query(&w.cloud, &w.queries, w.radius, w.knn_k)))),
        ),
        (
            "knn",
            "feature",
            None,
            Box::new(|| {
                let view = FeatureView::new(feat.as_slice(), w.feat_dim)
                    .expect("bench feature matrix is rectangular");
                drop(black_box(feature::knn_rows(view, &w.queries, w.knn_k)))
            }),
        ),
        ("index_build", "kdtree", None, Box::new(|| kd_rebuild.borrow_mut().build_into(&w.cloud))),
        ("index_build", "grid", None, Box::new(|| grid_rebuild.borrow_mut().build_into(&w.cloud))),
    ];

    let mut records = Vec::new();
    for (op, backend, dtype, kernel) in &kernels {
        let mut base_ns = 0.0f64;
        for &threads in &sweep {
            let ns = par::with_threads(threads, || time_ns(budget, kernel));
            if threads == 1 {
                base_ns = ns;
            }
            let speedup = if ns > 0.0 && base_ns > 0.0 { base_ns / ns } else { 1.0 };
            records.push(BenchRecord {
                op,
                backend,
                threads,
                dtype: *dtype,
                ns_per_op: ns,
                speedup_vs_1t: Some(speedup),
                extra: None,
                batch: None,
                search: None,
                serve: None,
                stream: None,
            });
        }
    }
    records.extend(crate::largecloud::records(smoke, budget, &sweep));
    records.extend(net_forward_records(smoke, budget));
    records.extend(stream_records(smoke, budget));

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    BenchReport { date: utc_date(unix_time), unix_time, host_threads, smoke, records }
}

/// Batch sizes the throughput sweep measures per network.
const BATCH_SIZES: [usize; 2] = [2, 8];

/// Whole-network forwards — tape vs [`Session`] — plus batched session
/// throughput, at the current host thread count. Smoke uses the
/// kernel-sized (small) instances; the full run uses paper scale — the
/// acceptance bars are planned ≤ tape and batched ≤ sequential on every
/// network. The session timings are the steady state ([`Session::warm`]
/// pre-compiles every worker's plan and fills its NIT cache outside the
/// clock), i.e. the serving path; the tape timing is what the eval loops
/// paid before the engine existed (fresh graph, fresh searches, per-op
/// allocation).
fn net_forward_records(smoke: bool, budget: Duration) -> Vec<BenchRecord> {
    let threads = par::current_threads();
    let mut rng = mesorasi_pointcloud::seeded_rng(2020);
    let mut records = Vec::new();
    for kind in NetworkKind::ALL {
        let net = if smoke { kind.build_small(10, &mut rng) } else { kind.build_paper(&mut rng) };
        let n = net.input_points();
        let cloud = sample_shape(ShapeClass::Chair, n, 77);

        let tape_ns = time_ns(budget, || {
            let mut g = Graph::new();
            black_box(net.forward(&mut g, &cloud, Strategy::Delayed, 7));
        });

        // At most max(BATCH_SIZES) engines ever serve a batch; capping the
        // pool spares warm() from compiling paper-scale plans for workers
        // the sweep would never touch.
        let max_batch = BATCH_SIZES[BATCH_SIZES.len() - 1];
        let session: Session =
            SessionBuilder::from_boxed(net).seed(7).workers(threads.min(max_batch)).build();
        session.warm(&cloud);
        let planned_ns = time_ns(budget, || {
            black_box(session.infer(&cloud));
        });
        let stats = session.arena_stats(n).expect("warmed above");

        records.push(BenchRecord {
            op: "forward_tape",
            backend: kind.name(),
            threads,
            dtype: None,
            ns_per_op: tape_ns,
            speedup_vs_1t: None,
            extra: None,
            batch: None,
            search: None,
            serve: None,
            stream: None,
        });
        records.push(BenchRecord {
            op: "forward_planned",
            backend: kind.name(),
            threads,
            dtype: None,
            ns_per_op: planned_ns,
            speedup_vs_1t: None,
            extra: Some(EngineExtra {
                speedup_vs_tape: if planned_ns > 0.0 { tape_ns / planned_ns } else { 1.0 },
                arena_peak_bytes: stats.arena.peak_bytes,
                arena_slot_reuse: stats.arena.reuse_ratio,
            }),
            batch: None,
            search: None,
            serve: None,
            stream: None,
        });

        // Batched throughput: every worker engine is warm on `cloud`, so a
        // batch of refs to it measures pure batch-path cost (chunking, pool
        // dispatch, parallel replay) against the sequential baseline above.
        for batch_size in BATCH_SIZES {
            let batch: Vec<&PointCloud> = (0..batch_size).map(|_| &cloud).collect();
            let batch_call_ns = time_ns(budget, || {
                black_box(session.infer_batch(&batch));
            });
            let per_sample_ns = batch_call_ns / batch_size as f64;
            records.push(BenchRecord {
                op: "infer_batch",
                backend: kind.name(),
                threads,
                dtype: None,
                ns_per_op: per_sample_ns,
                speedup_vs_1t: None,
                extra: None,
                batch: Some(BatchExtra {
                    batch_size,
                    samples_per_sec: if per_sample_ns > 0.0 { 1e9 / per_sample_ns } else { 0.0 },
                    speedup_vs_sequential: if per_sample_ns > 0.0 {
                        planned_ns / per_sample_ns
                    } else {
                        1.0
                    },
                }),
                search: None,
                serve: None,
                stream: None,
            });
        }

        records.push(frames_record(&session, kind.name(), n, threads, budget));
    }
    records
}

/// Distinct same-shaped clouds the frame-sequence sweep cycles through
/// (distinct contents force real per-frame searches, as in deployment).
const FRAME_POOL: usize = 4;

/// Times [`Session::frames`] over a pool of distinct clouds and reads the
/// session's search counters across the timed window — the record that
/// carries measured per-frame search traffic (distance evaluations, index
/// build vs query time) off real inference work.
fn frames_record(
    session: &Session,
    backend: &'static str,
    n: usize,
    threads: usize,
    budget: Duration,
) -> BenchRecord {
    let clouds: Vec<PointCloud> =
        (0..FRAME_POOL).map(|s| sample_shape(ShapeClass::Chair, n, 500 + s as u64)).collect();
    // Warm the streaming path on the frame shapes, then release the engine
    // so the counter snapshot below can lock the pool.
    let mut frames = session.frames();
    for cloud in &clouds {
        black_box(frames.infer(cloud));
    }
    drop(frames);

    let before = session.search_counters();
    let mut frames = session.frames();
    let start = Instant::now();
    let mut done = 0usize;
    while done < clouds.len() || start.elapsed() < budget {
        black_box(frames.infer(&clouds[done % clouds.len()]));
        done += 1;
    }
    let ns_per_frame = start.elapsed().as_nanos() as f64 / done as f64;
    drop(frames);
    let delta = session.search_counters().since(&before);

    let per_frame = |v: u64| v as f64 / done as f64;
    BenchRecord {
        op: "infer_frames",
        backend,
        threads,
        dtype: None,
        ns_per_op: ns_per_frame,
        speedup_vs_1t: None,
        extra: None,
        batch: None,
        search: Some(SearchExtra {
            frames: done,
            distance_evals_per_frame: per_frame(delta.distance_evals),
            index_builds_per_frame: per_frame(delta.index_builds),
            index_build_ns_per_frame: per_frame(delta.index_build_ns),
            query_ns_per_frame: per_frame(delta.query_ns),
        }),
        serve: None,
        stream: None,
    }
}

/// Tile budgets the streamed-tile sweep measures (points per tile). At
/// paper scale (2048-point frames) these split a frame into 8 and 2
/// tiles respectively; smoke instances may fit in one tile, which still
/// exercises the tiled code path end to end.
pub const STREAM_TILE_BUDGETS: [usize; 2] = [256, 1024];

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The tiled streaming sweep: [`Session::frames`] on the representative
/// network through a tile-streaming session, every budget in
/// [`STREAM_TILE_BUDGETS`] crossed with the thread sweep, against a
/// sequential untiled baseline (`stream_untiled`) — the record pair the
/// tentpole's acceptance bar reads (tiled multi-worker ns/frame vs
/// untiled sequential). Per-frame latencies are captured individually so
/// the records carry the p99 frame latency, not just the mean.
fn stream_records(smoke: bool, budget: Duration) -> Vec<BenchRecord> {
    let sweep = thread_sweep(par::current_threads());
    let kind = NetworkKind::ALL[0];
    let make_net = || {
        let mut rng = mesorasi_pointcloud::seeded_rng(2020);
        if smoke {
            kind.build_small(10, &mut rng)
        } else {
            kind.build_paper(&mut rng)
        }
    };
    let n = make_net().input_points();
    let clouds: Vec<PointCloud> =
        (0..FRAME_POOL).map(|s| sample_shape(ShapeClass::Chair, n, 500 + s as u64)).collect();

    // (mean ns/frame, frames, p99 us) of a warm frame loop at `threads`.
    let measure = |session: &Session, threads: usize| -> (f64, usize, u64) {
        par::with_threads(threads, || {
            let mut frames = session.frames();
            for cloud in &clouds {
                black_box(frames.infer(cloud));
            }
            let mut lat_us: Vec<u64> = Vec::new();
            let start = Instant::now();
            let mut done = 0usize;
            while done < clouds.len() || start.elapsed() < budget {
                let t0 = Instant::now();
                black_box(frames.infer(&clouds[done % clouds.len()]));
                lat_us.push(t0.elapsed().as_micros() as u64);
                done += 1;
            }
            let ns = start.elapsed().as_nanos() as f64 / done as f64;
            lat_us.sort_unstable();
            (ns, done, percentile(&lat_us, 99.0))
        })
    };

    let mut records = Vec::new();
    let untiled: Session =
        SessionBuilder::from_boxed(make_net()).seed(7).workers(1).untiled().build();
    untiled.warm(&clouds[0]);
    let (untiled_ns, untiled_frames, untiled_p99) = measure(&untiled, 1);
    drop(untiled);
    records.push(BenchRecord {
        op: "stream_untiled",
        backend: kind.name(),
        threads: 1,
        dtype: None,
        ns_per_op: untiled_ns,
        speedup_vs_1t: None,
        extra: None,
        batch: None,
        search: None,
        serve: None,
        stream: Some(StreamExtra {
            tile_budget: 0,
            frames: untiled_frames,
            p99_frame_us: untiled_p99,
            speedup_vs_untiled: 1.0,
        }),
    });

    for &tile in &STREAM_TILE_BUDGETS {
        let session: Session =
            SessionBuilder::from_boxed(make_net()).seed(7).workers(1).tile_budget(tile).build();
        session.warm(&clouds[0]);
        for &threads in &sweep {
            let (ns, frames_done, p99) = measure(&session, threads);
            records.push(BenchRecord {
                op: "stream_tiled",
                backend: kind.name(),
                threads,
                dtype: None,
                ns_per_op: ns,
                speedup_vs_1t: None,
                extra: None,
                batch: None,
                search: None,
                serve: None,
                stream: Some(StreamExtra {
                    tile_budget: tile,
                    frames: frames_done,
                    p99_frame_us: p99,
                    speedup_vs_untiled: if ns > 0.0 { untiled_ns / ns } else { 1.0 },
                }),
            });
        }
    }
    records
}

/// `YYYY-MM-DD` (UTC) for a Unix timestamp — civil-from-days, Hinnant's
/// algorithm, so the harness needs no date dependency.
pub(crate) fn utc_date(unix_time: u64) -> String {
    let days = (unix_time / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_782_400), "2000-02-29"); // leap day
        assert_eq!(utc_date(1_753_660_800), "2025-07-28");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = BenchReport {
            date: "2026-07-28".into(),
            unix_time: 1,
            host_threads: 4,
            smoke: true,
            records: vec![
                BenchRecord {
                    op: "matmul",
                    backend: "tensor",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 1234.5,
                    speedup_vs_1t: Some(1.8),
                    extra: None,
                    batch: None,
                    search: None,
                    serve: None,
                    stream: None,
                },
                BenchRecord {
                    op: "matmul",
                    backend: "tensor",
                    threads: 1,
                    dtype: Some("f64"),
                    ns_per_op: 9876.5,
                    speedup_vs_1t: Some(1.0),
                    extra: None,
                    batch: None,
                    search: None,
                    serve: None,
                    stream: None,
                },
                BenchRecord {
                    op: "forward_planned",
                    backend: "PointNet++ (c)",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 100.0,
                    speedup_vs_1t: None,
                    extra: Some(EngineExtra {
                        speedup_vs_tape: 3.5,
                        arena_peak_bytes: 4096,
                        arena_slot_reuse: 6.25,
                    }),
                    batch: None,
                    search: None,
                    serve: None,
                    stream: None,
                },
                BenchRecord {
                    op: "infer_batch",
                    backend: "PointNet++ (c)",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 50.0,
                    speedup_vs_1t: None,
                    extra: None,
                    batch: Some(BatchExtra {
                        batch_size: 8,
                        samples_per_sec: 20_000_000.0,
                        speedup_vs_sequential: 2.0,
                    }),
                    search: None,
                    serve: None,
                    stream: None,
                },
                BenchRecord {
                    op: "infer_frames",
                    backend: "PointNet++ (c)",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 75.0,
                    speedup_vs_1t: None,
                    extra: None,
                    batch: None,
                    search: Some(SearchExtra {
                        frames: 24,
                        distance_evals_per_frame: 1_843_200.0,
                        index_builds_per_frame: 4.0,
                        index_build_ns_per_frame: 81_234.0,
                        query_ns_per_frame: 412_345.5,
                    }),
                    serve: None,
                    stream: None,
                },
                BenchRecord {
                    op: "serve_mixed",
                    backend: "PointNet++ (c)",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 812_345.0,
                    speedup_vs_1t: None,
                    extra: None,
                    batch: None,
                    search: None,
                    serve: Some(ServeExtra {
                        streams: 4,
                        requests: 256,
                        throughput_rps: 1234.5,
                        p50_us: 700,
                        p99_us: 1400,
                        p999_us: 1900,
                        shed: 0,
                        errored: 0,
                    }),
                    stream: None,
                },
                BenchRecord {
                    op: "stream_tiled",
                    backend: "PointNet++ (c)",
                    threads: 2,
                    dtype: None,
                    ns_per_op: 512_345.0,
                    speedup_vs_1t: None,
                    extra: None,
                    batch: None,
                    search: None,
                    serve: None,
                    stream: Some(StreamExtra {
                        tile_budget: 256,
                        frames: 120,
                        p99_frame_us: 780,
                        speedup_vs_untiled: 1.62,
                    }),
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mesorasi-bench/8\""));
        assert!(json.contains("\"op\": \"matmul\""));
        assert!(json.contains("\"dtype\": \"f64\""));
        // f32 records carry no dtype key at all (absence = native tier).
        assert_eq!(json.matches("\"dtype\"").count(), 1);
        assert!(json.contains("\"speedup_vs_1t\": 1.800"));
        assert!(json.contains("\"speedup_vs_tape\": 3.500"));
        assert!(json.contains("\"arena_peak_bytes\": 4096"));
        assert!(json.contains("\"arena_slot_reuse\": 6.25"));
        assert!(json.contains("\"batch\": 8"));
        assert!(json.contains("\"samples_per_sec\": 20000000.0"));
        assert!(json.contains("\"speedup_vs_sequential\": 2.000"));
        assert!(json.contains("\"frames\": 24"));
        assert!(json.contains("\"distance_evals_per_frame\": 1843200.0"));
        assert!(json.contains("\"index_builds_per_frame\": 4.00"));
        assert!(json.contains("\"query_ns_per_frame\": 412345.5"));
        assert!(json.contains("\"streams\": 4"));
        assert!(json.contains("\"throughput_rps\": 1234.5"));
        assert!(json.contains("\"p50_us\": 700"));
        assert!(json.contains("\"p999_us\": 1900"));
        assert!(json.contains("\"shed\": 0"));
        assert!(json.contains("\"tile_budget\": 256"));
        assert!(json.contains("\"p99_frame_us\": 780"));
        assert!(json.contains("\"speedup_vs_untiled\": 1.620"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(report.filename(), "BENCH_2026-07-28.json");
    }

    #[test]
    fn serve_gate_flags_sheds_and_p99_cliffs() {
        let serve_rec = |op: &'static str, p99_us: u64, shed: u64| BenchRecord {
            op,
            backend: "PointNet++ (c)",
            threads: 2,
            dtype: None,
            ns_per_op: 1000.0,
            speedup_vs_1t: None,
            extra: None,
            batch: None,
            search: None,
            serve: Some(ServeExtra {
                streams: 4,
                requests: 64,
                throughput_rps: 100.0,
                p50_us: p99_us / 2,
                p99_us,
                p999_us: p99_us * 2,
                shed,
                errored: 0,
            }),
            stream: None,
        };
        let report = |fresh_p99: u64, mixed_p99: u64, shed: u64| BenchReport {
            date: "2026-08-08".into(),
            unix_time: 1,
            host_threads: 4,
            smoke: true,
            records: vec![
                serve_rec("serve_fresh", fresh_p99, 0),
                serve_rec("serve_mixed", mixed_p99, shed),
            ],
        };
        assert!(report(1000, 1200, 0).serve_regressions().is_empty());
        // Mixed faster than fresh (the cache helping) is the expected case.
        assert!(report(1000, 400, 0).serve_regressions().is_empty());
        let cliff = report(1000, 1501, 0).serve_regressions();
        assert_eq!(cliff.len(), 1);
        assert!(cliff[0].contains("latency cliff"), "{}", cliff[0]);
        let shed = report(1000, 1000, 3).serve_regressions();
        assert_eq!(shed.len(), 1);
        assert!(shed[0].contains("shed"), "{}", shed[0]);
    }

    fn rec(threads: usize, speedup: f64) -> BenchRecord {
        BenchRecord {
            op: "knn",
            backend: "bruteforce",
            threads,
            dtype: None,
            ns_per_op: 100.0,
            speedup_vs_1t: Some(speedup),
            extra: None,
            batch: None,
            search: None,
            serve: None,
            stream: None,
        }
    }

    #[test]
    fn regressions_flags_slow_parallel_records_only() {
        let report = BenchReport {
            date: String::new(),
            unix_time: 0,
            host_threads: 4,
            smoke: true,
            records: vec![rec(1, 1.0), rec(2, 0.5), rec(4, 0.7), rec(8, 2.0)],
        };
        let slow: Vec<usize> = report.regressions().iter().map(|r| r.threads).collect();
        assert_eq!(slow, vec![2]); // 0.5 < 1/1.5; 0.7 and 2.0 pass
    }

    #[test]
    fn engine_regressions_flags_planned_slower_than_tape() {
        let fwd = |op: &'static str, vs_tape: Option<f64>| BenchRecord {
            op,
            backend: "DGCNN (c)",
            threads: 1,
            dtype: None,
            ns_per_op: 100.0,
            speedup_vs_1t: None,
            extra: vs_tape.map(|s| EngineExtra {
                speedup_vs_tape: s,
                arena_peak_bytes: 1,
                arena_slot_reuse: 1.0,
            }),
            batch: None,
            search: None,
            serve: None,
            stream: None,
        };
        let report = BenchReport {
            date: String::new(),
            unix_time: 0,
            host_threads: 1,
            smoke: true,
            records: vec![
                fwd("forward_tape", None),
                fwd("forward_planned", Some(0.8)),
                fwd("forward_planned", Some(1.7)),
            ],
        };
        assert_eq!(report.engine_regressions().len(), 1);
    }

    #[test]
    fn batch_regressions_flags_slow_batches_with_tolerance() {
        let batched = |vs_seq: f64| BenchRecord {
            op: "infer_batch",
            backend: "LDGCNN",
            threads: 2,
            dtype: None,
            ns_per_op: 100.0,
            speedup_vs_1t: None,
            extra: None,
            batch: Some(BatchExtra {
                batch_size: 8,
                samples_per_sec: 1.0,
                speedup_vs_sequential: vs_seq,
            }),
            search: None,
            serve: None,
            stream: None,
        };
        let report = BenchReport {
            date: String::new(),
            unix_time: 0,
            host_threads: 2,
            smoke: true,
            records: vec![batched(0.5), batched(0.8), batched(2.0)],
        };
        // 0.5 < 1/1.5 fails; 0.8 and 2.0 sit inside the tolerance.
        assert_eq!(report.batch_regressions().len(), 1);
    }

    #[test]
    fn thread_sweep_always_includes_two_threads() {
        // Satellite fix: on a 1-core host the pool override still forces
        // 2 workers, so the artifact keeps speedup-trackable records.
        assert_eq!(thread_sweep(1), vec![1, 2]);
        assert_eq!(thread_sweep(2), vec![1, 2]);
        assert_eq!(thread_sweep(8), vec![1, 2, 8]);
    }

    #[test]
    fn smoke_run_produces_full_sweep() {
        // A micro smoke run: every kernel must yield one record per swept
        // thread count, 1-thread records must have speedup 1.0, and every
        // network must contribute a tape/planned record pair.
        let report = par::with_threads(2, || run(true));
        assert!(report.smoke);
        let sweep = thread_sweep(2);
        let kernels: Vec<&BenchRecord> = report
            .records
            .iter()
            .filter(|r| {
                !r.op.starts_with("forward_")
                    && !r.op.starts_with("infer_")
                    && !r.op.starts_with("stream_")
            })
            .collect();
        assert_eq!(kernels.len() % sweep.len(), 0);
        for r in kernels.iter().filter(|r| r.threads == 1) {
            let s = r.speedup_vs_1t.expect("kernel records carry a baseline");
            assert!((s - 1.0).abs() < 1e-9);
        }
        let builds = kernels.iter().filter(|r| r.op == "index_build").count();
        assert_eq!(
            builds,
            (2 + crate::largecloud::build_configs(true)) * sweep.len(),
            "kdtree + grid + large-cloud rebuild records per thread count"
        );
        let queries = kernels.iter().filter(|r| r.op == "query").count();
        assert_eq!(
            queries,
            crate::largecloud::query_configs(true) * sweep.len(),
            "large-cloud query records per thread count"
        );
        let tape = report.records.iter().filter(|r| r.op == "forward_tape").count();
        let planned: Vec<&BenchRecord> =
            report.records.iter().filter(|r| r.op == "forward_planned").collect();
        assert_eq!(tape, NetworkKind::ALL.len());
        assert_eq!(planned.len(), NetworkKind::ALL.len());
        for r in &planned {
            let extra = r.extra.expect("planned records carry arena stats");
            assert!(extra.arena_peak_bytes > 0);
            assert!(extra.arena_slot_reuse >= 1.0);
        }
        let batched: Vec<&BenchRecord> =
            report.records.iter().filter(|r| r.op == "infer_batch").collect();
        assert_eq!(batched.len(), NetworkKind::ALL.len() * BATCH_SIZES.len());
        for r in &batched {
            let b = r.batch.expect("infer_batch records carry batch extras");
            assert!(BATCH_SIZES.contains(&b.batch_size));
            assert!(b.samples_per_sec > 0.0);
            assert!(b.speedup_vs_sequential > 0.0);
        }
        let framed: Vec<&BenchRecord> =
            report.records.iter().filter(|r| r.op == "infer_frames").collect();
        assert_eq!(framed.len(), NetworkKind::ALL.len());
        for r in &framed {
            let f = r.search.expect("infer_frames records carry search counters");
            assert!(f.frames >= FRAME_POOL);
            assert!(f.distance_evals_per_frame > 0.0, "streamed frames search every frame");
            assert!(f.query_ns_per_frame > 0.0);
        }
        let untiled: Vec<&BenchRecord> =
            report.records.iter().filter(|r| r.op == "stream_untiled").collect();
        assert_eq!(untiled.len(), 1);
        assert_eq!(untiled[0].threads, 1);
        let u = untiled[0].stream.expect("stream records carry stream extras");
        assert_eq!(u.tile_budget, 0);
        assert!(u.frames >= FRAME_POOL);
        let tiled: Vec<&BenchRecord> =
            report.records.iter().filter(|r| r.op == "stream_tiled").collect();
        assert_eq!(tiled.len(), STREAM_TILE_BUDGETS.len() * sweep.len());
        for r in &tiled {
            assert!(sweep.contains(&r.threads), "tiled rows cover the forced 1/2-thread sweep");
            let t = r.stream.expect("stream records carry stream extras");
            assert!(STREAM_TILE_BUDGETS.contains(&t.tile_budget));
            assert!(t.frames >= FRAME_POOL);
            assert!(t.speedup_vs_untiled > 0.0);
        }
        assert!(report.records.iter().all(|r| r.ns_per_op > 0.0));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }
}
