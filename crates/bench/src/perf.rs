//! Machine-readable performance harness (`repro bench`).
//!
//! Measures the hot kernels — the matmul family, the grouped reductions,
//! and every neighbor-search backend — across a thread sweep, and emits the
//! results as `BENCH_<date>.json` so the ROADMAP's performance trajectory
//! accumulates comparable data points across PRs.
//!
//! JSON schema (`mesorasi-bench/1`):
//!
//! ```json
//! {
//!   "schema": "mesorasi-bench/1",
//!   "date": "2026-07-28",
//!   "unix_time": 1785000000,
//!   "host_threads": 8,
//!   "smoke": false,
//!   "records": [
//!     { "op": "matmul", "backend": "tensor", "threads": 2,
//!       "ns_per_op": 812345.6, "speedup_vs_1t": 1.94 }
//!   ]
//! }
//! ```
//!
//! `speedup_vs_1t` is the same op/backend's 1-thread time divided by this
//! record's time (1.0 for the 1-thread record itself). The smoke gate used
//! by CI fails when any parallel record is more than 1.5× slower than its
//! sequential baseline — the determinism contract says parallelism may
//! never change results, and this gate says it may not wreck performance
//! either.

use mesorasi_knn::feature::FeatureView;
use mesorasi_knn::{ball, bruteforce, feature, grid::UniformGrid, kdtree::KdTree};
use mesorasi_par as par;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{sampling, PointCloud};
use mesorasi_tensor::{group, ops, Matrix};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Kernel name (`matmul`, `knn`, `ball`, ...).
    pub op: &'static str,
    /// Implementation / search structure the kernel ran on.
    pub backend: &'static str,
    /// Effective thread count the measurement ran at.
    pub threads: usize,
    /// Mean wall time per operation, in nanoseconds.
    pub ns_per_op: f64,
    /// `ns(1 thread) / ns(this)` for the same op/backend.
    pub speedup_vs_1t: f64,
}

/// A full harness run: records plus the metadata the JSON header carries.
#[derive(Debug)]
pub struct BenchReport {
    /// ISO `YYYY-MM-DD` of the run (UTC).
    pub date: String,
    /// Seconds since the Unix epoch at the start of the run.
    pub unix_time: u64,
    /// Hardware/env thread budget ([`par::current_threads`] outside any
    /// override) at run time.
    pub host_threads: usize,
    /// Whether the reduced smoke workloads were used.
    pub smoke: bool,
    /// All measurements, in (op, backend, threads) order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// `BENCH_<date>.json`, the canonical artifact name.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes the report (no external JSON dependency in this
    /// environment, so the writer is hand-rolled; the schema is flat).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mesorasi-bench/1\",\n");
        s.push_str(&format!("  \"date\": \"{}\",\n", self.date));
        s.push_str(&format!("  \"unix_time\": {},\n", self.unix_time));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"op\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
                 \"ns_per_op\": {:.1}, \"speedup_vs_1t\": {:.3} }}{}\n",
                r.op,
                r.backend,
                r.threads,
                r.ns_per_op,
                r.speedup_vs_1t,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Plain-text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# bench {} (host threads: {}{})\n",
            self.date,
            self.host_threads,
            if self.smoke { ", smoke" } else { "" }
        ));
        s.push_str(&format!(
            "{:<18} {:<11} {:>7} {:>14} {:>12}\n",
            "op", "backend", "threads", "ns/op", "speedup"
        ));
        for r in &self.records {
            s.push_str(&format!(
                "{:<18} {:<11} {:>7} {:>14.0} {:>11.2}x\n",
                r.op, r.backend, r.threads, r.ns_per_op, r.speedup_vs_1t
            ));
        }
        s
    }

    /// The CI smoke gate: parallel configurations more than 1.5× slower
    /// than their own sequential baseline. Empty means the gate passes.
    pub fn regressions(&self) -> Vec<&BenchRecord> {
        self.records.iter().filter(|r| r.threads > 1 && r.speedup_vs_1t < 1.0 / 1.5).collect()
    }
}

/// Time budget per measured configuration.
fn budget(smoke: bool) -> Duration {
    if smoke {
        Duration::from_millis(25)
    } else {
        Duration::from_millis(150)
    }
}

/// Mean ns per call of `f` under `budget`, after one warm-up call.
fn time_ns<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The thread counts swept: 1 (sequential baseline), 2, and the host
/// budget — but never more threads than the host actually has, because
/// oversubscribing a smaller machine measures scheduler contention, not
/// the backend (`MESORASI_THREADS` raises the budget when that is really
/// wanted).
fn thread_sweep(host: usize) -> Vec<usize> {
    let mut sweep = vec![1, 2, host];
    sweep.retain(|&t| t <= host);
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// A deterministic test matrix (no RNG needed: a fixed mixing formula).
fn bench_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) % 29) as f32 * 0.1 - 1.4)
}

struct Workloads {
    mm_a: Matrix,
    mm_b: Matrix,
    red_src: Matrix,
    red_groups: Vec<usize>,
    red_k: usize,
    cloud: PointCloud,
    queries: Vec<usize>,
    knn_k: usize,
    radius: f32,
    feat_dim: usize,
}

impl Workloads {
    fn new(smoke: bool) -> Self {
        let (m, k, n) = if smoke { (96, 64, 64) } else { (256, 128, 128) };
        let (points, n_queries, knn_k) = if smoke { (512, 128, 8) } else { (2048, 512, 16) };
        let (n_groups, red_k, red_cols) = if smoke { (128, 16, 64) } else { (512, 32, 128) };
        let red_src = bench_matrix(points, red_cols);
        let red_groups: Vec<usize> =
            (0..n_groups * red_k).map(|i| (i * 7 + i / red_k) % points).collect();
        let cloud = sample_shape(ShapeClass::Chair, points, 2020);
        let queries = sampling::random_indices(&cloud, n_queries, 7);
        Workloads {
            mm_a: bench_matrix(m, k),
            mm_b: bench_matrix(k, n),
            red_src,
            red_groups,
            red_k,
            cloud,
            queries,
            knn_k,
            radius: 0.25,
            feat_dim: if smoke { 16 } else { 32 },
        }
    }
}

/// Runs the full harness: every kernel at every swept thread count.
pub fn run(smoke: bool) -> BenchReport {
    let host_threads = par::current_threads();
    let sweep = thread_sweep(host_threads);
    let budget = budget(smoke);
    let w = Workloads::new(smoke);

    let grid = UniformGrid::build(&w.cloud, w.radius);
    let tree = KdTree::build(&w.cloud);
    let feat = bench_matrix(w.cloud.len(), w.feat_dim);
    let mm_at = w.mm_a.transposed();

    // (op, backend, runner) — each runner is one timed call.
    type Kernel<'a> = (&'static str, &'static str, Box<dyn Fn() + 'a>);
    let kernels: Vec<Kernel<'_>> = vec![
        ("matmul", "tensor", Box::new(|| drop(black_box(ops::matmul(&w.mm_a, &w.mm_b))))),
        ("matmul_at_b", "tensor", Box::new(|| drop(black_box(ops::matmul_at_b(&mm_at, &w.mm_b))))),
        (
            "group_max_reduce",
            "tensor",
            Box::new(|| {
                let gathered = group::gather_rows(&w.red_src, &w.red_groups);
                drop(black_box(group::group_max_reduce(&gathered, w.red_k)))
            }),
        ),
        (
            "gather_max_reduce",
            "tensor",
            Box::new(|| {
                drop(black_box(group::gather_max_reduce(&w.red_src, &w.red_groups, w.red_k)))
            }),
        ),
        (
            "knn",
            "bruteforce",
            Box::new(|| drop(black_box(bruteforce::knn_indices(&w.cloud, &w.queries, w.knn_k)))),
        ),
        (
            "knn",
            "kdtree",
            Box::new(|| drop(black_box(tree.knn_indices(&w.cloud, &w.queries, w.knn_k)))),
        ),
        (
            "ball",
            "kdtree",
            Box::new(|| {
                drop(black_box(ball::ball_query(&w.cloud, &tree, &w.queries, w.radius, w.knn_k)))
            }),
        ),
        (
            "ball",
            "grid",
            Box::new(|| drop(black_box(grid.ball_query(&w.cloud, &w.queries, w.radius, w.knn_k)))),
        ),
        (
            "knn",
            "feature",
            Box::new(|| {
                let view = FeatureView::new(feat.as_slice(), w.feat_dim)
                    .expect("bench feature matrix is rectangular");
                drop(black_box(feature::knn_rows(view, &w.queries, w.knn_k)))
            }),
        ),
    ];

    let mut records = Vec::new();
    for (op, backend, kernel) in &kernels {
        let mut base_ns = 0.0f64;
        for &threads in &sweep {
            let ns = par::with_threads(threads, || time_ns(budget, kernel));
            if threads == 1 {
                base_ns = ns;
            }
            let speedup = if ns > 0.0 && base_ns > 0.0 { base_ns / ns } else { 1.0 };
            records.push(BenchRecord {
                op,
                backend,
                threads,
                ns_per_op: ns,
                speedup_vs_1t: speedup,
            });
        }
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    BenchReport { date: utc_date(unix_time), unix_time, host_threads, smoke, records }
}

/// `YYYY-MM-DD` (UTC) for a Unix timestamp — civil-from-days, Hinnant's
/// algorithm, so the harness needs no date dependency.
fn utc_date(unix_time: u64) -> String {
    let days = (unix_time / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_782_400), "2000-02-29"); // leap day
        assert_eq!(utc_date(1_753_660_800), "2025-07-28");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = BenchReport {
            date: "2026-07-28".into(),
            unix_time: 1,
            host_threads: 4,
            smoke: true,
            records: vec![BenchRecord {
                op: "matmul",
                backend: "tensor",
                threads: 2,
                ns_per_op: 1234.5,
                speedup_vs_1t: 1.8,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mesorasi-bench/1\""));
        assert!(json.contains("\"op\": \"matmul\""));
        assert!(json.contains("\"speedup_vs_1t\": 1.800"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(report.filename(), "BENCH_2026-07-28.json");
    }

    #[test]
    fn regressions_flags_slow_parallel_records_only() {
        let rec = |threads, speedup| BenchRecord {
            op: "knn",
            backend: "bruteforce",
            threads,
            ns_per_op: 100.0,
            speedup_vs_1t: speedup,
        };
        let report = BenchReport {
            date: String::new(),
            unix_time: 0,
            host_threads: 4,
            smoke: true,
            records: vec![rec(1, 1.0), rec(2, 0.5), rec(4, 0.7), rec(8, 2.0)],
        };
        let slow: Vec<usize> = report.regressions().iter().map(|r| r.threads).collect();
        assert_eq!(slow, vec![2]); // 0.5 < 1/1.5; 0.7 and 2.0 pass
    }

    #[test]
    fn smoke_run_produces_full_sweep() {
        // A micro smoke run: every kernel must yield one record per swept
        // thread count, and 1-thread records must have speedup 1.0.
        let report = par::with_threads(2, || run(true));
        assert!(report.smoke);
        let sweep = thread_sweep(2);
        assert_eq!(report.records.len() % sweep.len(), 0);
        for r in report.records.iter().filter(|r| r.threads == 1) {
            assert!((r.speedup_vs_1t - 1.0).abs() < 1e-9);
        }
        assert!(report.records.iter().all(|r| r.ns_per_op > 0.0));
    }
}
