//! Served-inference load generator (`repro serve-bench`).
//!
//! Stands up an in-process `mesorasi-serve` server over a warmed session
//! pool and drives it with [`STREAMS`] concurrent sensor-replay clients at
//! full speed, measuring end-to-end (send → response) latency per request.
//! Two traffic phases per network:
//!
//! - **fresh** — every request a never-before-seen cloud: all engine
//!   NIT-cache misses, the worst honest case.
//! - **mixed** — each stream cycles a small hot set with a fresh cloud
//!   mixed in every `FRESH_EVERY`th request: the shape of deployed
//!   traffic, where the engine cache must pay for itself.
//!
//! The records land in the shared `BENCH` schema as `serve_fresh` /
//! `serve_mixed` ops (`mesorasi-bench/8`) carrying p50/p99/p999 latency,
//! throughput, and shed/error counts; the smoke gate
//! ([`BenchReport::serve_regressions`]) requires zero sheds (the queue is
//! sized for the offered load) and a mixed-traffic p99 within 1.5× of the
//! fresh-traffic p99 — under the old wholesale cache clear, mixed traffic
//! periodically hit an emptied cache and failed exactly that bound.

use crate::perf::{utc_date, BenchRecord, BenchReport, ServeExtra};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_networks::session::SessionBuilder;
use mesorasi_par as par;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::PointCloud;
use mesorasi_serve::{quantile_us, replay, ReplayReport, SchedulerConfig, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Concurrent client connections per phase (the acceptance bar is ≥ 4).
pub const STREAMS: usize = 4;

/// In the mixed phase, every `FRESH_EVERY`th request is a fresh cloud; the
/// rest cycle the stream's hot set.
const FRESH_EVERY: usize = 8;

/// Hot-set size per stream in the mixed phase. `STREAMS × HOT_SET` stays
/// far under the engines' cache capacity, so with true LRU the hot set
/// must remain resident through the interleaved fresh traffic.
const HOT_SET: usize = 4;

/// One phase's merged observation across all streams.
struct Phase {
    latencies_us: Vec<u64>,
    requests: u64,
    shed: u64,
    errored: u64,
    window: Duration,
}

impl Phase {
    fn extra(&self) -> ServeExtra {
        let done = (self.latencies_us.len() as u64).saturating_sub(self.shed + self.errored);
        ServeExtra {
            streams: STREAMS,
            requests: self.requests,
            throughput_rps: done as f64 / self.window.as_secs_f64().max(1e-9),
            p50_us: quantile_us(&self.latencies_us, 0.50).unwrap_or(0),
            p99_us: quantile_us(&self.latencies_us, 0.99).unwrap_or(0),
            p999_us: quantile_us(&self.latencies_us, 0.999).unwrap_or(0),
            shed: self.shed,
            errored: self.errored,
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let total_us: u64 = self.latencies_us.iter().sum();
        total_us as f64 * 1000.0 / self.latencies_us.len() as f64
    }
}

/// Runs one phase: [`STREAMS`] threads, each replaying its own frame
/// sequence at full speed over its own connection.
fn run_phase(
    addr: SocketAddr,
    frames_per_stream: usize,
    clouds: impl Fn(usize) -> Vec<PointCloud> + Sync,
) -> Phase {
    let reports: Vec<ReplayReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STREAMS)
            .map(|stream| {
                let clouds = &clouds;
                scope.spawn(move || {
                    let frames = clouds(stream);
                    assert_eq!(frames.len(), frames_per_stream);
                    replay(addr, &frames, 0.0).expect("replay stream")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stream thread")).collect()
    });
    let mut phase = Phase {
        latencies_us: Vec::new(),
        requests: 0,
        shed: 0,
        errored: 0,
        window: Duration::ZERO,
    };
    for r in reports {
        phase.latencies_us.extend_from_slice(&r.latencies_us);
        phase.requests += r.sent;
        phase.shed += r.shed;
        phase.errored += r.errored;
        phase.window = phase.window.max(r.elapsed);
    }
    phase
}

/// Runs the served-latency harness and returns a report holding only the
/// `serve_*` records (same artifact schema as `repro bench`).
pub fn run(smoke: bool) -> BenchReport {
    let host_threads = par::current_threads();
    let frames_per_stream = if smoke { 16 } else { 64 };
    let kind = NetworkKind::PointNetPPClassification;

    // A small-scale session regardless of smoke: serve-bench measures the
    // scheduler and the cache behavior, not network FLOPs, and the latency
    // *ratios* the gate checks are scale-free.
    let session = Arc::new(
        SessionBuilder::from_kind(kind).classes(10).workers(host_threads.clamp(2, 4)).build(),
    );
    let n = session.network().input_points();
    // Compile every worker's plan outside the measured window — cold plan
    // compilation is a once-per-deploy cost, not request latency.
    session.warm(&sample_shape(ShapeClass::Chair, n, 1));

    let server = Server::spawn(
        Arc::clone(&session),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Queue sized for the whole offered load: any shed under this
            // config is a scheduler bug, which is exactly what the gate
            // should catch.
            scheduler: SchedulerConfig {
                queue_depth: STREAMS * frames_per_stream + 1,
                max_batch: 8,
                dispatchers: 2,
            },
        },
    )
    .expect("bind serve-bench server");
    let addr = server.local_addr();

    let fresh = run_phase(addr, frames_per_stream, |stream| {
        (0..frames_per_stream)
            .map(|i| {
                sample_shape(ShapeClass::Car, n, 100_000 + (stream * frames_per_stream + i) as u64)
            })
            .collect()
    });
    let mixed = run_phase(addr, frames_per_stream, |stream| {
        (0..frames_per_stream)
            .map(|i| {
                let seed = if (i + 1) % FRESH_EVERY == 0 {
                    // Fresh interleave: unique across streams and phases.
                    200_000 + (stream * frames_per_stream + i) as u64
                } else {
                    // Hot set: per-stream, revisited throughout the phase.
                    (stream * HOT_SET + i % HOT_SET) as u64
                };
                sample_shape(ShapeClass::Chair, n, seed)
            })
            .collect()
    });
    server.shutdown();

    let record = |op: &'static str, phase: &Phase| BenchRecord {
        op,
        backend: kind.name(),
        threads: host_threads,
        dtype: None,
        ns_per_op: phase.mean_ns(),
        speedup_vs_1t: None,
        extra: None,
        batch: None,
        search: None,
        serve: Some(phase.extra()),
        stream: None,
    };
    let records = vec![record("serve_fresh", &fresh), record("serve_mixed", &mixed)];

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    BenchReport { date: utc_date(unix_time), unix_time, host_threads, smoke, records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_gated_serve_records() {
        let report = run(true);
        assert_eq!(report.records.len(), 2);
        let ops: Vec<&str> = report.records.iter().map(|r| r.op).collect();
        assert_eq!(ops, ["serve_fresh", "serve_mixed"]);
        for r in &report.records {
            let v = r.serve.expect("serve records carry serve extras");
            assert_eq!(v.streams, STREAMS);
            assert_eq!(v.requests, (STREAMS * 16) as u64);
            assert!(v.p50_us > 0 && v.p50_us <= v.p99_us && v.p99_us <= v.p999_us);
            assert!(v.throughput_rps > 0.0);
        }
        let violations = report.serve_regressions();
        assert!(violations.is_empty(), "serve gate violated: {violations:?}");
        // The artifact serializes under the /7 schema.
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mesorasi-bench/8\""));
        assert!(json.contains("\"op\": \"serve_fresh\""));
        assert!(json.contains("\"p999_us\""));
    }
}
