//! Out-of-core search records for the bench artifact (schema
//! `mesorasi-bench/8`): index build and query timings at 2^17..2^20-point
//! scales, where the octree backend earns its keep, measured for the
//! octree (resident and paged, exact and LOD-sampled) against the kd-tree
//! and grid backends on the same cloud.
//!
//! Record identity for `bench-diff` is `(op, backend, threads, dtype)`,
//! so the cloud size and pager/LOD mode are encoded in the backend label:
//! `octree-128k`, `octree-1m-paged`, `octree-1m-paged-lod4`, `kdtree-1m`,
//! `grid-128k`, ... The `-paged` configurations run behind a file-backed
//! node store with a byte budget of ⅛ of the cloud's storage, so every
//! query sweep pays real eviction churn; `-lod4` configurations answer
//! from the depth-4 representative sample ([`MortonOctree::set_lod`]).
//! The smoke run uses one 2^15-point cloud; the full run measures 2^17
//! and 2^20 points (the million-point acceptance scale).

use crate::perf::{time_ns, BenchRecord};
use mesorasi_knn::grid::UniformGrid;
use mesorasi_knn::kdtree::KdTree;
use mesorasi_knn::pager::POINT_BYTES;
use mesorasi_knn::{MortonOctree, NeighborIndexTable, SearchIndex};
use mesorasi_par as par;
use mesorasi_pointcloud::{Point3, PointCloud};
use std::cell::RefCell;
use std::time::Duration;

/// Deterministic synthetic cloud from a bare LCG: uniform in [-1, 1]^3.
/// The shape sampler's rejection loops are too slow at million-point
/// scale, and uniform occupancy is the octree's worst case for LOD
/// pruning — a conservative workload.
pub fn synthetic_cloud(n: usize, seed: u64) -> PointCloud {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut unit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
    };
    let pts: Vec<Point3> = (0..n).map(|_| Point3::new(unit(), unit(), unit())).collect();
    PointCloud::from_points(pts)
}

/// One measured cloud scale, with the static backend labels that encode
/// size and mode into each record's `bench-diff` identity.
struct SizeSpec {
    n: usize,
    octree: &'static str,
    octree_lod: &'static str,
    octree_paged: &'static str,
    octree_paged_lod: &'static str,
    kdtree: &'static str,
    grid: &'static str,
}

const SMOKE_SIZES: [SizeSpec; 1] = [SizeSpec {
    n: 1 << 15,
    octree: "octree-32k",
    octree_lod: "octree-32k-lod4",
    octree_paged: "octree-32k-paged",
    octree_paged_lod: "octree-32k-paged-lod4",
    kdtree: "kdtree-32k",
    grid: "grid-32k",
}];

const FULL_SIZES: [SizeSpec; 2] = [
    SizeSpec {
        n: 1 << 17,
        octree: "octree-128k",
        octree_lod: "octree-128k-lod4",
        octree_paged: "octree-128k-paged",
        octree_paged_lod: "octree-128k-paged-lod4",
        kdtree: "kdtree-128k",
        grid: "grid-128k",
    },
    SizeSpec {
        n: 1 << 20,
        octree: "octree-1m",
        octree_lod: "octree-1m-lod4",
        octree_paged: "octree-1m-paged",
        octree_paged_lod: "octree-1m-paged-lod4",
        kdtree: "kdtree-1m",
        grid: "grid-1m",
    },
];

/// LOD depth the `-lod4` configurations query at.
const LOD_LEVEL: usize = 4;

/// Queries per sweep, neighbors per query, and the ball radius (sized so
/// a [-1, 1]^3 uniform cloud holds on the order of k points per ball at
/// the 2^17 scale).
const QUERIES: usize = 256;
const K: usize = 16;
const RADIUS: f32 = 0.05;

fn sizes(smoke: bool) -> &'static [SizeSpec] {
    if smoke {
        &SMOKE_SIZES
    } else {
        &FULL_SIZES
    }
}

/// `index_build` configurations per run (for the smoke-test bookkeeping):
/// octree, octree-paged, kdtree, grid per size.
pub fn build_configs(smoke: bool) -> usize {
    sizes(smoke).len() * 4
}

/// `query` configurations per run: the four octree modes plus kdtree and
/// grid per size.
pub fn query_configs(smoke: bool) -> usize {
    sizes(smoke).len() * 6
}

/// Runs the large-cloud sweep: every configuration at every swept thread
/// count, with the 1-thread run as its own speedup baseline (the paged
/// configurations answer queries sequentially by design — the pager is a
/// memory-bound store, not a parallel one — so their rows show it).
pub fn records(smoke: bool, budget: Duration, sweep: &[usize]) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for spec in sizes(smoke) {
        let cloud = synthetic_cloud(spec.n, 2020);
        let queries: Vec<usize> = (0..spec.n).step_by(spec.n / QUERIES).collect();
        let pager_budget = spec.n * POINT_BYTES / 8;

        // Prebuilt indices for the query records.
        let octree = RefCell::new(<MortonOctree as SearchIndex>::build(&cloud));
        let paged = RefCell::new({
            let mut t = MortonOctree::paged(pager_budget);
            SearchIndex::build_into(&mut t, &cloud);
            t
        });
        let kdtree = RefCell::new(KdTree::build(&cloud));
        let grid = RefCell::new(UniformGrid::build(&cloud, RADIUS));
        let out = RefCell::new(NeighborIndexTable::default());

        // Warm in-place rebuild targets for the index_build records.
        let octree_rb = RefCell::new(<MortonOctree as SearchIndex>::build(&cloud));
        let paged_rb = RefCell::new({
            let mut t = MortonOctree::paged(pager_budget);
            SearchIndex::build_into(&mut t, &cloud);
            t
        });
        let kdtree_rb = RefCell::new(KdTree::build(&cloud));
        let grid_rb = RefCell::new(UniformGrid::build(&cloud, RADIUS));

        let octree_query = |tree: &RefCell<MortonOctree>, lod: usize| {
            let mut t = tree.borrow_mut();
            t.set_lod(lod);
            t.knn_into(&cloud, &queries, K, &mut out.borrow_mut());
        };

        type Kernel<'a> = (&'static str, &'static str, Box<dyn Fn() + 'a>);
        let kernels: Vec<Kernel<'_>> = vec![
            (
                "index_build",
                spec.octree,
                Box::new(|| SearchIndex::build_into(&mut *octree_rb.borrow_mut(), &cloud)),
            ),
            (
                "index_build",
                spec.octree_paged,
                Box::new(|| SearchIndex::build_into(&mut *paged_rb.borrow_mut(), &cloud)),
            ),
            (
                "index_build",
                spec.kdtree,
                Box::new(|| SearchIndex::build_into(&mut *kdtree_rb.borrow_mut(), &cloud)),
            ),
            (
                "index_build",
                spec.grid,
                Box::new(|| SearchIndex::build_into(&mut *grid_rb.borrow_mut(), &cloud)),
            ),
            ("query", spec.octree, Box::new(|| octree_query(&octree, 0))),
            ("query", spec.octree_lod, Box::new(|| octree_query(&octree, LOD_LEVEL))),
            ("query", spec.octree_paged, Box::new(|| octree_query(&paged, 0))),
            ("query", spec.octree_paged_lod, Box::new(|| octree_query(&paged, LOD_LEVEL))),
            (
                "query",
                spec.kdtree,
                Box::new(|| {
                    kdtree.borrow_mut().knn_into(&cloud, &queries, K, &mut out.borrow_mut());
                }),
            ),
            (
                "query",
                spec.grid,
                Box::new(|| {
                    grid.borrow_mut().ball_into(&cloud, &queries, RADIUS, K, &mut out.borrow_mut());
                }),
            ),
        ];

        for (op, backend, kernel) in &kernels {
            let mut base_ns = 0.0f64;
            for &threads in sweep {
                let ns = par::with_threads(threads, || time_ns(budget, kernel));
                if threads == 1 {
                    base_ns = ns;
                }
                let speedup = if ns > 0.0 && base_ns > 0.0 { base_ns / ns } else { 1.0 };
                records.push(BenchRecord {
                    op,
                    backend,
                    threads,
                    dtype: None,
                    ns_per_op: ns,
                    speedup_vs_1t: Some(speedup),
                    extra: None,
                    batch: None,
                    search: None,
                    serve: None,
                    stream: None,
                });
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_clouds_are_deterministic_and_in_bounds() {
        let a = synthetic_cloud(512, 9);
        let b = synthetic_cloud(512, 9);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_cloud(512, 10));
        for p in a.points() {
            for c in [p.x, p.y, p.z] {
                assert!((-1.0..=1.0).contains(&c), "out of bounds: {p:?}");
            }
        }
    }

    #[test]
    fn smoke_sweep_covers_every_configuration() {
        let sweep = [1, 2];
        let recs = records(true, Duration::from_millis(2), &sweep);
        let builds = recs.iter().filter(|r| r.op == "index_build").count();
        let queries = recs.iter().filter(|r| r.op == "query").count();
        assert_eq!(builds, build_configs(true) * sweep.len());
        assert_eq!(queries, query_configs(true) * sweep.len());
        assert!(recs.iter().all(|r| r.ns_per_op > 0.0));
        // The mode labels that make up a record's diff identity all appear.
        for label in ["octree-32k", "octree-32k-paged", "octree-32k-lod4", "kdtree-32k", "grid-32k"]
        {
            assert!(recs.iter().any(|r| r.backend == label), "missing {label}");
        }
    }
}
