//! §VII-A: area overhead of the Aggregation Unit.

use crate::Context;
use mesorasi_sim::area;
use mesorasi_sim::au::AuConfig;
use mesorasi_sim::npu::NpuConfig;
use mesorasi_sim::report::Table;

/// Runs the experiment.
pub fn run(_ctx: &Context) -> String {
    let au = AuConfig::default();
    let npu = NpuConfig::default();
    let breakdown = area::au_area(&au);
    let npu_area = area::npu_mm2(&npu);
    let mut t = Table::new(
        "Sec. VII-A: area overhead (16 nm)",
        &["Component", "Paper (mm^2)", "Model (mm^2)"],
    );
    t.row(vec![
        "PFT buffer (64 KB, 32 banks)".into(),
        "0.031".into(),
        format!("{:.3}", breakdown.pft_buffer),
    ]);
    t.row(vec![
        "Avoided crossbar (32x32)".into(),
        "0.064".into(),
        format!("{:.3}", area::crossbar_mm2(au.banks, 4)),
    ]);
    t.row(vec!["AU total".into(), "0.059".into(), format!("{:.3}", breakdown.total())]);
    t.row(vec![
        "AU / NPU overhead".into(),
        "< 3.8%".into(),
        format!("{:.2}%", breakdown.total() / npu_area * 100.0),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_paper_numbers() {
        let out = super::run(&crate::Context::new());
        assert!(out.contains("0.031"));
        assert!(out.contains("0.059"));
        assert!(out.contains("3.8"));
    }
}
