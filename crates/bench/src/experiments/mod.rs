//! One module per reproduced table/figure. Every experiment implements
//! `run(&Context) -> String`, returning a rendered table with paper values
//! alongside measured ones.

pub mod ablations;
pub mod area7a;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod table1;

use crate::Context;

/// An experiment runner: renders one table/figure from the shared context.
pub type Runner = fn(&Context) -> String;

/// The experiment registry: id → runner. Ordered as in the paper.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1::run as Runner),
        ("fig04", fig04::run),
        ("fig05", fig05::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("area", area7a::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("fig19", fig19::run),
        ("fig20", fig20::run),
        ("fig21", fig21::run),
        ("fig22", fig22::run),
        ("ablations", ablations::run),
    ]
}

/// Runs one experiment by id.
pub fn run_one(ctx: &Context, id: &str) -> Option<String> {
    all().into_iter().find(|(name, _)| *name == id).map(|(_, f)| f(ctx))
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_are_unique() {
        let ids: Vec<&str> = super::all().iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert_eq!(ids.len(), 18);
    }
}
