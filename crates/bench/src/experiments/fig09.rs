//! Fig. 9: MLP MAC reduction from delayed-aggregation.
//!
//! Shape criterion: large per-network reductions averaging 68 %, highest
//! for the networks whose modules multiply per-edge rows the most.

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{pct, Table};

/// Per-network MAC reduction (%) of delayed vs original.
pub fn reductions(ctx: &Context) -> Vec<(NetworkKind, f64)> {
    NetworkKind::PROFILED
        .iter()
        .map(|&kind| {
            let orig = ctx.trace(kind, Strategy::Original).mlp_macs() as f64;
            let del = ctx.trace(kind, Strategy::Delayed).mlp_macs() as f64;
            (kind, (1.0 - del / orig) * 100.0)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 9: MLP MAC reduction by delayed-aggregation",
        &["Network", "MAC reduction"],
    );
    let rows = reductions(ctx);
    let avg: f64 = rows.iter().map(|(_, r)| r).sum::<f64>() / rows.len() as f64;
    for (kind, r) in rows {
        t.row(vec![kind.name().to_owned(), pct(r)]);
    }
    t.row(vec!["AVG (paper: 68%)".into(), pct(avg)]);
    t.render()
}
