//! Fig. 20: Mesorasi on an NSE-enabled SoC (GPU + NPU + neighbor search
//! engine).
//!
//! Shape criteria: the NSE-enabled baseline is ≈4× the GPU; on it,
//! Mesorasi-SW reaches ≈2.1× and Mesorasi-HW ≈6.7× average (DGCNN highest,
//! since search dominated them before).

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{speedup, Table};
use mesorasi_sim::soc::{simulate, Platform, SocConfig};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let nse_cfg = SocConfig::with_nse();
    let mut t = Table::new(
        "Fig. 20: speedup over the NSE-enabled baseline (GPU+NPU+NSE)",
        &["Network", "GPU", "Mesorasi-SW", "Mesorasi-HW"],
    );
    let mut sums = [0.0f64; 3];
    for kind in NetworkKind::ALL {
        let orig_trace = ctx.trace(kind, Strategy::Original);
        let del_trace = ctx.trace(kind, Strategy::Delayed);
        let baseline = simulate(&orig_trace, Platform::GpuNpu, &nse_cfg);
        let gpu = simulate(&orig_trace, Platform::GpuOnly, ctx.soc()); // plain GPU, no NSE
        let sw = simulate(&del_trace, Platform::MesorasiSw, &nse_cfg);
        let hw = simulate(&del_trace, Platform::MesorasiHw, &nse_cfg);
        let row = [gpu.speedup_vs(&baseline), sw.speedup_vs(&baseline), hw.speedup_vs(&baseline)];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(vec![kind.name().to_owned(), speedup(row[0]), speedup(row[1]), speedup(row[2])]);
    }
    let n = NetworkKind::ALL.len() as f64;
    t.row(vec![
        "AVG (paper: ~0.25x / 2.1x / 6.7x)".into(),
        speedup(sums[0] / n),
        speedup(sums[1] / n),
        speedup(sums[2] / n),
    ]);
    t.render()
}
