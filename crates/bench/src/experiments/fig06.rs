//! Fig. 6: how many neighborhoods each input point occurs in.
//!
//! The paper profiles 32 inputs per network and plots, per cloud, the
//! number of points (`y`) occurring in exactly `x` neighborhoods. Its
//! summary: "In PointNet++, over half occur in more than 30 neighborhoods;
//! in DGCNN, over half occurs in 20" — counting across a network's modules.
//! This is the root cause of the MLP activation blow-up (Fig. 3 caption:
//! most points are normalized to 20–100 centroids).

use crate::Context;
use mesorasi_knn::{ball, bruteforce, kdtree::KdTree, stats};
use mesorasi_pointcloud::sampling::random_indices;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_sim::report::{pct, Table};

/// Membership counts for one PointNet++-configured input: ball-query
/// modules 512/K32/r0.2 then 128/K64/r0.4, mapped back to input points.
fn pointnetpp_membership(seed: u64) -> Vec<u32> {
    let cloud = sample_shape(ShapeClass::ALL[(seed % 40) as usize], 1024, seed);
    let tree = KdTree::build(&cloud);
    let c1 = random_indices(&cloud, 512, seed);
    let nit1 = ball::ball_query(&cloud, &tree, &c1, 0.2, 32);

    let level1 = cloud.select(&c1);
    let tree1 = KdTree::build(&level1);
    let c2 = random_indices(&level1, 128, seed ^ 1);
    let nit2_local = ball::ball_query(&level1, &tree1, &c2, 0.4, 64);
    // Map level-1-local indices back to original input ids.
    let mut nit2 = mesorasi_knn::NeighborIndexTable::new(64);
    for (centroid, neighbors) in nit2_local.iter() {
        let mapped: Vec<usize> = neighbors.iter().map(|&i| c1[i]).collect();
        nit2.push_entry(c1[centroid], &mapped);
    }
    stats::accumulate_membership(&[(&nit1, 1024), (&nit2, 1024)])
}

/// Membership counts for one DGCNN-configured input: a K=20 KNN graph over
/// all 1024 points (one module — Fig. 6's x-range shows DGCNN mass at ≈20,
/// i.e. per-graph in-degree; coordinate space stands in for the feature
/// spaces, whose index-overlap statistics are what matters).
fn dgcnn_membership(seed: u64) -> Vec<u32> {
    let cloud = sample_shape(ShapeClass::ALL[(seed % 40) as usize], 1024, seed ^ 77);
    let queries: Vec<usize> = (0..1024).collect();
    let nit = bruteforce::knn_indices(&cloud, &queries, 20);
    stats::membership_counts(&nit, 1024)
}

/// Runs the experiment over 32 inputs per network.
pub fn run(_ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 6: neighborhood membership per input point (32 inputs)",
        &["Network", "mean", "frac >= 20", "frac > 30", "paper summary"],
    );
    for (name, f, paper) in [
        (
            "PointNet++",
            pointnetpp_membership as fn(u64) -> Vec<u32>,
            "over half occur in > 30 neighborhoods",
        ),
        ("DGCNN", dgcnn_membership, "over half occur in >= 20 neighborhoods"),
    ] {
        let mut all_counts = Vec::new();
        for seed in 0..32u64 {
            all_counts.extend(f(seed));
        }
        t.row(vec![
            name.to_owned(),
            format!("{:.1}", stats::mean_membership(&all_counts)),
            pct(stats::fraction_at_least(&all_counts, 20) * 100.0),
            pct(stats::fraction_at_least(&all_counts, 31) * 100.0),
            paper.to_owned(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointnetpp_membership_has_substantial_overlap() {
        let counts = pointnetpp_membership(3);
        let mean = mesorasi_knn::stats::mean_membership(&counts);
        assert!(mean > 10.0, "accumulated membership should be high, got {mean}");
    }

    #[test]
    fn dgcnn_membership_mean_equals_k() {
        // Every point queries once with K=20, so the mean in-degree is 20.
        let counts = dgcnn_membership(3);
        let mean = mesorasi_knn::stats::mean_membership(&counts);
        assert!((mean - 20.0).abs() < 1e-9);
    }
}
