//! Ablations of the design choices `DESIGN.md` §7 calls out.
//!
//! 1. **Point ordering** — the AU's LSB bank interleaving relies on
//!    spatially-close points having close indices; shuffling the cloud
//!    shows how many extra conflict rounds that costs.
//! 2. **Max-before-subtract** (§IV-A) — moving the centroid subtraction
//!    after the max is exact and removes the scatter of `p_i`; we verify
//!    the identity numerically and count the saved subtractions.
//! 3. **PFT partitioning** (§V-B) — column-major guarantees each
//!    neighborhood is resident; row-major splits neighborhoods across
//!    partitions, forcing re-passes.
//! 4. **Ignore-conflicts approximation** (§V-B's future-work note) —
//!    dropping conflicted banks during reduction approximates the max; we
//!    measure the resulting output divergence.

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_knn::{bruteforce, NeighborIndexTable};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_pointcloud::{morton, sampling, shapes, PointCloud};
use mesorasi_sim::au::AuConfig;
use mesorasi_sim::report::{pct, Table};
use mesorasi_tensor::{group, ops, Matrix};
use rand::seq::SliceRandom;

fn nit_for(cloud: &PointCloud, n_out: usize, k: usize, seed: u64) -> NeighborIndexTable {
    let centroids = sampling::random_indices(cloud, n_out, seed);
    bruteforce::knn_indices(cloud, &centroids, k)
}

fn ordering_ablation(ctx: &Context) -> String {
    let au = AuConfig::default();
    let sorted_cloud = {
        let c = shapes::sample_shape(shapes::ShapeClass::Chair, 1024, 3);
        let (mut codes, mut order) = (Vec::new(), Vec::new());
        let mut sorted = PointCloud::new();
        morton::sort_cloud_into(&c, &mut codes, &mut order, &mut sorted);
        sorted
    };
    let shuffled_cloud = {
        let mut pts = sorted_cloud.points().to_vec();
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        pts.shuffle(&mut rng);
        PointCloud::from_points(pts)
    };
    let mut t = Table::new(
        "Ablation: point ordering vs AU bank conflicts (1024 pts, 512x32 NIT)",
        &["Ordering", "PFT time vs ideal", "Conflict accesses"],
    );
    for (name, cloud) in [("Morton-sorted", &sorted_cloud), ("Shuffled", &shuffled_cloud)] {
        let nit = nit_for(cloud, 512, 32, 9);
        let agg = mesorasi_core::trace::AggregateOp {
            nit,
            table_rows: 1024,
            width: 128,
            rows_per_entry: 33,
            fused_reduce: true,
        };
        let r = au.simulate(&agg);
        t.row(vec![
            name.to_owned(),
            format!("{:.2}x", r.time_vs_ideal),
            pct(r.conflict_access_fraction * 100.0),
        ]);
    }
    let _ = ctx;
    t.render()
}

fn max_subtract_ablation() -> String {
    // Identity check on real data plus the operation-count saving.
    let cloud = shapes::sample_shape(shapes::ShapeClass::Vase, 256, 5);
    let nit = nit_for(&cloud, 64, 8, 1);
    let pft = Matrix::from_fn(256, 32, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);

    // subtract-then-max
    let gathered = group::gather_rows(&pft, nit.neighbors_flat());
    let cents = group::gather_rows(&pft, nit.centroids());
    let offsets = group::subtract_centroid_per_group(&gathered, &cents, nit.k());
    let (a, _) = group::group_max_reduce(&offsets, nit.k());
    // max-then-subtract
    let (reduced, _) = group::gather_max_reduce(&pft, nit.neighbors_flat(), nit.k());
    let b = ops::sub(&reduced, &cents);
    let diff = ops::sub(&a, &b).max_abs();

    let naive_subs = nit.len() * nit.k() * 32;
    let fused_subs = nit.len() * 32;
    let mut t = Table::new(
        "Ablation: max-before-subtract (Sec. IV-A)",
        &["Variant", "Subtractions", "Max |difference|"],
    );
    t.row(vec!["subtract-then-max".into(), naive_subs.to_string(), "reference".into()]);
    t.row(vec!["max-before-subtract".into(), fused_subs.to_string(), format!("{diff:.1e}")]);
    t.render()
}

fn partitioning_ablation(ctx: &Context) -> String {
    // Column-major: every neighborhood resident per partition (by
    // construction). Row-major with the same buffer: count neighborhoods
    // spanning >1 partition — each spanning entry forces an extra pass.
    let trace = ctx.trace(NetworkKind::PointNetPPSegmentation, Strategy::Delayed);
    let au = AuConfig::default();
    let mut t = Table::new(
        "Ablation: column-major vs row-major PFT partitioning (Sec. V-B)",
        &["Module", "Partitions", "Row-major spanning entries", "Column-major spanning"],
    );
    for (i, agg) in trace.aggregations().enumerate() {
        let partitions =
            agg.working_set_bytes().div_ceil((au.pft_kb as u64) * 1024).max(1) as usize;
        if partitions <= 1 {
            continue;
        }
        let rows_per_part = agg.table_rows.div_ceil(partitions);
        let spanning = (0..agg.nit.len())
            .filter(|&e| {
                let parts: Vec<usize> =
                    agg.nit.neighbors(e).iter().map(|&r| r / rows_per_part).collect();
                parts.iter().any(|&p| p != parts[0])
            })
            .count();
        t.row(vec![
            format!("module {}", i + 1),
            partitions.to_string(),
            format!("{spanning} / {}", agg.nit.len()),
            "0 (guaranteed)".into(),
        ]);
    }
    t.render()
}

fn ignore_conflicts_ablation() -> String {
    // Approximate reduction: keep only the first row that maps to each
    // bank (drop conflicted reads) and compare against the exact max.
    let banks = 32usize;
    let (mut codes, mut order) = (Vec::new(), Vec::new());
    let mut cloud = PointCloud::new();
    morton::sort_cloud_into(
        &shapes::sample_shape(shapes::ShapeClass::Chair, 1024, 3),
        &mut codes,
        &mut order,
        &mut cloud,
    );
    let nit = nit_for(&cloud, 256, 32, 2);
    let pft = Matrix::from_fn(1024, 64, |r, c| (((r * 17 + c * 5) % 29) as f32).sin());

    let (exact, _) = group::gather_max_reduce(&pft, nit.neighbors_flat(), nit.k());
    let mut approx = Matrix::zeros(exact.rows(), exact.cols());
    for e in 0..nit.len() {
        let mut taken = vec![false; banks];
        let kept: Vec<usize> = nit
            .neighbors(e)
            .iter()
            .copied()
            .filter(|&r| {
                let b = r % banks;
                !std::mem::replace(&mut taken[b], true)
            })
            .collect();
        let (row_max, _) = group::gather_max_reduce(&pft, &kept, kept.len());
        approx.row_mut(e).copy_from_slice(row_max.row(0));
    }
    let err = ops::sub(&exact, &approx).frobenius_norm() / exact.frobenius_norm().max(1e-9);
    let mut mismatched = 0usize;
    for i in 0..exact.len() {
        if (exact.as_slice()[i] - approx.as_slice()[i]).abs() > 1e-6 {
            mismatched += 1;
        }
    }
    let mut t = Table::new(
        "Ablation: ignore-conflicted-banks approximation (Sec. V-B future work)",
        &["Metric", "Value"],
    );
    t.row(vec!["relative output error (Frobenius)".into(), format!("{err:.4}")]);
    t.row(vec!["elements changed".into(), pct(mismatched as f64 / exact.len() as f64 * 100.0)]);
    t.render()
}

/// Runs all four ablations.
pub fn run(ctx: &Context) -> String {
    let mut out = String::new();
    out.push_str(&ordering_ablation(ctx));
    out.push('\n');
    out.push_str(&max_subtract_ablation());
    out.push('\n');
    out.push_str(&partitioning_ablation(ctx));
    out.push('\n');
    out.push_str(&ignore_conflicts_ablation());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn max_subtract_identity_holds() {
        let out = super::max_subtract_ablation();
        // The fused variant must be exact (difference ~ 0).
        assert!(out.contains("0.0e0") || out.contains("0e0"), "out:\n{out}");
    }

    #[test]
    fn ignore_conflicts_changes_some_outputs() {
        let out = super::ignore_conflicts_ablation();
        assert!(out.contains("relative output error"));
    }
}
