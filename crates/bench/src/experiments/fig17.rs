//! Fig. 17: speedup and energy reduction of delayed-aggregation on the
//! GPU alone (no hardware support), including the limited (Ltd-Mesorasi)
//! variant.
//!
//! Shape criteria: Mesorasi ≈ 1.6× / 51 % on average; Ltd-Mesorasi lower
//! (≈1.3× / 28 %); the two coincide on DGCNN (c), LDGCNN and DensePoint
//! (single-MLP-layer modules).

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{pct, speedup, Table};
use mesorasi_sim::soc::{simulate, Platform, SimReport};

fn gpu_sim(ctx: &Context, kind: NetworkKind, strategy: Strategy) -> SimReport {
    simulate(&ctx.trace(kind, strategy), Platform::GpuOnly, ctx.soc())
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 17: delayed-aggregation on the mobile GPU",
        &["Network", "Ltd speedup", "Speedup", "Ltd energy red.", "Energy red."],
    );
    let mut sums = [0.0f64; 4];
    for kind in NetworkKind::ALL {
        let orig = gpu_sim(ctx, kind, Strategy::Original);
        let ltd = gpu_sim(ctx, kind, Strategy::LtdDelayed);
        let del = gpu_sim(ctx, kind, Strategy::Delayed);
        let row = [
            ltd.speedup_vs(&orig),
            del.speedup_vs(&orig),
            ltd.energy_reduction_vs(&orig),
            del.energy_reduction_vs(&orig),
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(vec![
            kind.name().to_owned(),
            speedup(row[0]),
            speedup(row[1]),
            pct(row[2]),
            pct(row[3]),
        ]);
    }
    let n = NetworkKind::ALL.len() as f64;
    t.row(vec![
        "AVG (paper: 1.3x / 1.6x / 28.3% / 51.1%)".into(),
        speedup(sums[0] / n),
        speedup(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    t.render()
}
