//! Fig. 19: per-operation gains — feature computation and aggregation.
//!
//! Shape criteria (vs the GPU+NPU baseline): feature computation ≈5.1×
//! faster / 76.3 % less energy (delayed MLP on the NPU vs original MLP on
//! the NPU); aggregation ≈7.5× faster / 99.4 % less energy (the AU vs the
//! baseline's GPU aggregation).

use crate::Context;
use mesorasi_core::{Stage, Strategy};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{pct, speedup, Table};
use mesorasi_sim::soc::{simulate, Platform, SimReport};

fn feature_mj(r: &SimReport) -> f64 {
    // Feature computation runs on the NPU on these platforms.
    r.modules.iter().map(|m| m.npu_mj).sum()
}

fn aggregation_mj(r: &SimReport, au: bool) -> f64 {
    if au {
        r.modules.iter().map(|m| m.au_mj).sum()
    } else {
        // Baseline aggregation is a GPU kernel; approximate its energy by
        // its share of GPU time.
        r.modules
            .iter()
            .map(|m| {
                let gpu_ms = m.search_ms + m.agg_ms + m.other_ms;
                if gpu_ms > 0.0 {
                    m.gpu_mj * (m.agg_ms / gpu_ms)
                } else {
                    0.0
                }
            })
            .sum()
    }
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 19: feature computation and aggregation vs GPU+NPU baseline",
        &["Network", "F speedup", "F energy red.", "A speedup", "A energy red."],
    );
    let mut sums = [0.0f64; 4];
    for kind in NetworkKind::ALL {
        let baseline = simulate(&ctx.trace(kind, Strategy::Original), Platform::GpuNpu, ctx.soc());
        let hw = simulate(&ctx.trace(kind, Strategy::Delayed), Platform::MesorasiHw, ctx.soc());
        let f_speed = baseline.stage_ms(Stage::FeatureCompute) / hw.stage_ms(Stage::FeatureCompute);
        let f_energy = (1.0 - feature_mj(&hw) / feature_mj(&baseline)) * 100.0;
        let a_speed = baseline.stage_ms(Stage::Aggregation) / hw.stage_ms(Stage::Aggregation);
        let a_energy = (1.0 - aggregation_mj(&hw, true) / aggregation_mj(&baseline, false)) * 100.0;
        sums[0] += f_speed;
        sums[1] += f_energy;
        sums[2] += a_speed;
        sums[3] += a_energy;
        t.row(vec![
            kind.name().to_owned(),
            speedup(f_speed),
            pct(f_energy),
            speedup(a_speed),
            pct(a_energy),
        ]);
    }
    let n = NetworkKind::ALL.len() as f64;
    t.row(vec![
        "AVG (paper: 5.1x / 76.3% / 7.5x / 99.4%)".into(),
        speedup(sums[0] / n),
        pct(sums[1] / n),
        speedup(sums[2] / n),
        pct(sums[3] / n),
    ]);
    t.render()
}
