//! Fig. 21: sensitivity of Mesorasi-HW gains to the systolic array size
//! (PointNet++ (s)).
//!
//! Shape criteria: growing the array from 8×8 to 48×48 shrinks the speedup
//! over the like-for-like baseline (≈2.8× → ≈1.2×) because feature
//! computation — what delayed-aggregation accelerates — stops being the
//! bottleneck; the energy reduction *grows* slightly (larger arrays waste
//! more on memory-bound layers).

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::npu::NpuConfig;
use mesorasi_sim::report::{pct, speedup, Table};
use mesorasi_sim::soc::{simulate, Platform, SocConfig};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let kind = NetworkKind::PointNetPPSegmentation;
    let orig = ctx.trace(kind, Strategy::Original);
    let del = ctx.trace(kind, Strategy::Delayed);
    let mut t = Table::new(
        "Fig. 21: PointNet++ (s) sensitivity to systolic array size",
        &["SA size", "Speedup", "Energy reduction"],
    );
    for sa in [8usize, 16, 24, 32, 40, 48] {
        let cfg = SocConfig {
            npu: NpuConfig { rows: sa, cols: sa, ..NpuConfig::default() },
            ..SocConfig::default()
        };
        let baseline = simulate(&orig, Platform::GpuNpu, &cfg);
        let hw = simulate(&del, Platform::MesorasiHw, &cfg);
        t.row(vec![
            format!("{sa}x{sa}"),
            speedup(hw.speedup_vs(&baseline)),
            pct(hw.energy_reduction_vs(&baseline)),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper: speedup 2.8x @ 8x8 falling to 1.2x @ 48x48; energy red. 17.7% -> 23.4%\n");
    out
}
