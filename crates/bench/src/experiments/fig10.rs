//! Fig. 10: per-layer MLP output sizes, original vs delayed.
//!
//! Shape criteria: original layer outputs "usually exceed 2 MB and could
//! be as large as 32 MB", far beyond on-chip buffers; delayed outputs drop
//! to 512 KB – 1 MB, "amenable to be buffered completely on-chip".

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{bytes, Table};

fn distribution(sizes: &[u64]) -> (u64, u64, u64) {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let min = *sorted.first().unwrap_or(&0);
    let max = *sorted.last().unwrap_or(&0);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
    (min, median, max)
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 10: MLP layer output sizes (min / median / max)",
        &["Network", "Original", "Delayed-Aggr."],
    );
    for kind in NetworkKind::PROFILED {
        let (omin, omed, omax) =
            distribution(&ctx.trace(kind, Strategy::Original).activation_sizes());
        let (dmin, dmed, dmax) =
            distribution(&ctx.trace(kind, Strategy::Delayed).activation_sizes());
        t.row(vec![
            kind.name().to_owned(),
            format!("{} / {} / {}", bytes(omin), bytes(omed), bytes(omax)),
            format!("{} / {} / {}", bytes(dmin), bytes(dmed), bytes(dmax)),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper: original up to 32 MB (spills any on-chip buffer); delayed 512 KB-1 MB\n");
    out
}
