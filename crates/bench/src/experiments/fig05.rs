//! Fig. 5: execution-time distribution across N / A / F / Others on the
//! GPU.
//!
//! Shape criteria: neighbor search and feature computation together
//! dominate every network; aggregation is small (≈3 % average — the Fig. 12
//! "before" value); DGCNN's share of neighbor search exceeds PointNet++'s.

use crate::Context;
use mesorasi_core::{Stage, Strategy};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{pct, Table};
use mesorasi_sim::soc::{simulate, Platform};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 5: time distribution across N / A / F (GPU, original algorithm)",
        &["Network", "Neighbor Search", "Aggregation", "Feature Comp.", "Others"],
    );
    for kind in NetworkKind::PROFILED {
        let trace = ctx.trace(kind, Strategy::Original);
        let sim = simulate(&trace, Platform::GpuOnly, ctx.soc());
        let total: f64 = Stage::ALL.iter().map(|&s| sim.stage_ms(s)).sum();
        let share = |s: Stage| pct(sim.stage_ms(s) / total * 100.0);
        t.row(vec![
            kind.name().to_owned(),
            share(Stage::NeighborSearch),
            share(Stage::Aggregation),
            share(Stage::FeatureCompute),
            share(Stage::Other),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "paper: N and F dominate all five networks; A is small (3% avg); \
         DGCNN variants are the most search-heavy\n",
    );
    out
}
