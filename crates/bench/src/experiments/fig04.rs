//! Fig. 4: latency of the five profiled networks on the mobile GPU.
//!
//! Shape criteria: the ordering (DGCNN (s) ≫ DGCNN (c) > F-PointNet ≈
//! PointNet++ (s) > PointNet++ (c)) and the "clearly infeasible for
//! real-time deployment" magnitudes. Absolute milliseconds come from a
//! calibrated model, not a TX2, so they are reported side-by-side with the
//! paper's measurements rather than expected to match.

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{ms, Table};
use mesorasi_sim::soc::{simulate, Platform};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 4: GPU latency of five point cloud networks",
        &["Network", "Paper (ms)", "Measured (ms)", "Paper rank", "Measured rank"],
    );
    let mut measured: Vec<(NetworkKind, f64)> = NetworkKind::PROFILED
        .iter()
        .map(|&kind| {
            let trace = ctx.trace(kind, Strategy::Original);
            let sim = simulate(&trace, Platform::GpuOnly, ctx.soc());
            (kind, sim.total_ms())
        })
        .collect();

    let rank = |values: &[(NetworkKind, f64)], kind: NetworkKind| -> usize {
        let mut sorted: Vec<_> = values.to_vec();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        sorted.iter().position(|(k, _)| *k == kind).expect("present") + 1
    };
    let paper: Vec<(NetworkKind, f64)> = NetworkKind::PROFILED
        .iter()
        .map(|&k| (k, k.paper_gpu_latency_ms().expect("profiled")))
        .collect();

    measured.sort_by_key(|(k, _)| NetworkKind::PROFILED.iter().position(|p| p == k));
    for (kind, measured_ms) in &measured {
        t.row(vec![
            kind.name().to_owned(),
            ms(kind.paper_gpu_latency_ms().expect("profiled")),
            ms(*measured_ms),
            rank(&paper, *kind).to_string(),
            rank(&measured, *kind).to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "paper-scale traces; run with --ignored or via the repro binary"]
    fn ordering_matches_paper() {
        let ctx = Context::new();
        let out = run(&ctx);
        assert!(out.contains("DGCNN (s)"));
    }
}
