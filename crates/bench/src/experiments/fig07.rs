//! Fig. 7: MAC comparison — point-cloud networks at a 130 K-point frame
//! vs conventional CNNs at a similar pixel count.
//!
//! Shape criterion: "In feature computation alone, point cloud networks
//! have an order of magnitude higher MAC counts than conventional CNNs."
//! Point-cloud MACs are taken from the paper-scale traces and scaled
//! linearly to 130 K input points (every batched-row count scales with N).

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::cnn;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{gops, Table};

/// The KITTI frame size the paper uses (64 × 2048 rays ≈ 130 K).
pub const KITTI_POINTS: usize = 131_072;

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 7: MAC operations, CNNs vs point-cloud networks @ 130K points (GOPs)",
        &["Model", "Kind", "GMACs"],
    );
    for model in cnn::fig7_baselines() {
        t.row(vec![model.name.to_owned(), "CNN".into(), gops(model.total_macs())]);
    }
    let mut min_pc = f64::INFINITY;
    let mut max_cnn = 0f64;
    for model in cnn::fig7_baselines() {
        max_cnn = max_cnn.max(model.total_macs() as f64);
    }
    for kind in NetworkKind::PROFILED {
        let trace = ctx.trace(kind, Strategy::Original);
        let net = {
            let mut rng = mesorasi_pointcloud::seeded_rng(0);
            kind.build_paper(&mut rng)
        };
        let scale = KITTI_POINTS as f64 / net.input_points() as f64;
        let macs = trace.mlp_macs() as f64 * scale;
        min_pc = min_pc.min(macs);
        t.row(vec![kind.name().to_owned(), "Point cloud".into(), gops(macs as u64)]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "min point-cloud / max CNN MAC ratio: {:.1}x (paper: about an order of magnitude)\n",
        min_pc / max_cnn
    ));
    out
}
