//! Fig. 12: aggregation time rises under delayed-aggregation.
//!
//! Shape criteria: both the absolute aggregation time and its share of
//! total execution increase on every network; the average share rises from
//! ≈3 % to ≈24 %.

use crate::Context;
use mesorasi_core::{Stage, Strategy};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{ms, pct, Table};
use mesorasi_sim::soc::{simulate, Platform};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 12: aggregation time, original vs delayed (GPU)",
        &["Network", "Orig (ms)", "Delayed (ms)", "Orig share", "Delayed share"],
    );
    let mut orig_shares = 0.0;
    let mut del_shares = 0.0;
    for kind in NetworkKind::PROFILED {
        let orig = simulate(&ctx.trace(kind, Strategy::Original), Platform::GpuOnly, ctx.soc());
        let del = simulate(&ctx.trace(kind, Strategy::Delayed), Platform::GpuOnly, ctx.soc());
        let total = |r: &mesorasi_sim::soc::SimReport| -> f64 {
            Stage::ALL.iter().map(|&s| r.stage_ms(s)).sum()
        };
        let o_share = orig.stage_ms(Stage::Aggregation) / total(&orig) * 100.0;
        let d_share = del.stage_ms(Stage::Aggregation) / total(&del) * 100.0;
        orig_shares += o_share;
        del_shares += d_share;
        t.row(vec![
            kind.name().to_owned(),
            ms(orig.stage_ms(Stage::Aggregation)),
            ms(del.stage_ms(Stage::Aggregation)),
            pct(o_share),
            pct(d_share),
        ]);
    }
    let n = NetworkKind::PROFILED.len() as f64;
    t.row(vec![
        "AVG (paper: 3% -> 24%)".into(),
        String::new(),
        String::new(),
        pct(orig_shares / n),
        pct(del_shares / n),
    ]);
    t.render()
}
