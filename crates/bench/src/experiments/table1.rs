//! Table I: the benchmark suite.

use crate::Context;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::Table;

/// Renders Table I (networks, domains, datasets, years) with the synthetic
/// stand-in noted per dataset.
pub fn run(_ctx: &Context) -> String {
    let mut t = Table::new(
        "Table I: evaluation benchmarks",
        &["Domain", "Algorithm", "Dataset (paper)", "Stand-in (here)", "Year"],
    );
    for kind in NetworkKind::ALL {
        let stand_in = match kind.dataset() {
            "ModelNet40" => "40-class parametric shapes",
            "ShapeNet" => "part-labelled parametric shapes",
            "KITTI" => "ray-cast LiDAR scenes",
            other => other,
        };
        t.row(vec![
            kind.domain().label().to_owned(),
            kind.name().to_owned(),
            kind.dataset().to_owned(),
            stand_in.to_owned(),
            kind.year().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_seven_networks() {
        let out = super::run(&crate::Context::new());
        assert!(out.contains("PointNet++ (c)"));
        assert!(out.contains("DensePoint"));
        assert!(out.contains("KITTI"));
        assert!(out.matches("20").count() >= 7);
    }
}
