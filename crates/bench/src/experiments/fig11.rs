//! Fig. 11: PointNet++ (s) stage times with and without delayed-aggregation
//! (GPU platform).
//!
//! Paper values (ms): original N=9.8, A=0.8, F=24.9; delayed N=9.5, A=3.9,
//! F=7.8. Shape criteria: F shrinks sharply, N stays put, A grows several
//! fold (the new bottleneck motivating the AU, §IV-C).

use crate::Context;
use mesorasi_core::{Stage, Strategy};
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{ms, Table};
use mesorasi_sim::soc::{simulate, Platform};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 11: PointNet++ (s) stage times, original vs delayed (GPU)",
        &["Stage", "Paper orig", "Paper delayed", "Measured orig", "Measured delayed"],
    );
    let kind = NetworkKind::PointNetPPSegmentation;
    let orig = simulate(&ctx.trace(kind, Strategy::Original), Platform::GpuOnly, ctx.soc());
    let del = simulate(&ctx.trace(kind, Strategy::Delayed), Platform::GpuOnly, ctx.soc());
    let paper = [
        (Stage::NeighborSearch, 9.8, 9.5),
        (Stage::Aggregation, 0.8, 3.9),
        (Stage::FeatureCompute, 24.9, 7.8),
    ];
    for (stage, p_orig, p_del) in paper {
        t.row(vec![
            stage.label().to_owned(),
            ms(p_orig),
            ms(p_del),
            ms(orig.stage_ms(stage)),
            ms(del.stage_ms(stage)),
        ]);
    }
    t.render()
}
