//! Fig. 18: speedup and normalized energy of Mesorasi-SW and Mesorasi-HW
//! over the GPU+NPU baseline.
//!
//! Shape criteria: the baseline already beats the GPU (~2×, 70 % less
//! energy, §VII-D); Mesorasi-SW adds ≈1.3× / 22 %; Mesorasi-HW reaches
//! ≈1.9× average (up to 3.6×) and ≈37.6 % energy reduction.

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::report::{pct, speedup, Table};
use mesorasi_sim::soc::{simulate, Platform};

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let mut t = Table::new(
        "Fig. 18: speedup / normalized energy over the GPU+NPU baseline",
        &["Network", "GPU", "Mesorasi-SW", "Mesorasi-HW", "SW energy red.", "HW energy red."],
    );
    let mut sums = [0.0f64; 5];
    for kind in NetworkKind::ALL {
        let orig_trace = ctx.trace(kind, Strategy::Original);
        let del_trace = ctx.trace(kind, Strategy::Delayed);
        let baseline = simulate(&orig_trace, Platform::GpuNpu, ctx.soc());
        let gpu = simulate(&orig_trace, Platform::GpuOnly, ctx.soc());
        let sw = simulate(&del_trace, Platform::MesorasiSw, ctx.soc());
        let hw = simulate(&del_trace, Platform::MesorasiHw, ctx.soc());
        let row = [
            gpu.speedup_vs(&baseline),
            sw.speedup_vs(&baseline),
            hw.speedup_vs(&baseline),
            sw.energy_reduction_vs(&baseline),
            hw.energy_reduction_vs(&baseline),
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(vec![
            kind.name().to_owned(),
            speedup(row[0]),
            speedup(row[1]),
            speedup(row[2]),
            pct(row[3]),
            pct(row[4]),
        ]);
    }
    let n = NetworkKind::ALL.len() as f64;
    t.row(vec![
        "AVG (paper: ~0.5x / 1.3x / 1.9x / 22% / 37.6%)".into(),
        speedup(sums[0] / n),
        speedup(sums[1] / n),
        speedup(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
    ]);
    t.render()
}
