//! Fig. 16: accuracy of the networks trained with delayed-aggregation vs
//! the original formulation.
//!
//! The paper retrains all seven networks from scratch in both forms and
//! finds the delta confined to [−0.9 %, +1.2 %]. This experiment does the
//! same at reduced scale on the synthetic tasks: same datasets, same
//! hyper-parameters, fresh weights per strategy. Absolute accuracies are
//! task-specific (synthetic data, small models); the reproduced *shape* is
//! the small magnitude of the original-vs-delayed gap.

use crate::training::{
    split_frustums, train_classifier, train_detector, train_segmenter, TrainConfig,
};
use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::datasets;
use mesorasi_networks::fpointnet::FPointNet;
use mesorasi_networks::registry::{Domain, NetworkKind};
use mesorasi_sim::report::Table;

/// Scale of the training experiment (kept small so the full repro run
/// finishes in minutes; raise for tighter estimates).
#[derive(Debug, Clone, Copy)]
pub struct Fig16Scale {
    /// Classes used for classification.
    pub classes: usize,
    /// Training examples per class.
    pub train_per_class: usize,
    /// Test examples per class.
    pub test_per_class: usize,
    /// Points per cloud.
    pub points: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for Fig16Scale {
    fn default() -> Self {
        Fig16Scale { classes: 6, train_per_class: 20, test_per_class: 8, points: 128, epochs: 45 }
    }
}

/// Mean accuracy of `kind` under both strategies over `SEEDS` independent
/// runs, `(original, delayed)`. The paper trains to convergence at full
/// scale; at this reduced scale single runs vary by ±10 pts, so the
/// experiment averages and prints the residual spread.
pub fn accuracy_pair(kind: NetworkKind, scale: Fig16Scale) -> (f64, f64) {
    const SEEDS: [u64; 3] = [11, 21, 31];
    let mean = |strategy: Strategy| -> f64 {
        SEEDS.iter().map(|&s| run_once(kind, scale, strategy, s)).sum::<f64>() / SEEDS.len() as f64
    };
    (mean(Strategy::Original), mean(Strategy::Delayed))
}

fn run_once(kind: NetworkKind, scale: Fig16Scale, strategy: Strategy, seed: u64) -> f64 {
    let cfg = TrainConfig { epochs: scale.epochs, ..TrainConfig::default() };
    let run_for = |strategy: Strategy| -> f64 {
        let mut rng = mesorasi_pointcloud::seeded_rng(seed);
        match kind.domain() {
            Domain::Classification => {
                let ds = datasets::classification(
                    scale.classes,
                    scale.points,
                    scale.train_per_class,
                    scale.test_per_class,
                    5,
                );
                let mut net = kind.build_small(scale.classes, &mut rng);
                train_classifier(net.as_mut(), &ds, strategy, cfg)
            }
            Domain::Segmentation => {
                let (ds, _, parts) = datasets::segmentation(
                    3,
                    scale.points,
                    scale.train_per_class,
                    scale.test_per_class,
                    5,
                );
                let mut net = kind.build_small(parts as usize, &mut rng);
                train_segmenter(net.as_mut(), &ds, parts, strategy, cfg)
            }
            Domain::Detection => {
                let frustums = datasets::frustums(10, scale.points, 5);
                let (train, test) = split_frustums(frustums, 0.25);
                let mut net = FPointNet::small(&mut rng);
                train_detector(&mut net, &train, &test, strategy, cfg)
            }
        }
    };
    run_for(strategy)
}

/// Runs the experiment over all seven networks.
pub fn run(_ctx: &Context) -> String {
    let scale = Fig16Scale::default();
    let mut t = Table::new(
        "Fig. 16: accuracy, original vs delayed-aggregation (synthetic tasks)",
        &["Network", "Paper orig", "Paper Mesorasi", "Measured orig", "Measured delayed", "Delta"],
    );
    // Train the seven networks in parallel (each pair is independent).
    let results: Vec<(NetworkKind, (f64, f64))> = std::thread::scope(|scope| {
        let handles: Vec<_> = NetworkKind::ALL
            .iter()
            .map(|&kind| scope.spawn(move || (kind, accuracy_pair(kind, scale))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("training worker")).collect()
    });

    for (kind, (orig, delayed)) in results {
        t.row(vec![
            kind.name().to_owned(),
            format!("{:.1}", kind.paper_accuracy_original()),
            format!("{:.1}", kind.paper_accuracy_mesorasi()),
            format!("{orig:.1}"),
            format!("{delayed:.1}"),
            format!("{:+.1}", delayed - orig),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper delta band: -0.9% .. +1.2% (after retraining from scratch)\n");
    out
}
