//! Fig. 22: AU energy sensitivity to the NIT and PFT buffer sizes
//! (PointNet++ (s)).
//!
//! Shape criteria: energy normalized to the nominal design (PFT 64 KB,
//! NIT 12 KB) grows toward small buffers (more partitions ⇒ more NIT
//! re-streaming; tiny NIT ⇒ DRAM refetch dominates) and shrinks mildly
//! toward large ones — the paper's corner values are 31.8× at
//! (8 KB, 3 KB) and 0.1× at (256 KB, 96 KB).

use crate::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_sim::au::AuConfig;
use mesorasi_sim::report::Table;

/// Total AU energy (mJ, including NIT DRAM traffic) for all aggregations
/// of the PointNet++ (s) delayed trace under `au`.
fn au_energy(ctx: &Context, au: &AuConfig) -> f64 {
    let trace = ctx.trace(NetworkKind::PointNetPPSegmentation, Strategy::Delayed);
    trace.aggregations().map(|agg| au.simulate(agg).total_mj()).sum()
}

/// Runs the experiment.
pub fn run(ctx: &Context) -> String {
    let nominal = au_energy(ctx, &AuConfig::default());
    let nit_sizes = [3usize, 6, 12, 24, 48, 96];
    let pft_sizes = [8usize, 16, 32, 64, 128, 256];
    let mut headers: Vec<String> = vec!["PFT \\ NIT (KB)".into()];
    headers.extend(nit_sizes.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig. 22: AU energy vs buffer sizes, normalized to (PFT 64 KB, NIT 12 KB)",
        &header_refs,
    );
    for &pft in &pft_sizes {
        let mut row = vec![format!("{pft} KB")];
        for &nit in &nit_sizes {
            let cfg = AuConfig { pft_kb: pft, nit_kb: nit, ..AuConfig::default() };
            row.push(format!("{:.2}", au_energy(ctx, &cfg) / nominal));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str("paper corners: 31.8 at (PFT 8, NIT 3); 0.1 at (PFT 256, NIT 96); 1.0 nominal\n");
    out
}
