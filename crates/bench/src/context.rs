//! Shared experiment state: cached paper-scale traces and the SoC models.

use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_networks::datasets;
use mesorasi_networks::registry::{Domain, NetworkKind};
use mesorasi_nn::Graph;
use mesorasi_pointcloud::parts;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{morton, PointCloud};
use mesorasi_sim::soc::SocConfig;
use std::collections::HashMap;
use std::sync::Mutex;

/// Cached traces plus hardware configuration for one experiment session.
pub struct Context {
    soc: SocConfig,
    traces: Mutex<HashMap<(NetworkKind, Strategy), NetworkTrace>>,
    /// Seed for input generation and centroid sampling; fixed so all
    /// experiments see identical workloads.
    seed: u64,
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl Context {
    /// Creates a context with the nominal SoC configuration.
    pub fn new() -> Self {
        Context { soc: SocConfig::default(), traces: Mutex::new(HashMap::new()), seed: 2020 }
    }

    /// The SoC configuration shared by all experiments.
    pub fn soc(&self) -> &SocConfig {
        &self.soc
    }

    /// The paper-scale input cloud for `kind`: a Morton-sorted synthetic
    /// instance of the network's dataset stand-in (spatial sorting gives
    /// neighbor indices the locality real preprocessed datasets have,
    /// which the AU's LSB bank interleaving expects — §V-B).
    pub fn input_cloud(&self, kind: NetworkKind) -> PointCloud {
        let points = match kind {
            NetworkKind::PointNetPPSegmentation | NetworkKind::DgcnnSegmentation => 2048,
            _ => 1024,
        };
        let cloud = match kind.domain() {
            Domain::Classification => sample_shape(ShapeClass::Chair, points, self.seed),
            Domain::Segmentation => {
                let cat = parts::categories()[1]; // chair
                parts::sample_labelled(cat, points, self.seed)
            }
            Domain::Detection => {
                let frustums = datasets::frustums(4, points, self.seed);
                frustums
                    .into_iter()
                    .next()
                    .expect("synthetic scenes always yield at least one frustum")
                    .cloud
            }
        };
        sort_labelled(&cloud)
    }

    /// The trace of `kind` under `strategy` at paper scale, cached.
    pub fn trace(&self, kind: NetworkKind, strategy: Strategy) -> NetworkTrace {
        if let Some(t) = self.traces.lock().expect("trace cache poisoned").get(&(kind, strategy)) {
            return t.clone();
        }
        let trace = self.build_trace(kind, strategy);
        self.traces.lock().expect("trace cache poisoned").insert((kind, strategy), trace.clone());
        trace
    }

    fn build_trace(&self, kind: NetworkKind, strategy: Strategy) -> NetworkTrace {
        let mut rng = mesorasi_pointcloud::seeded_rng(self.seed ^ 0xfeed);
        let net = kind.build_paper(&mut rng);
        let cloud = self.input_cloud(kind);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, strategy, self.seed);
        out.trace
    }

    /// Pre-builds the traces for `kinds` × `strategies` in parallel on the
    /// shared pool (one task per network × strategy pair; the pool bounds
    /// concurrency at the effective thread count instead of spawning all
    /// ~21 builders at once).
    pub fn warm_traces(&self, kinds: &[NetworkKind], strategies: &[Strategy]) {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for &kind in kinds {
            for &strategy in strategies {
                tasks.push(Box::new(move || {
                    let _ = self.trace(kind, strategy);
                }));
            }
        }
        mesorasi_par::par_run_tasks(tasks);
    }
}

/// Morton-sorts a cloud, preserving labels.
fn sort_labelled(cloud: &PointCloud) -> PointCloud {
    let (mut codes, mut perm) = (Vec::new(), Vec::new());
    morton::sort_permutation_into(cloud, &mut codes, &mut perm);
    cloud.select(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_clouds_have_expected_sizes() {
        let ctx = Context::new();
        assert_eq!(ctx.input_cloud(NetworkKind::PointNetPPClassification).len(), 1024);
        assert_eq!(ctx.input_cloud(NetworkKind::DgcnnSegmentation).len(), 2048);
        let frustum = ctx.input_cloud(NetworkKind::FPointNet);
        assert_eq!(frustum.len(), 1024);
        assert!(frustum.labels().is_some(), "detection inputs carry labels");
    }

    #[test]
    fn input_clouds_are_deterministic() {
        let a = Context::new().input_cloud(NetworkKind::PointNetPPClassification);
        let b = Context::new().input_cloud(NetworkKind::PointNetPPClassification);
        assert_eq!(a, b);
    }
}
