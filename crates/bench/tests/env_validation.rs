//! Invalid `MESORASI_*` environment overrides must fail loudly, naming the
//! accepted values — never be silently ignored (which would make a typo'd
//! override *look* honored and skew experiments).
//!
//! The parse results are cached in process-wide `OnceLock`s, so these
//! tests drive a subprocess (the `repro` binary) instead of mutating this
//! process' environment.

use std::process::Command;

fn repro_bench_with(var: &str, value: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["bench", "--smoke"])
        .env(var, value)
        .output()
        .expect("spawn repro")
}

#[test]
fn invalid_mesorasi_threads_fails_loudly_with_accepted_values() {
    let out = repro_bench_with("MESORASI_THREADS", "lots");
    assert!(!out.status.success(), "invalid MESORASI_THREADS must not be ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid MESORASI_THREADS='lots'"), "stderr: {err}");
    assert!(err.contains("positive integers 1..="), "must name accepted values: {err}");
}

#[test]
fn invalid_mesorasi_search_fails_loudly_with_accepted_values() {
    let out = repro_bench_with("MESORASI_SEARCH", "octtree");
    assert!(!out.status.success(), "invalid MESORASI_SEARCH must not be ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid MESORASI_SEARCH='octtree'"), "stderr: {err}");
    assert!(err.contains("auto|kdtree|grid|bruteforce|octree"), "must name accepted values: {err}");
}

#[test]
fn invalid_mesorasi_pager_budget_fails_loudly_with_accepted_values() {
    let out = repro_bench_with("MESORASI_PAGER_BUDGET", "huge");
    assert!(!out.status.success(), "invalid MESORASI_PAGER_BUDGET must not be ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid MESORASI_PAGER_BUDGET='huge'"), "stderr: {err}");
    assert!(err.contains("unbounded"), "must name accepted values: {err}");
}

#[test]
fn invalid_mesorasi_tile_budget_fails_loudly_with_accepted_values() {
    let out = repro_bench_with("MESORASI_TILE_BUDGET", "huge");
    assert!(!out.status.success(), "invalid MESORASI_TILE_BUDGET must not be ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid MESORASI_TILE_BUDGET='huge'"), "stderr: {err}");
    assert!(err.contains("positive integers (points per tile) or \"off\""), "stderr: {err}");
}

#[test]
fn zero_mesorasi_tile_budget_fails_loudly() {
    // `0` parses as an integer but is not a legal budget — it must be
    // rejected by the same loud path, not fall through to a panic deep in
    // the tile splitter.
    let out = repro_bench_with("MESORASI_TILE_BUDGET", "0");
    assert!(!out.status.success(), "zero MESORASI_TILE_BUDGET must not be ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid MESORASI_TILE_BUDGET='0'"), "stderr: {err}");
}

#[test]
fn valid_overrides_still_accepted() {
    // `0`/negative are rejected; a plain valid pair must boot far enough
    // to start benching (we don't wait for completion — kill via timeout
    // is unavailable, so assert only on the loud-failure cases above and
    // on the cheap parse acceptance here).
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--list")
        .env("MESORASI_THREADS", "2")
        .env("MESORASI_SEARCH", "kdtree")
        .env("MESORASI_TILE_BUDGET", "off")
        .output()
        .expect("spawn repro");
    assert!(out.status.success(), "valid overrides must not fail: {:?}", out);
}
