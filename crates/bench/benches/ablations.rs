//! Ablation benches for the design choices `DESIGN.md` §7 calls out:
//! point ordering vs AU conflicts, max-before-subtract, partitioning
//! direction, and the ignore-conflicts approximation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesorasi_core::trace::AggregateOp;
use mesorasi_knn::bruteforce;
use mesorasi_pointcloud::sampling::random_indices;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{morton, PointCloud};
use mesorasi_sim::au::AuConfig;
use mesorasi_tensor::{group, ops, Matrix};
use rand::seq::SliceRandom;

fn agg_for(cloud: &PointCloud, width: usize) -> AggregateOp {
    let centroids = random_indices(cloud, 512, 1);
    let nit = bruteforce::knn_indices(cloud, &centroids, 32);
    AggregateOp { nit, table_rows: cloud.len(), width, rows_per_entry: 33, fused_reduce: true }
}

fn bench_ordering(c: &mut Criterion) {
    let (mut codes, mut order) = (Vec::new(), Vec::new());
    let mut sorted = PointCloud::new();
    morton::sort_cloud_into(
        &sample_shape(ShapeClass::Chair, 1024, 3),
        &mut codes,
        &mut order,
        &mut sorted,
    );
    let shuffled = {
        let mut pts = sorted.points().to_vec();
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        pts.shuffle(&mut rng);
        PointCloud::from_points(pts)
    };
    let au = AuConfig::default();
    let mut g = c.benchmark_group("ablation_ordering");
    g.sample_size(20);
    for (name, cloud) in [("morton", &sorted), ("shuffled", &shuffled)] {
        let agg = agg_for(cloud, 128);
        g.bench_function(format!("au_simulate_{name}"), |b| {
            b.iter(|| black_box(au.simulate(&agg)))
        });
    }
    g.finish();
}

fn bench_max_subtract_order(c: &mut Criterion) {
    let cloud = sample_shape(ShapeClass::Vase, 1024, 5);
    let centroids = random_indices(&cloud, 512, 1);
    let nit = bruteforce::knn_indices(&cloud, &centroids, 32);
    let pft = Matrix::from_fn(1024, 128, |r, cix| ((r * 31 + cix * 7) % 13) as f32 - 6.0);
    let cents = group::gather_rows(&pft, nit.centroids());
    let mut g = c.benchmark_group("ablation_max_subtract");
    g.sample_size(20);
    g.bench_function("subtract_then_max", |b| {
        b.iter(|| {
            let gathered = group::gather_rows(&pft, nit.neighbors_flat());
            let offsets = group::subtract_centroid_per_group(&gathered, &cents, nit.k());
            black_box(group::group_max_reduce(&offsets, nit.k()))
        })
    });
    g.bench_function("max_before_subtract", |b| {
        b.iter(|| {
            let (reduced, _) = group::gather_max_reduce(&pft, nit.neighbors_flat(), nit.k());
            black_box(ops::sub(&reduced, &cents))
        })
    });
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    // Column-major (the design) vs a single-partition oversized buffer:
    // quantifies the cost the partitioned design pays to stay small.
    let (mut codes, mut order) = (Vec::new(), Vec::new());
    let mut cloud = PointCloud::new();
    morton::sort_cloud_into(
        &sample_shape(ShapeClass::Chair, 2048, 3),
        &mut codes,
        &mut order,
        &mut cloud,
    );
    let agg = agg_for(&cloud, 256);
    let nominal = AuConfig::default(); // 64 KB ⇒ partitions
    let oversized = AuConfig { pft_kb: 4096, ..AuConfig::default() }; // 1 partition
    let mut g = c.benchmark_group("ablation_partitioning");
    g.sample_size(20);
    g.bench_function("au_64kb_partitioned", |b| b.iter(|| black_box(nominal.simulate(&agg))));
    g.bench_function("au_4mb_single_partition", |b| b.iter(|| black_box(oversized.simulate(&agg))));
    g.finish();
}

criterion_group!(benches, bench_ordering, bench_max_subtract_order, bench_partitioning);
criterion_main!(benches);
