//! Micro-benchmarks of the computational kernels the reproduction is built
//! on: neighbor search, gather/reduce, matmul, and the AU simulator itself.
//! These measure *this implementation's* throughput (not the modeled
//! hardware), so regressions in the substrate show up here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesorasi_knn::{ball, bruteforce, feature::FeatureView, kdtree::KdTree};
use mesorasi_pointcloud::sampling::random_indices;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{morton, PointCloud};
use mesorasi_sim::au::AuConfig;
use mesorasi_tensor::{group, ops, Matrix};

fn cloud_1k() -> PointCloud {
    sample_shape(ShapeClass::Chair, 1024, 7)
}

fn bench_neighbor_search(c: &mut Criterion) {
    let cloud = cloud_1k();
    let queries = random_indices(&cloud, 512, 1);
    let tree = KdTree::build(&cloud);
    let mut g = c.benchmark_group("neighbor_search");
    g.sample_size(20);
    g.bench_function("bruteforce_knn_512x1024_k32", |b| {
        b.iter(|| bruteforce::knn_indices(black_box(&cloud), &queries, 32))
    });
    g.bench_function("kdtree_build_1024", |b| b.iter(|| KdTree::build(black_box(&cloud))));
    g.bench_function("kdtree_knn_512x1024_k32", |b| {
        b.iter(|| tree.knn_indices(black_box(&cloud), &queries, 32))
    });
    g.bench_function("ball_query_512x1024_k32", |b| {
        b.iter(|| ball::ball_query(black_box(&cloud), &tree, &queries, 0.2, 32))
    });
    let feats = Matrix::from_fn(1024, 64, |r, cix| ((r * 31 + cix * 7) % 17) as f32);
    g.bench_function("feature_knn_1024x1024_d64_k20", |b| {
        b.iter(|| {
            let view = FeatureView::new(feats.as_slice(), 64).expect("rectangular");
            mesorasi_knn::feature::knn_rows(view, black_box(&queries), 20)
        })
    });
    g.finish();
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor");
    g.sample_size(20);
    let a = Matrix::from_fn(1024, 64, |r, cix| ((r + cix) % 13) as f32 * 0.1);
    let w = Matrix::from_fn(64, 128, |r, cix| ((r * cix) % 7) as f32 * 0.01);
    g.bench_function("matmul_1024x64x128", |b| b.iter(|| ops::matmul(black_box(&a), &w)));
    let pft = Matrix::from_fn(1024, 128, |r, cix| ((r * 3 + cix) % 19) as f32);
    let cloud = cloud_1k();
    let centroids = random_indices(&cloud, 512, 1);
    let nit = bruteforce::knn_indices(&cloud, &centroids, 32);
    g.bench_function("gather_rows_512x32x128", |b| {
        b.iter(|| group::gather_rows(black_box(&pft), nit.neighbors_flat()))
    });
    g.bench_function("gather_max_reduce_512x32x128", |b| {
        b.iter(|| group::gather_max_reduce(black_box(&pft), nit.neighbors_flat(), 32))
    });
    g.finish();
}

fn bench_au_and_morton(c: &mut Criterion) {
    let mut g = c.benchmark_group("au_sim");
    g.sample_size(20);
    let (mut codes, mut order) = (Vec::new(), Vec::new());
    let mut cloud = PointCloud::new();
    morton::sort_cloud_into(&cloud_1k(), &mut codes, &mut order, &mut cloud);
    let centroids = random_indices(&cloud, 512, 1);
    let nit = bruteforce::knn_indices(&cloud, &centroids, 32);
    let agg = mesorasi_core::trace::AggregateOp {
        nit,
        table_rows: 1024,
        width: 128,
        rows_per_entry: 33,
        fused_reduce: true,
    };
    let au = AuConfig::default();
    g.bench_function("au_simulate_512x32x128", |b| b.iter(|| au.simulate(black_box(&agg))));
    // Warm-path form: scratch and output reused across iterations, so this
    // measures the sort itself rather than per-call allocation.
    let mut sorted = PointCloud::new();
    g.bench_function("morton_sort_1024", |b| {
        b.iter(|| morton::sort_cloud_into(black_box(&cloud), &mut codes, &mut order, &mut sorted))
    });
    g.finish();
}

criterion_group!(benches, bench_neighbor_search, bench_tensor_kernels, bench_au_and_morton);
criterion_main!(benches);
