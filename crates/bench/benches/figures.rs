//! One Criterion bench per reproduced table/figure: times the computation
//! that regenerates each result (trace building amortized once). The
//! `repro` binary prints the actual rows; these benches keep the
//! regeneration cost measurable and catch performance regressions in the
//! experiment pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesorasi_bench::experiments;
use mesorasi_bench::training::{overfit_single_cloud, TrainConfig};
use mesorasi_bench::Context;
use mesorasi_core::Strategy;
use mesorasi_networks::pointnetpp::PointNetPP;
use mesorasi_networks::registry::NetworkKind;
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_sim::au::AuConfig;
use mesorasi_sim::npu::NpuConfig;
use mesorasi_sim::soc::{simulate, Platform, SocConfig};
use std::sync::OnceLock;

/// Traces are expensive; build once for every bench in this file.
fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = Context::new();
        ctx.warm_traces(&NetworkKind::ALL, &Strategy::ALL);
        ctx
    })
}

fn bench_motivation_figures(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("motivation");
    g.sample_size(10);
    // Fig. 4/5: GPU simulation of the original traces.
    g.bench_function("fig04_fig05_gpu_sim_5_networks", |b| {
        b.iter(|| {
            for kind in NetworkKind::PROFILED {
                let trace = ctx.trace(kind, Strategy::Original);
                black_box(simulate(&trace, Platform::GpuOnly, ctx.soc()));
            }
        })
    });
    // Fig. 6: membership statistics (full experiment, 32 inputs).
    g.bench_function("fig06_membership_stats", |b| {
        b.iter(|| black_box(experiments::fig06::run(ctx)))
    });
    // Fig. 7/9/10: MAC and footprint accounting over cached traces.
    g.bench_function("fig07_fig09_fig10_accounting", |b| {
        b.iter(|| {
            for kind in NetworkKind::PROFILED {
                let orig = ctx.trace(kind, Strategy::Original);
                let del = ctx.trace(kind, Strategy::Delayed);
                black_box((orig.mlp_macs(), del.mlp_macs(), orig.activation_sizes()));
            }
        })
    });
    // Fig. 11/12: stage-time simulations, both strategies.
    g.bench_function("fig11_fig12_stage_times", |b| {
        b.iter(|| {
            for kind in NetworkKind::PROFILED {
                for strategy in [Strategy::Original, Strategy::Delayed] {
                    let trace = ctx.trace(kind, strategy);
                    black_box(simulate(&trace, Platform::GpuOnly, ctx.soc()));
                }
            }
        })
    });
    g.finish();
}

fn bench_evaluation_figures(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("evaluation");
    g.sample_size(10);
    // Fig. 17: GPU platform, all three strategies, seven networks.
    g.bench_function("fig17_gpu_three_strategies", |b| {
        b.iter(|| {
            for kind in NetworkKind::ALL {
                for strategy in Strategy::ALL {
                    let trace = ctx.trace(kind, strategy);
                    black_box(simulate(&trace, Platform::GpuOnly, ctx.soc()));
                }
            }
        })
    });
    // Fig. 18/19: all four platforms.
    g.bench_function("fig18_fig19_soc_platforms", |b| {
        b.iter(|| {
            for kind in NetworkKind::ALL {
                let orig = ctx.trace(kind, Strategy::Original);
                let del = ctx.trace(kind, Strategy::Delayed);
                black_box(simulate(&orig, Platform::GpuNpu, ctx.soc()));
                black_box(simulate(&del, Platform::MesorasiSw, ctx.soc()));
                black_box(simulate(&del, Platform::MesorasiHw, ctx.soc()));
            }
        })
    });
    // Fig. 20: NSE-enabled SoC.
    let nse = SocConfig::with_nse();
    g.bench_function("fig20_nse_soc", |b| {
        b.iter(|| {
            for kind in NetworkKind::ALL {
                let del = ctx.trace(kind, Strategy::Delayed);
                black_box(simulate(&del, Platform::MesorasiHw, &nse));
            }
        })
    });
    // Fig. 21: systolic-array sweep.
    g.bench_function("fig21_sa_size_sweep", |b| {
        let orig = ctx.trace(NetworkKind::PointNetPPSegmentation, Strategy::Original);
        let del = ctx.trace(NetworkKind::PointNetPPSegmentation, Strategy::Delayed);
        b.iter(|| {
            for sa in [8usize, 16, 24, 32, 40, 48] {
                let cfg = SocConfig {
                    npu: NpuConfig { rows: sa, cols: sa, ..NpuConfig::default() },
                    ..SocConfig::default()
                };
                black_box(simulate(&orig, Platform::GpuNpu, &cfg));
                black_box(simulate(&del, Platform::MesorasiHw, &cfg));
            }
        })
    });
    // Fig. 22: AU buffer sweep (36 configurations × every aggregation).
    g.bench_function("fig22_au_buffer_sweep", |b| {
        let trace = ctx.trace(NetworkKind::PointNetPPSegmentation, Strategy::Delayed);
        b.iter(|| {
            for pft in [8usize, 16, 32, 64, 128, 256] {
                for nit in [3usize, 6, 12, 24, 48, 96] {
                    let au = AuConfig { pft_kb: pft, nit_kb: nit, ..AuConfig::default() };
                    for agg in trace.aggregations() {
                        black_box(au.simulate(agg).total_mj());
                    }
                }
            }
        })
    });
    // Area table (§VII-A).
    g.bench_function("area_model", |b| {
        b.iter(|| {
            black_box(mesorasi_sim::area::au_area(&AuConfig::default()).total());
            black_box(mesorasi_sim::area::npu_mm2(&NpuConfig::default()));
        })
    });
    g.finish();
}

fn bench_fig16_training_step(c: &mut Criterion) {
    // Fig. 16's unit of work: one train step of a small network (the full
    // experiment runs thousands of these across seven networks).
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    let cloud = sample_shape(ShapeClass::Chair, 128, 1);
    for strategy in [Strategy::Original, Strategy::Delayed] {
        g.bench_function(format!("train_step_pointnetpp_{strategy}"), |b| {
            b.iter_batched(
                || {
                    let mut rng = mesorasi_pointcloud::seeded_rng(0);
                    PointNetPP::classification_small(4, &mut rng)
                },
                |mut net| {
                    overfit_single_cloud(&mut net, &cloud, 1, strategy, 1, 1e-3);
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    let _ = TrainConfig::default();
    g.finish();
}

criterion_group!(
    benches,
    bench_motivation_figures,
    bench_evaluation_figures,
    bench_fig16_training_step
);
criterion_main!(benches);
