//! Shape/stride invariants of [`Matrix`] and deterministic edge cases of
//! the `group` reduction kernels the aggregation executors are built on.
//!
//! The module-level unit tests cover the happy paths; this suite pins down
//! the layout contract (row-major, stride = cols) that `gather_rows`'
//! `copy_from_slice` and the NPU cost model's `size_bytes` both rely on,
//! plus the degenerate group shapes (k = 1, single group, repeated indices)
//! the randomized proptest inputs rarely produce.

use mesorasi_tensor::{group, ops, Matrix};

// ---------------------------------------------------------------- layout --

#[test]
fn row_major_layout_row_r_starts_at_r_times_cols() {
    let m = Matrix::from_fn(5, 3, |r, c| (r * 10 + c) as f32);
    assert_eq!(m.shape(), (5, 3));
    assert_eq!(m.len(), 15);
    for r in 0..5 {
        assert_eq!(m.row(r), &m.as_slice()[r * 3..(r + 1) * 3], "row {r} stride");
        for c in 0..3 {
            assert_eq!(m[(r, c)], (r * 10 + c) as f32);
            assert_eq!(m[(r, c)], m.as_slice()[r * 3 + c], "index (r,c) = data[r*cols+c]");
        }
    }
}

#[test]
fn from_vec_round_trips_through_into_vec() {
    let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
    let m = Matrix::from_vec(3, 4, data.clone());
    assert_eq!(m.shape(), (3, 4));
    assert_eq!(m.into_vec(), data);
}

#[test]
#[should_panic(expected = "rows × cols")]
fn from_vec_rejects_wrong_length() {
    let _ = Matrix::from_vec(3, 4, vec![0.0; 11]);
}

#[test]
#[should_panic(expected = "same length")]
fn from_rows_rejects_ragged_rows() {
    let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
}

#[test]
fn row_mut_writes_land_at_the_right_stride() {
    let mut m = Matrix::zeros(4, 3);
    m.row_mut(2).copy_from_slice(&[7.0, 8.0, 9.0]);
    assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 7.0, 8.0, 9.0, 0.0, 0.0, 0.0]);
}

#[test]
fn transpose_swaps_shape_and_is_an_involution() {
    let m = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
    let t = m.transposed();
    assert_eq!(t.shape(), (5, 3));
    for r in 0..3 {
        for c in 0..5 {
            assert_eq!(m[(r, c)], t[(c, r)]);
        }
    }
    assert_eq!(t.transposed(), m);
}

#[test]
fn stacking_preserves_row_major_layout() {
    let a = Matrix::from_rows(&[&[1.0, 2.0]]);
    let b = Matrix::from_rows(&[&[3.0, 4.0]]);
    let v = a.vstack(&b);
    assert_eq!(v.shape(), (2, 2));
    assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    let h = a.hstack(&b);
    assert_eq!(h.shape(), (1, 4));
    assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn empty_matrices_have_consistent_shape_metadata() {
    for m in [Matrix::zeros(0, 0), Matrix::zeros(0, 5), Matrix::zeros(5, 0)] {
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.size_bytes(), 0);
        assert_eq!(m.len(), m.rows() * m.cols());
    }
}

#[test]
fn size_bytes_matches_f32_element_count() {
    let m = Matrix::zeros(7, 9);
    assert_eq!(m.size_bytes(), 7 * 9 * 4);
}

#[test]
fn identity_from_fn_and_map_agree_on_layout() {
    let i3 = Matrix::identity(3);
    let built = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
    assert_eq!(i3, built);
    let doubled = i3.map(|x| 2.0 * x);
    assert_eq!(doubled.shape(), (3, 3));
    assert_eq!(doubled[(1, 1)], 2.0);
    assert_eq!(doubled[(0, 1)], 0.0);
}

// ----------------------------------------------------- group reductions --

#[test]
fn gather_of_empty_index_list_is_zero_by_cols() {
    let src = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
    let out = group::gather_rows(&src, &[]);
    assert_eq!(out.shape(), (0, 3));
}

#[test]
fn group_max_reduce_with_k_one_is_identity_with_self_argmax() {
    let m = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32 - 4.0);
    let (out, arg) = group::group_max_reduce(&m, 1);
    assert_eq!(out, m);
    // Every output element's winner is its own row.
    let expect: Vec<usize> = (0..5).flat_map(|r| [r, r]).collect();
    assert_eq!(arg, expect);
}

#[test]
fn group_max_reduce_single_group_matches_column_max() {
    let m = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 8.0], &[4.0, 0.0]]);
    let (out, arg) = group::group_max_reduce(&m, 3);
    assert_eq!(out, Matrix::from_rows(&[&[4.0, 8.0]]));
    assert_eq!(arg, vec![2, 1]);
}

#[test]
fn gather_max_reduce_handles_repeated_indices_in_a_group() {
    // A NIT entry padded with a repeated index (ball-query padding) must
    // reduce as if the row appeared once.
    let src = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 4.0], &[9.0, 0.0]]);
    let (out, arg) = group::gather_max_reduce(&src, &[1, 1, 1, 0], 4);
    assert_eq!(out, Matrix::from_rows(&[&[2.0, 5.0]]));
    assert_eq!(arg, vec![1, 0]);
}

#[test]
fn subtract_centroid_with_k_one_subtracts_rowwise() {
    let grouped = Matrix::from_rows(&[&[5.0, 5.0], &[7.0, 7.0]]);
    let centroids = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    let out = group::subtract_centroid_per_group(&grouped, &centroids, 1);
    assert_eq!(out, Matrix::from_rows(&[&[4.0, 3.0], &[4.0, 3.0]]));
}

#[test]
#[should_panic(expected = "multiple of k")]
fn group_max_reduce_rejects_partial_groups() {
    let m = Matrix::zeros(5, 2);
    let _ = group::group_max_reduce(&m, 2);
}

#[test]
fn max_reduce_backward_accumulates_across_groups() {
    // Two groups whose winners are the same source row: gradients add.
    let mut acc = Matrix::zeros(3, 1);
    let arg = vec![2usize, 2];
    let grad = Matrix::from_rows(&[&[1.5], &[2.5]]);
    group::max_reduce_backward(&mut acc, &arg, &grad);
    assert_eq!(acc, Matrix::from_rows(&[&[0.0], &[0.0], &[4.0]]));
}

#[test]
fn delayed_aggregation_identity_on_a_padded_group() {
    // max-then-subtract == subtract-then-max even when the group repeats
    // rows — the exactness claim Ltd-Mesorasi relies on (paper §IV-A).
    let pft = Matrix::from_fn(6, 3, |r, c| ((r * 13 + c * 5) % 7) as f32 - 3.0);
    let group_idx = [4usize, 4, 2, 0]; // padded entry
    let centroid_rows = group::gather_rows(&pft, &[3]);
    let gathered = group::gather_rows(&pft, &group_idx);
    let offsets = group::subtract_centroid_per_group(&gathered, &centroid_rows, group_idx.len());
    let (subtract_then_max, _) = group::group_max_reduce(&offsets, group_idx.len());
    let (reduced, _) = group::gather_max_reduce(&pft, &group_idx, group_idx.len());
    let max_then_subtract = ops::sub(&reduced, &centroid_rows);
    assert_eq!(subtract_then_max, max_then_subtract);
}
