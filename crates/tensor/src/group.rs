//! Irregular kernels: gather, grouped reduction, scatter.
//!
//! These implement the aggregation (`A`) and reduction steps of a
//! point-cloud module. Both execution strategies use them:
//!
//! * the original formulation gathers *input* rows per neighborhood,
//!   subtracts the centroid row, runs the MLP, then max-reduces;
//! * the delayed formulation max-reduces gathered rows of the *Point
//!   Feature Table* and subtracts the centroid's feature row afterwards
//!   (`max(p1−pi, p2−pi) = max(p1,p2) − pi`, paper §IV-A).
//!
//! The reduce kernels also return argmax indices so the training substrate
//! can route gradients through the max (only the winning row receives
//! gradient).

use crate::Matrix;
use mesorasi_par as par;

/// Gathers `indices.len()` rows of `src` into a new matrix (row `i` of the
/// result is `src.row(indices[i])`). Indices may repeat — this *is* the
/// irregular gather whose memory behaviour the Aggregation Unit accelerates.
/// Parallel over output rows (each row is one contiguous copy).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows(src: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gather_rows_into(src, indices, &mut out);
    out
}

/// [`gather_rows`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows_into(src: &Matrix, indices: &[usize], out: &mut Matrix) {
    let cols = src.cols();
    out.reset_shape(indices.len(), cols);
    if cols == 0 {
        for &i in indices {
            assert!(i < src.rows(), "gather index {i} out of bounds for {} rows", src.rows());
        }
        return;
    }
    let row_chunk = par::chunk_len(indices.len(), cols);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * cols, |ci, chunk| {
        for (ri, out_row) in chunk.chunks_mut(cols).enumerate() {
            let i = indices[ci * row_chunk + ri];
            assert!(i < src.rows(), "gather index {i} out of bounds for {} rows", src.rows());
            out_row.copy_from_slice(src.row(i));
        }
    });
}

/// Adds each row of `grad` into row `indices[i]` of `acc` — the transpose
/// (backward pass) of [`gather_rows`].
///
/// # Panics
///
/// Panics if shapes disagree or any index is out of bounds.
pub fn scatter_add_rows(acc: &mut Matrix, indices: &[usize], grad: &Matrix) {
    assert_eq!(indices.len(), grad.rows(), "one gradient row per index");
    assert_eq!(acc.cols(), grad.cols(), "column widths must match");
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < acc.rows(), "scatter index {i} out of bounds for {} rows", acc.rows());
        for (a, &g) in acc.row_mut(i).iter_mut().zip(grad.row(r)) {
            *a += g;
        }
    }
}

/// Subtracts `centroid_rows.row(i / k)` from each row `i` of `grouped` —
/// the aggregation normalization `p_k − p_i` applied to a gathered
/// `(N_out·K) × M` matrix with `k` consecutive rows per group.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn subtract_centroid_per_group(grouped: &Matrix, centroid_rows: &Matrix, k: usize) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    subtract_centroid_per_group_into(grouped, centroid_rows, k, &mut out);
    out
}

/// [`subtract_centroid_per_group`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn subtract_centroid_per_group_into(
    grouped: &Matrix,
    centroid_rows: &Matrix,
    k: usize,
    out: &mut Matrix,
) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(grouped.rows() % k, 0, "grouped rows must be a multiple of k");
    assert_eq!(grouped.rows() / k, centroid_rows.rows(), "one centroid per group");
    assert_eq!(grouped.cols(), centroid_rows.cols(), "widths must match");
    out.reset_shape(grouped.rows(), grouped.cols());
    let cols = grouped.cols();
    if cols == 0 {
        return;
    }
    out.as_mut_slice().copy_from_slice(grouped.as_slice());
    let group_chunk = par::chunk_len(centroid_rows.rows(), k * cols);
    par::par_chunks_mut(out.as_mut_slice(), group_chunk * k * cols, |ci, chunk| {
        for (gi, group) in chunk.chunks_mut(k * cols).enumerate() {
            let c = centroid_rows.row(ci * group_chunk + gi);
            for row in group.chunks_mut(cols) {
                for (o, &cv) in row.iter_mut().zip(c) {
                    *o -= cv;
                }
            }
        }
    });
}

/// Column-wise max over each group of `k` consecutive rows, producing a
/// `(rows/k) × cols` matrix plus, per output element, the index of the
/// winning input row (for gradient routing).
///
/// # Panics
///
/// Panics if `rows` is not a multiple of `k` or `k == 0`.
pub fn group_max_reduce(grouped: &Matrix, k: usize) -> (Matrix, Vec<usize>) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(grouped.rows() % k, 0, "rows must be a multiple of k");
    let n_out = grouped.rows() / k;
    let cols = grouped.cols();
    let mut out = Matrix::zeros(n_out, cols);
    let mut arg = vec![0usize; n_out * cols];
    if cols == 0 {
        return (out, arg);
    }
    // Parallel over whole groups: each group's max scan stays on one
    // thread, preserving the sequential comparison order exactly.
    let group_chunk = par::chunk_len(n_out, k * cols);
    let stride = group_chunk * cols;
    par::par_chunks_mut_pair(out.as_mut_slice(), &mut arg, stride, stride, |ci, vals, args| {
        for (gi, (out_row, arg_row)) in vals.chunks_mut(cols).zip(args.chunks_mut(cols)).enumerate()
        {
            let first = (ci * group_chunk + gi) * k;
            out_row.copy_from_slice(grouped.row(first));
            arg_row.fill(first);
            for r in first + 1..first + k {
                for ((&v, o), a) in grouped.row(r).iter().zip(out_row.iter_mut()).zip(&mut *arg_row)
                {
                    if v > *o {
                        *o = v;
                        *a = r;
                    }
                }
            }
        }
    });
    (out, arg)
}

/// Values-only [`group_max_reduce`] writing into a caller-owned buffer —
/// the inference-plan variant, which needs no argmax because no gradient
/// will ever be routed back. Comparison order matches `group_max_reduce`
/// exactly, so the values are bit-identical.
///
/// # Panics
///
/// Panics if `rows` is not a multiple of `k` or `k == 0`.
pub fn group_max_into(grouped: &Matrix, k: usize, out: &mut Matrix) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(grouped.rows() % k, 0, "rows must be a multiple of k");
    let n_out = grouped.rows() / k;
    let cols = grouped.cols();
    out.reset_shape(n_out, cols);
    if cols == 0 {
        return;
    }
    let group_chunk = par::chunk_len(n_out, k * cols);
    par::par_chunks_mut(out.as_mut_slice(), group_chunk * cols, |ci, vals| {
        for (gi, out_row) in vals.chunks_mut(cols).enumerate() {
            let first = (ci * group_chunk + gi) * k;
            out_row.copy_from_slice(grouped.row(first));
            for r in first + 1..first + k {
                for (&v, o) in grouped.row(r).iter().zip(out_row.iter_mut()) {
                    if v > *o {
                        *o = v;
                    }
                }
            }
        }
    });
}

/// Like [`group_max_reduce`] but the groups are given as explicit row-index
/// lists into `src` (the delayed-aggregation path: groups are NIT entries
/// indexing the Point Feature Table, no gathered intermediate needed).
///
/// `groups` is a flattened `n_groups × k` index matrix. Returns the reduced
/// `n_groups × cols` matrix and, per output element, the *source row in
/// `src`* that won the max.
///
/// # Panics
///
/// Panics if `groups.len()` is not a multiple of `k`, `k == 0`, or an index
/// is out of bounds.
pub fn gather_max_reduce(src: &Matrix, groups: &[usize], k: usize) -> (Matrix, Vec<usize>) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(groups.len() % k, 0, "groups must be a multiple of k");
    let n_out = groups.len() / k;
    let cols = src.cols();
    let mut out = Matrix::zeros(n_out, cols);
    let mut arg = vec![0usize; n_out * cols];
    if cols == 0 {
        for &i in groups {
            assert!(i < src.rows(), "group index {i} out of bounds");
        }
        return (out, arg);
    }
    let group_chunk = par::chunk_len(n_out, k * cols);
    let stride = group_chunk * cols;
    par::par_chunks_mut_pair(out.as_mut_slice(), &mut arg, stride, stride, |ci, vals, args| {
        for (gi, (out_row, arg_row)) in vals.chunks_mut(cols).zip(args.chunks_mut(cols)).enumerate()
        {
            let g = ci * group_chunk + gi;
            let entry = &groups[g * k..(g + 1) * k];
            let first = entry[0];
            assert!(first < src.rows(), "group index {first} out of bounds");
            out_row.copy_from_slice(src.row(first));
            arg_row.fill(first);
            for &i in &entry[1..] {
                assert!(i < src.rows(), "group index {i} out of bounds");
                for ((&v, o), a) in src.row(i).iter().zip(out_row.iter_mut()).zip(&mut *arg_row) {
                    if v > *o {
                        *o = v;
                        *a = i;
                    }
                }
            }
        }
    });
    (out, arg)
}

/// Values-only [`gather_max_reduce`] writing into a caller-owned buffer
/// (see [`group_max_into`] for why no argmax is tracked). Bit-identical to
/// the argmax-tracking variant's values.
///
/// # Panics
///
/// Panics if `groups.len()` is not a multiple of `k`, `k == 0`, or an index
/// is out of bounds.
pub fn gather_max_into(src: &Matrix, groups: &[usize], k: usize, out: &mut Matrix) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(groups.len() % k, 0, "groups must be a multiple of k");
    let n_out = groups.len() / k;
    let cols = src.cols();
    out.reset_shape(n_out, cols);
    if cols == 0 {
        for &i in groups {
            assert!(i < src.rows(), "group index {i} out of bounds");
        }
        return;
    }
    let group_chunk = par::chunk_len(n_out, k * cols);
    par::par_chunks_mut(out.as_mut_slice(), group_chunk * cols, |ci, vals| {
        for (gi, out_row) in vals.chunks_mut(cols).enumerate() {
            let g = ci * group_chunk + gi;
            let entry = &groups[g * k..(g + 1) * k];
            let first = entry[0];
            assert!(first < src.rows(), "group index {first} out of bounds");
            out_row.copy_from_slice(src.row(first));
            for &i in &entry[1..] {
                assert!(i < src.rows(), "group index {i} out of bounds");
                for (&v, o) in src.row(i).iter().zip(out_row.iter_mut()) {
                    if v > *o {
                        *o = v;
                    }
                }
            }
        }
    });
}

/// Weighted row interpolation `out[g] = Σ_j weights[g·k+j] ·
/// x[indices[g·k+j]]` — the 3-NN feature-propagation stencil (PointNet++'s
/// `three_interpolate`). Shared by the autograd tape and the planned
/// executor so both produce bit-identical values.
///
/// # Panics
///
/// Panics when `indices.len() != weights.len()`, the length is not a
/// multiple of `k`, or an index is out of bounds.
pub fn weighted_gather(src: &Matrix, indices: &[usize], weights: &[f32], k: usize) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    weighted_gather_into(src, indices, weights, k, &mut out);
    out
}

/// [`weighted_gather`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics on the same inconsistencies as [`weighted_gather`].
pub fn weighted_gather_into(
    src: &Matrix,
    indices: &[usize],
    weights: &[f32],
    k: usize,
    out: &mut Matrix,
) {
    assert_eq!(indices.len(), weights.len(), "one weight per index");
    assert!(k > 0 && indices.len().is_multiple_of(k), "indices must be n × k");
    let n_out = indices.len() / k;
    out.reset_shape(n_out, src.cols());
    out.as_mut_slice().fill(0.0);
    for g in 0..n_out {
        for j in 0..k {
            let w = weights[g * k + j];
            let row = src.row(indices[g * k + j]);
            for (o, &v) in out.row_mut(g).iter_mut().zip(row) {
                *o += w * v;
            }
        }
    }
}

/// Routes gradients back through a max reduction: for every output element
/// `(g, c)`, adds `grad[(g, c)]` to `acc[(arg[g*cols+c], c)]`.
///
/// # Panics
///
/// Panics if `arg.len() != grad.len()` or widths disagree.
pub fn max_reduce_backward(acc: &mut Matrix, arg: &[usize], grad: &Matrix) {
    assert_eq!(arg.len(), grad.len(), "one argmax per gradient element");
    assert_eq!(acc.cols(), grad.cols(), "widths must match");
    let cols = grad.cols();
    for g in 0..grad.rows() {
        for c in 0..cols {
            let src_row = arg[g * cols + c];
            acc[(src_row, c)] += grad[(g, c)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_copies_rows_with_repeats() {
        let src = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let out = gather_rows(&src, &[2, 0, 2]);
        assert_eq!(out, Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_out_of_bounds_panics() {
        let src = Matrix::zeros(2, 2);
        let _ = gather_rows(&src, &[2]);
    }

    #[test]
    fn scatter_is_gather_transpose() {
        // For any y = gather(x, idx): scatter_add(ones_like(y)) accumulates
        // occurrence counts, i.e. gatherᵀ · 1.
        let mut acc = Matrix::zeros(3, 2);
        let grad = Matrix::full(4, 2, 1.0);
        scatter_add_rows(&mut acc, &[0, 2, 2, 2], &grad);
        assert_eq!(acc, Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0], &[3.0, 3.0]]));
    }

    #[test]
    fn subtract_centroid_per_group_known() {
        let grouped = Matrix::from_rows(&[&[1.0], &[2.0], &[10.0], &[20.0]]);
        let centroids = Matrix::from_rows(&[&[1.0], &[10.0]]);
        let out = subtract_centroid_per_group(&grouped, &centroids, 2);
        assert_eq!(out, Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[10.0]]));
    }

    #[test]
    fn group_max_reduce_tracks_argmax() {
        let grouped = Matrix::from_rows(&[
            &[1.0, 9.0],
            &[5.0, 2.0], // group 0: max = [5, 9], arg rows = [1, 0]
            &[0.0, 0.0],
            &[-1.0, 3.0], // group 1: max = [0, 3], arg rows = [2, 3]
        ]);
        let (out, arg) = group_max_reduce(&grouped, 2);
        assert_eq!(out, Matrix::from_rows(&[&[5.0, 9.0], &[0.0, 3.0]]));
        assert_eq!(arg, vec![1, 0, 2, 3]);
    }

    #[test]
    fn gather_max_reduce_equals_gather_then_reduce() {
        let src = Matrix::from_fn(6, 3, |r, c| ((r * 7 + c * 13) % 9) as f32);
        let groups = [0usize, 3, 5, 1, 1, 4];
        let k = 3;
        let (a, _) = gather_max_reduce(&src, &groups, k);
        let (b, _) = group_max_reduce(&gather_rows(&src, &groups), k);
        assert_eq!(a, b);
    }

    #[test]
    fn gather_max_arg_points_into_src() {
        let src = Matrix::from_rows(&[&[0.0], &[5.0], &[3.0]]);
        let (out, arg) = gather_max_reduce(&src, &[0, 1, 2], 3);
        assert_eq!(out, Matrix::from_rows(&[&[5.0]]));
        assert_eq!(arg, vec![1]); // row 1 of src won
    }

    #[test]
    fn max_backward_routes_to_winner_only() {
        let mut acc = Matrix::zeros(3, 2);
        // one group, winners: col0 → row 1, col1 → row 2
        let arg = vec![1usize, 2];
        let grad = Matrix::from_rows(&[&[10.0, 20.0]]);
        max_reduce_backward(&mut acc, &arg, &grad);
        assert_eq!(acc, Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 0.0], &[0.0, 20.0]]));
    }

    #[test]
    fn max_before_subtract_identity() {
        // max(p1−pi, ..., pk−pi) == max(p1, ..., pk) − pi  (paper §IV-A).
        let pft = Matrix::from_fn(8, 4, |r, c| ((r * 31 + c * 17) % 11) as f32 - 5.0);
        let centroid = 3usize;
        let group = [0usize, 2, 5, 7];
        // subtract-then-max
        let gathered = gather_rows(&pft, &group);
        let centroid_rows = gather_rows(&pft, &[centroid]);
        let offsets = subtract_centroid_per_group(&gathered, &centroid_rows, group.len());
        let (a, _) = group_max_reduce(&offsets, group.len());
        // max-then-subtract
        let (reduced, _) = gather_max_reduce(&pft, &group, group.len());
        let b = crate::ops::sub(&reduced, &centroid_rows);
        assert_eq!(a, b);
    }
}
