//! The [`Matrix64`] storage type of the f64 shadow-precision tier.

use crate::Matrix;

/// A dense row-major `f64` matrix — the storage of the shadow-precision
/// execution tier.
///
/// Deliberately a separate type rather than a generic `Matrix<T>`: the
/// whole workspace speaks [`Matrix`] (`f32`), and the f64 tier exists only
/// inside the planned executor's shadow replay, so the narrow API here is
/// exactly what the [`crate::ops64`] kernels and the engine's conversion
/// boundaries need.
#[derive(Clone, PartialEq)]
pub struct Matrix64 {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix64 {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix64 {
        Matrix64 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `0 × 0` matrix whose backing store can hold `elems` elements
    /// without reallocating — the initial state of a shadow-arena slot.
    pub fn with_capacity(elems: usize) -> Matrix64 {
        Matrix64 { rows: 0, cols: 0, data: Vec::with_capacity(elems) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of `f64` elements the backing allocation can hold without
    /// growing.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes in place to `rows × cols`, keeping the backing allocation
    /// (element values unspecified afterwards; never shrinks capacity) —
    /// mirrors [`Matrix::reset_shape`].
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Overwrites this matrix with the widened contents of the `f32`
    /// matrix `src`, reusing the backing allocation — the engine's
    /// f32 → f64 conversion boundary (inputs, constants).
    pub fn copy_widened(&mut self, src: &Matrix) {
        self.reset_shape(src.rows(), src.cols());
        for (o, &v) in self.data.iter_mut().zip(src.as_slice()) {
            *o = f64::from(v);
        }
    }

    /// A new `Matrix64` widened from `src` — `copy_widened` without a
    /// reusable destination (plan-compile-time conversions).
    pub fn widened(src: &Matrix) -> Matrix64 {
        let mut out = Matrix64::zeros(0, 0);
        out.copy_widened(src);
        out
    }

    /// Rounds this matrix into the `f32` matrix `dst`, reusing its backing
    /// allocation — the engine's f64 → f32 output boundary (one rounding
    /// per element, IEEE round-to-nearest).
    pub fn round_into(&self, dst: &mut Matrix) {
        dst.reset_shape(self.rows, self.cols);
        for (o, &v) in dst.as_mut_slice().iter_mut().zip(&self.data) {
            *o = v as f32;
        }
    }

    /// Horizontal concatenation into a caller-owned buffer — mirrors
    /// [`Matrix::hstack_into`].
    ///
    /// # Panics
    ///
    /// Panics when row counts differ.
    pub fn hstack_into(&self, other: &Matrix64, out: &mut Matrix64) {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        out.reset_shape(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }
}

impl Default for Matrix64 {
    /// The empty `0 × 0` matrix (no allocation) — lets shadow-arena slots
    /// be `std::mem::take`n during execution.
    fn default() -> Matrix64 {
        Matrix64::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix64 {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix64 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix64 {}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_round_trips_f32_values_exactly() {
        // Every f32 is exactly representable in f64, so widen → round is
        // the identity.
        let src = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.7).sin());
        let wide = Matrix64::widened(&src);
        let mut back = Matrix::zeros(0, 0);
        wide.round_into(&mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn reset_shape_keeps_capacity() {
        let mut m = Matrix64::zeros(8, 8);
        let cap = m.capacity();
        m.reset_shape(2, 2);
        m.reset_shape(8, 8);
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn hstack_concatenates_rows() {
        let a = Matrix64::widened(&Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix64::widened(&Matrix::from_rows(&[&[3.0]]));
        let mut out = Matrix64::zeros(0, 0);
        a.hstack_into(&b, &mut out);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
    }
}
