//! Vectorized micro-kernels — the workspace's only `unsafe` island.
//!
//! Two primitive families power the matmul tier in [`crate::ops`]:
//!
//! * [`mm4`] / [`mm1`] — register-accumulator matmul blocks. A 4-row ×
//!   16-column output tile lives entirely in registers while the kernel
//!   walks `p` over the shared dimension, so the hot loop touches memory
//!   only to read `A` coefficients and stream rows of `B`; each output
//!   element is stored exactly once. Per element the products accumulate
//!   in ascending-`p` order with separate `mul` and `add` instructions,
//!   which is the whole bit-identity contract: any lane width (8-lane
//!   AVX2, auto-vectorized scalar) produces the same rounding sequence.
//! * [`mm4t`] / [`mm1t`] — the same register tiles with a *strided*
//!   coefficient walk (`a[p·stride + i0 + r]`), so `Aᵀ · B` gets the
//!   identical treatment without materializing the transpose: four
//!   adjacent columns of `A` play the role of [`mm4`]'s four rows.
//! * [`axpy`] — scalar-times-row accumulate (`y[j] += a · x[j]`), kept as
//!   a general primitive. One multiply and one add per element per call,
//!   so there is no accumulation chain inside a call for lane width to
//!   re-associate.
//!
//! FMA is deliberately never used: a fused multiply-add rounds once where
//! `mul` + `add` round twice, which would break the scalar ≡ vector
//! contract.
//!
//! Dispatch: with the `simd` cargo feature (default on), x86_64 checks for
//! AVX2 at runtime (`is_x86_feature_detected!`, cached by std) and falls
//! back to the scalar micro-kernels on machines without it; other
//! architectures (including aarch64, where the scalar blocks
//! auto-vectorize to NEON — Rust never contracts `mul` + `add` into FMA)
//! always use the scalar micro-kernels. Without the feature, only the
//! scalar micro-kernels compile — no `unsafe` remains in the crate.
//!
//! The rest of the workspace is `#![forbid(unsafe_code)]` (the crate root
//! here carries `deny` so this one module can opt back in); keep every
//! `unsafe` block inside this file.
#![allow(unsafe_code)]

/// `y[j] += a · x[j]` over the common length.
///
/// Bit-identical across the scalar and AVX2 paths (see the module docs
/// for why).
///
/// # Panics
///
/// Panics when the slice lengths differ.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    axpy_impl(a, x, y);
}

/// Four-row matmul block: `out[r][j] = Σ_p a[r][p] · b[p·n + j]` for the
/// row-major `k × n` matrix `b`, overwriting each `out[r]` completely.
///
/// This is the register-tiled heart of [`crate::ops::matmul_into`]: four
/// output rows share every load of a `B` row, and the output tile stays in
/// registers for the whole `p` walk (each element accumulates in ascending
/// `p`, one `mul` + one `add` per step — bit-identical to the naive
/// kernel on finite inputs).
///
/// # Panics
///
/// Panics when the `a` rows disagree in length, when an `out` row is not
/// exactly `n` long, or when `b` is smaller than `k × n`.
#[inline]
pub fn mm4(a: [&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
    let k = a[0].len();
    for row in &a[1..] {
        assert_eq!(row.len(), k, "mm4 A-row length mismatch");
    }
    for row in &out {
        assert_eq!(row.len(), n, "mm4 out-row length mismatch");
    }
    assert!(b.len() >= k * n, "mm4 B too small");
    mm4_impl(a, b, n, out);
}

/// Single-row matmul block: `out[j] = Σ_p a[p] · b[p·n + j]` — the row
/// tail of [`mm4`], same accumulation order and rounding contract.
///
/// # Panics
///
/// Panics when `out` is not exactly `n` long or `b` is smaller than
/// `k × n`.
#[inline]
pub fn mm1(a: &[f32], b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(out.len(), n, "mm1 out length mismatch");
    assert!(b.len() >= a.len() * n, "mm1 B too small");
    mm1_impl(a, b, n, out);
}

/// Four-row *transpose* matmul block:
/// `out[r][j] = Σ_p a[p·stride + i0 + r] · b[p·n + j]` — four adjacent
/// columns `i0..i0+4` of a row-major `k × stride` matrix `a` play the role
/// of [`mm4`]'s four `A` rows, so [`crate::ops::matmul_at_b_into`] gets
/// the same register-tiled treatment without materializing `Aᵀ`. The `B`
/// row walk, accumulation order (ascending `p`, one `mul` + one `add` per
/// step) and 4 × 16 register tile are identical to [`mm4`]; only the
/// coefficient load is strided.
///
/// # Panics
///
/// Panics when an `out` row is not exactly `n` long, when `b` is smaller
/// than `k × n`, or when columns `i0..i0+4` of the `k × stride` view of
/// `a` would read out of bounds.
#[inline]
pub fn mm4t(
    a: &[f32],
    stride: usize,
    i0: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: [&mut [f32]; 4],
) {
    for row in &out {
        assert_eq!(row.len(), n, "mm4t out-row length mismatch");
    }
    assert!(b.len() >= k * n, "mm4t B too small");
    assert!(i0 + 4 <= stride, "mm4t column block out of range");
    assert!(k == 0 || (k - 1) * stride + i0 + 4 <= a.len(), "mm4t A too small");
    mm4t_impl(a, stride, i0, k, b, n, out);
}

/// Single-column transpose matmul block:
/// `out[j] = Σ_p a[p·stride + i0] · b[p·n + j]` — the row tail of
/// [`mm4t`], same accumulation order and rounding contract.
///
/// # Panics
///
/// Panics when `out` is not exactly `n` long, when `b` is smaller than
/// `k × n`, or when column `i0` of the `k × stride` view of `a` would
/// read out of bounds.
#[inline]
pub fn mm1t(a: &[f32], stride: usize, i0: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(out.len(), n, "mm1t out length mismatch");
    assert!(b.len() >= k * n, "mm1t B too small");
    assert!(i0 < stride, "mm1t column out of range");
    assert!(k == 0 || (k - 1) * stride + i0 < a.len(), "mm1t A too small");
    mm1t_impl(a, stride, i0, k, b, n, out);
}

/// True when the vector path is compiled in *and* usable on this CPU —
/// surfaced so the bench report can label records honestly.
pub fn vector_path_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// The scalar AXPY micro-kernel: 4-wide manual unroll. Stable-Rust
/// friendly and the semantics reference for the vector path (one `mul`,
/// one `add` per element — Rust never contracts them into FMA, and the
/// vector path matches by construction).
#[inline(always)]
fn axpy_scalar(a: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let n4 = n - n % 4;
    let (x4, xt) = x.split_at(n4);
    let (y4, yt) = y.split_at_mut(n4);
    for (yc, xc) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        yc[0] += a * xc[0];
        yc[1] += a * xc[1];
        yc[2] += a * xc[2];
        yc[3] += a * xc[3];
    }
    for (yo, &xv) in yt.iter_mut().zip(xt) {
        *yo += a * xv;
    }
}

/// The scalar single-row matmul micro-kernel: 8 column accumulators held
/// in locals over the full `p` walk (auto-vectorizes on SSE2/NEON without
/// changing the per-element mul-then-add rounding sequence), stored once.
#[inline(always)]
fn mm1_scalar(a: &[f32], b: &[f32], n: usize, out: &mut [f32]) {
    let mut j = 0;
    while j + 8 <= n {
        let mut acc = [0.0f32; 8];
        for (p, &ap) in a.iter().enumerate() {
            let br = &b[p * n + j..p * n + j + 8];
            for (s, &bv) in acc.iter_mut().zip(br) {
                *s += ap * bv;
            }
        }
        out[j..j + 8].copy_from_slice(&acc);
        j += 8;
    }
    for (jj, o) in out.iter_mut().enumerate().skip(j) {
        let mut s = 0.0f32;
        for (p, &ap) in a.iter().enumerate() {
            s += ap * b[p * n + jj];
        }
        *o = s;
    }
}

#[inline(always)]
fn mm4_scalar(a: [&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
    for (ar, or) in a.into_iter().zip(out) {
        mm1_scalar(ar, b, n, or);
    }
}

/// Strided-coefficient sibling of [`mm1_scalar`]: same 8-accumulator
/// column blocks, coefficient read at `a[p·stride + i0]` instead of
/// `a[p]`.
#[inline(always)]
fn mm1t_scalar(
    a: &[f32],
    stride: usize,
    i0: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut j = 0;
    while j + 8 <= n {
        let mut acc = [0.0f32; 8];
        for p in 0..k {
            let ap = a[p * stride + i0];
            let br = &b[p * n + j..p * n + j + 8];
            for (s, &bv) in acc.iter_mut().zip(br) {
                *s += ap * bv;
            }
        }
        out[j..j + 8].copy_from_slice(&acc);
        j += 8;
    }
    for (jj, o) in out.iter_mut().enumerate().skip(j) {
        let mut s = 0.0f32;
        for p in 0..k {
            s += a[p * stride + i0] * b[p * n + jj];
        }
        *o = s;
    }
}

#[inline(always)]
fn mm4t_scalar(
    a: &[f32],
    stride: usize,
    i0: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: [&mut [f32]; 4],
) {
    for (r, or) in out.into_iter().enumerate() {
        mm1t_scalar(a, stride, i0 + r, k, b, n, or);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn axpy_impl(a: f32, x: &[f32], y: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::axpy_avx2(a, x, y) }
    } else {
        axpy_scalar(a, x, y);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn mm4_impl(a: [&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::mm4_avx2(a, b, n, out) }
    } else {
        mm4_scalar(a, b, n, out);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn mm1_impl(a: &[f32], b: &[f32], n: usize, out: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::mm1_avx2(a, b, n, out) }
    } else {
        mm1_scalar(a, b, n, out);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn mm4t_impl(
    a: &[f32],
    stride: usize,
    i0: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: [&mut [f32]; 4],
) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::mm4t_avx2(a, stride, i0, k, b, n, out) }
    } else {
        mm4t_scalar(a, stride, i0, k, b, n, out);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn mm1t_impl(a: &[f32], stride: usize, i0: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::mm1t_avx2(a, stride, i0, k, b, n, out) }
    } else {
        mm1t_scalar(a, stride, i0, k, b, n, out);
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn axpy_impl(a: f32, x: &[f32], y: &mut [f32]) {
    axpy_scalar(a, x, y);
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn mm4_impl(a: [&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
    mm4_scalar(a, b, n, out);
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn mm1_impl(a: &[f32], b: &[f32], n: usize, out: &mut [f32]) {
    mm1_scalar(a, b, n, out);
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn mm4t_impl(
    a: &[f32],
    stride: usize,
    i0: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: [&mut [f32]; 4],
) {
    mm4t_scalar(a, stride, i0, k, b, n, out);
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn mm1t_impl(a: &[f32], stride: usize, i0: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    mm1t_scalar(a, stride, i0, k, b, n, out);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(a: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let va = _mm256_set1_ps(a);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane accesses; loads and
            // stores are the unaligned variants (Vec<f32> is 4-aligned).
            unsafe {
                let vx = _mm256_loadu_ps(x.as_ptr().add(j));
                let vy = _mm256_loadu_ps(y.as_mut_ptr().add(j));
                // mul then add — never FMA — so lanes round exactly like
                // the scalar micro-kernel.
                _mm256_storeu_ps(y.as_mut_ptr().add(j), _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
            }
            j += 8;
        }
        for (yo, &xv) in y[j..].iter_mut().zip(&x[j..]) {
            *yo += a * xv;
        }
    }

    /// 4 rows × 16 columns of the output held in eight ymm accumulators
    /// for the whole `p` walk; each `B` row segment is loaded once and
    /// feeds all four output rows.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime, and the
    /// bounds checked by [`super::mm4`] must hold.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mm4_avx2(a: [&[f32]; 4], b: &[f32], n: usize, out: [&mut [f32]; 4]) {
        let k = a[0].len();
        let mut j = 0;
        while j + 16 <= n {
            // SAFETY: j + 16 <= n and b.len() >= k·n bound every access;
            // mul then add — never FMA — matches scalar rounding.
            unsafe {
                let mut acc = [[_mm256_setzero_ps(); 2]; 4];
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let vb0 = _mm256_loadu_ps(bp);
                    let vb1 = _mm256_loadu_ps(bp.add(8));
                    for r in 0..4 {
                        let va = _mm256_set1_ps(*a[r].get_unchecked(p));
                        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(va, vb0));
                        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(va, vb1));
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j), acc[r][0]);
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j + 8), acc[r][1]);
                }
            }
            j += 16;
        }
        if j + 8 <= n {
            // SAFETY: j + 8 <= n and b.len() >= k·n bound every access.
            unsafe {
                let mut acc = [_mm256_setzero_ps(); 4];
                for p in 0..k {
                    let vb = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                    for r in 0..4 {
                        let va = _mm256_set1_ps(*a[r].get_unchecked(p));
                        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(va, vb));
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j), acc[r]);
                }
            }
            j += 8;
        }
        for jj in j..n {
            for r in 0..4 {
                let mut s = 0.0f32;
                for (p, &ap) in a[r].iter().enumerate() {
                    s += ap * b[p * n + jj];
                }
                out[r][jj] = s;
            }
        }
    }

    /// Strided-coefficient sibling of [`mm4_avx2`]: the same 4 × 16
    /// register tile and `B` row walk, coefficients read down four
    /// adjacent columns of the `k × stride` matrix `a`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime, and the
    /// bounds checked by [`super::mm4t`] must hold.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mm4t_avx2(
        a: &[f32],
        stride: usize,
        i0: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: [&mut [f32]; 4],
    ) {
        let mut j = 0;
        while j + 16 <= n {
            // SAFETY: j + 16 <= n, b.len() >= k·n and the mm4t column
            // bounds cover every access; mul then add — never FMA —
            // matches scalar rounding.
            unsafe {
                let mut acc = [[_mm256_setzero_ps(); 2]; 4];
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let vb0 = _mm256_loadu_ps(bp);
                    let vb1 = _mm256_loadu_ps(bp.add(8));
                    let ap = a.as_ptr().add(p * stride + i0);
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_ps(*ap.add(r));
                        acc_r[0] = _mm256_add_ps(acc_r[0], _mm256_mul_ps(va, vb0));
                        acc_r[1] = _mm256_add_ps(acc_r[1], _mm256_mul_ps(va, vb1));
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j), acc[r][0]);
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j + 8), acc[r][1]);
                }
            }
            j += 16;
        }
        if j + 8 <= n {
            // SAFETY: j + 8 <= n plus the mm4t bounds cover every access.
            unsafe {
                let mut acc = [_mm256_setzero_ps(); 4];
                for p in 0..k {
                    let vb = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                    let ap = a.as_ptr().add(p * stride + i0);
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_ps(*ap.add(r));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(va, vb));
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(out[r].as_mut_ptr().add(j), acc[r]);
                }
            }
            j += 8;
        }
        for jj in j..n {
            for r in 0..4 {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[p * stride + i0 + r] * b[p * n + jj];
                }
                out[r][jj] = s;
            }
        }
    }

    /// One output row, 32 columns per pass in four ymm accumulators.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime, and the
    /// bounds checked by [`super::mm1`] must hold.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mm1_avx2(a: &[f32], b: &[f32], n: usize, out: &mut [f32]) {
        let k = a.len();
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n and b.len() >= k·n bound every access;
            // mul then add — never FMA — matches scalar rounding.
            unsafe {
                let mut acc: __m256 = _mm256_setzero_ps();
                for p in 0..k {
                    let va = _mm256_set1_ps(*a.get_unchecked(p));
                    let vb = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
            }
            j += 8;
        }
        for (jj, o) in out.iter_mut().enumerate().skip(j) {
            let mut s = 0.0f32;
            for (p, &ap) in a.iter().enumerate() {
                s += ap * b[p * n + jj];
            }
            *o = s;
        }
    }

    /// Strided-coefficient sibling of [`mm1_avx2`].
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime, and the
    /// bounds checked by [`super::mm1t`] must hold.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mm1t_avx2(
        a: &[f32],
        stride: usize,
        i0: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n, b.len() >= k·n and the mm1t column
            // bounds cover every access; mul then add — never FMA —
            // matches scalar rounding.
            unsafe {
                let mut acc: __m256 = _mm256_setzero_ps();
                for p in 0..k {
                    let va = _mm256_set1_ps(*a.get_unchecked(p * stride + i0));
                    let vb = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(j), acc);
            }
            j += 8;
        }
        for (jj, o) in out.iter_mut().enumerate().skip(j) {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[p * stride + i0] * b[p * n + jj];
            }
            *o = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) as f32 / 1e6).sin()
            })
            .collect()
    }

    #[test]
    fn axpy_matches_plain_loop_bitwise() {
        for n in [0, 1, 3, 4, 7, 8, 9, 16, 31, 64, 100] {
            let x = sample(n, 1);
            let mut y = sample(n, 2);
            let mut want = y.clone();
            for (w, &xv) in want.iter_mut().zip(&x) {
                *w += 0.37 * xv;
            }
            axpy(0.37, &x, &mut y);
            assert_eq!(y, want, "n = {n}");
        }
    }

    fn mm_reference(a: &[f32], b: &[f32], k: usize, n: usize) -> Vec<f32> {
        // The naive per-element chain: ascending p, one mul + one add.
        (0..n)
            .map(|j| {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[p] * b[p * n + j];
                }
                s
            })
            .collect()
    }

    #[test]
    fn mm1_matches_reference_bitwise() {
        for (k, n) in [(0, 5), (1, 1), (3, 8), (7, 16), (13, 17), (64, 40), (128, 33)] {
            let a = sample(k, 1);
            let b = sample(k * n, 2);
            let mut out = vec![f32::NAN; n];
            mm1(&a, &b, n, &mut out);
            assert_eq!(out, mm_reference(&a, &b, k, n), "k = {k}, n = {n}");
        }
    }

    #[test]
    fn mm4_matches_four_mm1_bitwise() {
        for (k, n) in [(0, 3), (2, 8), (5, 16), (9, 24), (64, 19), (100, 48)] {
            let rows: Vec<Vec<f32>> = (0..4).map(|r| sample(k, 10 + r)).collect();
            let b = sample(k * n, 99);
            let mut out =
                [vec![f32::NAN; n], vec![f32::NAN; n], vec![f32::NAN; n], vec![f32::NAN; n]];
            {
                let [o0, o1, o2, o3] = &mut out;
                mm4([&rows[0], &rows[1], &rows[2], &rows[3]], &b, n, [o0, o1, o2, o3]);
            }
            for (r, o) in out.iter().enumerate() {
                let mut want = vec![0.0f32; n];
                mm1(&rows[r], &b, n, &mut want);
                assert_eq!(o, &want, "k = {k}, n = {n}, row {r}");
            }
        }
    }

    #[test]
    fn vector_and_scalar_micro_kernels_agree_bitwise() {
        // The contract the whole crate rests on: whatever path the public
        // kernels dispatch to must equal the scalar micro-kernels
        // bit-for-bit.
        for n in [1, 7, 8, 9, 24, 129] {
            let x = sample(n, 6);
            let mut via_dispatch = sample(n, 7);
            let mut via_scalar = via_dispatch.clone();
            axpy(1.372_89, &x, &mut via_dispatch);
            axpy_scalar(1.372_89, &x, &mut via_scalar);
            assert_eq!(via_dispatch, via_scalar, "n = {n}");
        }
        for (k, n) in [(3, 7), (17, 16), (64, 31), (128, 64)] {
            let a = sample(k, 8);
            let b = sample(k * n, 9);
            let mut via_dispatch = vec![f32::NAN; n];
            let mut via_scalar = vec![f32::NAN; n];
            mm1(&a, &b, n, &mut via_dispatch);
            mm1_scalar(&a, &b, n, &mut via_scalar);
            assert_eq!(via_dispatch, via_scalar, "k = {k}, n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let x = [1.0f32; 4];
        let mut y = [0.0f32; 3];
        axpy(1.0, &x, &mut y);
    }

    fn mmt_reference(
        a: &[f32],
        stride: usize,
        i0: usize,
        k: usize,
        b: &[f32],
        n: usize,
    ) -> Vec<f32> {
        // The naive per-element chain with the strided coefficient walk.
        (0..n)
            .map(|j| {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[p * stride + i0] * b[p * n + j];
                }
                s
            })
            .collect()
    }

    #[test]
    fn mm1t_matches_reference_bitwise() {
        for (k, stride, n) in
            [(0, 4, 5), (1, 1, 1), (3, 6, 8), (7, 9, 16), (13, 13, 17), (64, 7, 40)]
        {
            let a = sample(k.max(1) * stride, 3);
            let b = sample(k * n, 4);
            for i0 in [0, stride - 1] {
                let mut out = vec![f32::NAN; n];
                mm1t(&a, stride, i0, k, &b, n, &mut out);
                assert_eq!(
                    out,
                    mmt_reference(&a, stride, i0, k, &b, n),
                    "k={k} stride={stride} i0={i0} n={n}"
                );
            }
        }
    }

    #[test]
    fn mm4t_matches_four_mm1t_bitwise() {
        for (k, stride, n) in
            [(0, 4, 3), (2, 5, 8), (5, 8, 16), (9, 11, 24), (64, 6, 19), (100, 4, 48)]
        {
            let a = sample(k.max(1) * stride, 21);
            let b = sample(k * n, 22);
            let i0 = stride - 4;
            let mut out =
                [vec![f32::NAN; n], vec![f32::NAN; n], vec![f32::NAN; n], vec![f32::NAN; n]];
            {
                let [o0, o1, o2, o3] = &mut out;
                mm4t(&a, stride, i0, k, &b, n, [o0, o1, o2, o3]);
            }
            for (r, o) in out.iter().enumerate() {
                let mut want = vec![0.0f32; n];
                mm1t(&a, stride, i0 + r, k, &b, n, &mut want);
                assert_eq!(o, &want, "k={k} stride={stride} n={n} row {r}");
            }
        }
    }

    #[test]
    fn mm1t_dispatch_and_scalar_agree_bitwise() {
        for (k, stride, n) in [(3, 5, 7), (17, 4, 16), (64, 9, 31), (128, 8, 64)] {
            let a = sample(k * stride, 31);
            let b = sample(k * n, 32);
            let mut via_dispatch = vec![f32::NAN; n];
            let mut via_scalar = vec![f32::NAN; n];
            mm1t(&a, stride, 2, k, &b, n, &mut via_dispatch);
            mm1t_scalar(&a, stride, 2, k, &b, n, &mut via_scalar);
            assert_eq!(via_dispatch, via_scalar, "k={k} stride={stride} n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "column block out of range")]
    fn mm4t_column_block_out_of_range_panics() {
        let a = [0.0f32; 12];
        let b = [0.0f32; 12];
        let mut out = [vec![0.0f32; 4], vec![0.0f32; 4], vec![0.0f32; 4], vec![0.0f32; 4]];
        let [o0, o1, o2, o3] = &mut out;
        mm4t(&a, 3, 0, 3, &b, 4, [o0, o1, o2, o3]);
    }
}
