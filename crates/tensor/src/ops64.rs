//! The f64 shadow-precision kernel set: sequential mirrors of every
//! forward op the planned executor dispatches.
//!
//! These exist for one purpose — replaying a compiled inference plan in
//! double precision so the end-task cost of f32 execution can be measured
//! and asserted (see the engine's dtype mode). Design constraints follow
//! from that purpose:
//!
//! * **deterministic and thread-invariant by construction**: every kernel
//!   is sequential, so the per-dtype bit-identity contract is trivial;
//! * **zero-alloc in steady state**: all kernels are `_into` writers over
//!   [`Matrix64`] buffers that reuse capacity, like their f32 siblings;
//! * **not a performance tier**: no vectorization, no parallelism —
//!   shadow replay doubles inference cost by design and is opt-in.
//!
//! Accumulation orders mirror the f32 reference kernels exactly (ascending
//! `p`, first-wins max scans), so an f64 value differs from its f32
//! counterpart only by rounding, never by reassociation.

use crate::Matrix64;

/// `A · B` — sequential i-k-j AXPY, ascending-`p` accumulation.
///
/// # Panics
///
/// Panics when the inner dimensions disagree.
pub fn matmul_into(a: &Matrix64, b: &Matrix64, out: &mut Matrix64) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} × {:?}", a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    out.as_mut_slice().fill(0.0);
    for i in 0..m {
        let a_row = a.row(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let start = i * n;
            for (o, &b_pj) in out.as_mut_slice()[start..start + n].iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Elementwise `a + b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn add_into(a: &Matrix64, b: &Matrix64, out: &mut Matrix64) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x + y;
    }
}

/// Elementwise `a - b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn sub_into(a: &Matrix64, b: &Matrix64, out: &mut Matrix64) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x - y;
    }
}

/// Elementwise (Hadamard) product — also serves the constant-mask multiply.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn hadamard_into(a: &Matrix64, b: &Matrix64, out: &mut Matrix64) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x * y;
    }
}

/// `a · s` for a scalar `s`.
pub fn scale_into(a: &Matrix64, s: f64, out: &mut Matrix64) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x * s;
    }
}

/// ReLU: `max(v, 0)` elementwise.
pub fn relu_into(a: &Matrix64, out: &mut Matrix64) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x.max(0.0);
    }
}

/// Adds the `1 × cols` row vector `bias` to every row of `a`.
///
/// # Panics
///
/// Panics when `bias` is not a single row of matching width.
pub fn add_bias_row_into(a: &Matrix64, bias: &Matrix64, out: &mut Matrix64) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "bias width must match");
    out.reset_shape(a.rows(), a.cols());
    for r in 0..a.rows() {
        let b = bias.row(0);
        for ((o, &x), &v) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b) {
            *o = x + v;
        }
    }
}

/// Per-column standardization with population statistics — the f64 mirror
/// of the f32 `standardize_into`, same `1e-5` variance epsilon, same
/// accumulation order. `stats` is reusable scratch (`[means…, inv_stds…]`).
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn standardize_into(a: &Matrix64, stats: &mut Vec<f64>, out: &mut Matrix64) {
    assert!(a.rows() > 0, "column stats of empty matrix");
    let (rows, cols) = a.shape();
    let n = rows as f64;
    stats.clear();
    stats.resize(2 * cols, 0.0);
    let (mean, inv) = stats.split_at_mut(cols);
    for r in 0..rows {
        for (m, &v) in mean.iter_mut().zip(a.row(r)) {
            *m += v;
        }
    }
    let s = 1.0 / n;
    for m in mean.iter_mut() {
        *m *= s;
    }
    for r in 0..rows {
        for (c, &v) in a.row(r).iter().enumerate() {
            let d = v - mean[c];
            inv[c] += d * d;
        }
    }
    for v in inv.iter_mut() {
        *v = 1.0 / (*v / n + 1e-5).sqrt();
    }
    out.reset_shape(rows, cols);
    for r in 0..rows {
        for (c, (o, &v)) in out.row_mut(r).iter_mut().zip(a.row(r)).enumerate() {
            *o = (v - mean[c]) * inv[c];
        }
    }
}

/// Gathers `indices.len()` rows of `src`.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows_into(src: &Matrix64, indices: &[usize], out: &mut Matrix64) {
    let cols = src.cols();
    out.reset_shape(indices.len(), cols);
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < src.rows(), "gather index {i} out of bounds for {} rows", src.rows());
        if cols > 0 {
            out.row_mut(r).copy_from_slice(src.row(i));
        }
    }
}

/// Subtracts `centroid_rows.row(i / k)` from each row `i` of `grouped`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn subtract_centroid_per_group_into(
    grouped: &Matrix64,
    centroid_rows: &Matrix64,
    k: usize,
    out: &mut Matrix64,
) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(grouped.rows() % k, 0, "grouped rows must be a multiple of k");
    assert_eq!(grouped.rows() / k, centroid_rows.rows(), "one centroid per group");
    assert_eq!(grouped.cols(), centroid_rows.cols(), "widths must match");
    out.reset_shape(grouped.rows(), grouped.cols());
    for r in 0..grouped.rows() {
        let c = centroid_rows.row(r / k);
        for ((o, &v), &cv) in out.row_mut(r).iter_mut().zip(grouped.row(r)).zip(c) {
            *o = v - cv;
        }
    }
}

/// Column-wise max over each group of `k` consecutive rows — first-wins
/// comparison order, matching the f32 kernel.
///
/// # Panics
///
/// Panics if `rows` is not a multiple of `k` or `k == 0`.
pub fn group_max_into(grouped: &Matrix64, k: usize, out: &mut Matrix64) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(grouped.rows() % k, 0, "rows must be a multiple of k");
    let n_out = grouped.rows() / k;
    let cols = grouped.cols();
    out.reset_shape(n_out, cols);
    if cols == 0 {
        return;
    }
    for g in 0..n_out {
        let first = g * k;
        out.row_mut(g).copy_from_slice(grouped.row(first));
        for r in first + 1..first + k {
            let row = grouped.row(r);
            for (o, &v) in out.row_mut(g).iter_mut().zip(row) {
                if v > *o {
                    *o = v;
                }
            }
        }
    }
}

/// [`group_max_into`] with the groups given as explicit row-index lists.
///
/// # Panics
///
/// Panics if `groups.len()` is not a multiple of `k`, `k == 0`, or an
/// index is out of bounds.
pub fn gather_max_into(src: &Matrix64, groups: &[usize], k: usize, out: &mut Matrix64) {
    assert!(k > 0, "group size must be positive");
    assert_eq!(groups.len() % k, 0, "groups must be a multiple of k");
    let n_out = groups.len() / k;
    let cols = src.cols();
    out.reset_shape(n_out, cols);
    if cols == 0 {
        for &i in groups {
            assert!(i < src.rows(), "group index {i} out of bounds");
        }
        return;
    }
    for g in 0..n_out {
        let entry = &groups[g * k..(g + 1) * k];
        let first = entry[0];
        assert!(first < src.rows(), "group index {first} out of bounds");
        out.row_mut(g).copy_from_slice(src.row(first));
        for &i in &entry[1..] {
            assert!(i < src.rows(), "group index {i} out of bounds");
            let row = src.row(i);
            for (o, &v) in out.row_mut(g).iter_mut().zip(row) {
                if v > *o {
                    *o = v;
                }
            }
        }
    }
}

/// Weighted row interpolation — the 3-NN feature-propagation stencil.
///
/// # Panics
///
/// Panics when `indices.len() != weights.len()`, the length is not a
/// multiple of `k`, or an index is out of bounds.
pub fn weighted_gather_into(
    src: &Matrix64,
    indices: &[usize],
    weights: &[f64],
    k: usize,
    out: &mut Matrix64,
) {
    assert_eq!(indices.len(), weights.len(), "one weight per index");
    assert!(k > 0 && indices.len().is_multiple_of(k), "indices must be n × k");
    let n_out = indices.len() / k;
    out.reset_shape(n_out, src.cols());
    out.as_mut_slice().fill(0.0);
    for g in 0..n_out {
        for j in 0..k {
            let w = weights[g * k + j];
            let row = src.row(indices[g * k + j]);
            for (o, &v) in out.row_mut(g).iter_mut().zip(row) {
                *o += w * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{group, ops, Matrix};

    fn noisy(rows: usize, cols: usize, seed: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((c as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            ((h >> 8) as f32 / 1e5).sin() * 2.0
        })
    }

    fn close(a: &Matrix64, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - f64::from(y)).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn f64_matmul_tracks_f32_closely() {
        let a = noisy(9, 17, 1);
        let b = noisy(17, 5, 2);
        let mut wide = Matrix64::zeros(0, 0);
        matmul_into(&Matrix64::widened(&a), &Matrix64::widened(&b), &mut wide);
        close(&wide, &ops::matmul(&a, &b), 1e-4);
    }

    #[test]
    fn f64_group_kernels_track_f32() {
        let src = noisy(12, 6, 3);
        let groups = [0usize, 5, 11, 2, 2, 7, 9, 1, 4];
        let src64 = Matrix64::widened(&src);

        let mut gathered = Matrix64::zeros(0, 0);
        gather_rows_into(&src64, &groups, &mut gathered);
        close(&gathered, &group::gather_rows(&src, &groups), 0.0);

        let mut maxed = Matrix64::zeros(0, 0);
        gather_max_into(&src64, &groups, 3, &mut maxed);
        let mut f32_maxed = Matrix::zeros(0, 0);
        group::gather_max_into(&src, &groups, 3, &mut f32_maxed);
        close(&maxed, &f32_maxed, 0.0);
    }

    #[test]
    fn f64_standardize_matches_f32_shape_and_scale() {
        let a = noisy(20, 4, 7);
        let mut out = Matrix64::zeros(0, 0);
        let mut scratch = Vec::new();
        standardize_into(&Matrix64::widened(&a), &mut scratch, &mut out);
        let mut f32_out = Matrix::zeros(0, 0);
        let mut f32_scratch = Vec::new();
        ops::standardize_into(&a, &mut f32_scratch, &mut f32_out);
        close(&out, &f32_out, 1e-4);
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = Matrix64::widened(&noisy(8, 8, 9));
        let b = Matrix64::widened(&noisy(8, 8, 10));
        let mut o1 = Matrix64::zeros(0, 0);
        let mut o2 = Matrix64::zeros(0, 0);
        matmul_into(&a, &b, &mut o1);
        matmul_into(&a, &b, &mut o2);
        assert_eq!(o1, o2);
    }
}
