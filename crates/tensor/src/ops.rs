//! Dense kernels: matrix products, broadcasts, activations, statistics.
//!
//! The matmul family is data-parallel over output rows via [`mesorasi_par`]:
//! every output row is produced entirely by one chunk with a fixed
//! accumulation order, so results are bit-identical at every thread count
//! (and the whole layer degrades to the plain sequential loop at an
//! effective thread count of 1 or for small shapes).
//!
//! # The fast tier and the [`naive`] reference
//!
//! The three matmul variants run through cache-blocked, register-tiled
//! micro-kernels built on [`crate::simd`] (AVX2 behind runtime detection,
//! auto-vectorizable block-accumulator scalar otherwise). The pre-tier
//! kernels are
//! preserved verbatim in [`naive`]: they are the semantics reference the
//! property tests compare against, and the `"naive"` backend the bench
//! harness records so every `BENCH_*.json` carries the measured speedup.
//!
//! Fast tier and reference are **bit-identical for finite inputs**: every
//! output element accumulates its products in ascending-`p` order in both
//! (tiling reorders only *which rows and columns* are resident in
//! registers and cache, never the per-element chain), and the vector lanes
//! perform the same one-mul-one-add per element as the scalar loop (no
//! FMA). The only textual difference is the reference's skip of zero `A`
//! elements in [`matmul_into`] and [`matmul_at_b_into`], which here adds
//! `±0.0` products instead — an IEEE-754 identity on every finite sum (a
//! running sum that starts at `+0.0` can never become `-0.0`:
//! `+0.0 + ±0.0 == +0.0` and exact cancellation rounds to `+0.0`, so
//! `x + ±0.0 == x` bitwise throughout the chain).

use crate::{simd, Matrix};
use mesorasi_par as par;

/// `A · B` for `A: m×k`, `B: k×n`, parallel over output rows.
///
/// # Panics
///
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_into(a, b, &mut out);
    out
}

/// [`matmul`] writing into a caller-owned buffer (reshaped, fully
/// overwritten; no allocation once the buffer's capacity suffices).
///
/// Register-tiled: output rows go four at a time through [`simd::mm4`],
/// which holds a 4-row × 16-column output tile in registers for the whole
/// `p` walk — each `B` row segment is loaded once per four output rows,
/// and each output element is written exactly once (the naive kernel
/// re-reads and re-writes the output row on every `p` step, which is what
/// makes it memory-bound). The column panels double as cache blocking: a
/// 16-column slice of `B` (`k × 64` bytes) stays L1-resident across the
/// `p` walk. Per output element the products still accumulate in
/// ascending-`p` order, so the result is bit-identical to
/// [`naive::matmul_into`] for finite inputs (see the module docs; the
/// reference's sparse zero-skip becomes `±0.0` additions here).
///
/// # Panics
///
/// Panics when the inner dimensions disagree.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} × {:?}", a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        let first = ci * row_chunk;
        let rows_here = chunk.len() / n;
        let mut ri = 0;
        while ri + 4 <= rows_here {
            let quad = &mut chunk[ri * n..(ri + 4) * n];
            let (r0, rest) = quad.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            simd::mm4(
                [
                    a.row(first + ri),
                    a.row(first + ri + 1),
                    a.row(first + ri + 2),
                    a.row(first + ri + 3),
                ],
                b.as_slice(),
                n,
                [r0, r1, r2, r3],
            );
            ri += 4;
        }
        while ri < rows_here {
            simd::mm1(a.row(first + ri), b.as_slice(), n, &mut chunk[ri * n..(ri + 1) * n]);
            ri += 1;
        }
    });
}

/// `Aᵀ · B` for `A: k×m`, `B: k×n` — the weight-gradient product of a
/// linear layer (`dW = Xᵀ · dY`), computed without materializing `Aᵀ`.
/// Parallel over output-row chunks.
///
/// # Panics
///
/// Panics when the row counts disagree.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_at_b_into(a, b, &mut out);
    out
}

/// [`matmul_at_b`] writing into a caller-owned buffer.
///
/// Register-tiled like [`matmul_into`]: output rows go four at a time
/// through [`simd::mm4t`], which is [`simd::mm4`] with a strided
/// coefficient walk — output row `i` is column `i` of `A`, so the
/// coefficient for step `p` sits at `a[p·m + i]` and four adjacent
/// columns share every load of a `B` row while the 4 × 16 output tile
/// stays in registers. Each output element accumulates over `p` ascending,
/// so the result is bit-identical to [`naive::matmul_at_b_into`] for
/// finite inputs: the reference's sparse zero-skip (gradients behind a
/// ReLU are mostly zeros) becomes `±0.0` additions here, an IEEE-754
/// no-op on every finite running sum (see the module docs).
///
/// # Panics
///
/// Panics when the row counts disagree.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b shape mismatch: {:?}ᵀ × {:?}",
        a.shape(),
        b.shape()
    );
    let (k, m) = a.shape();
    let n = b.cols();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        let first = ci * row_chunk;
        let rows_here = chunk.len() / n;
        let mut ri = 0;
        while ri + 4 <= rows_here {
            let quad = &mut chunk[ri * n..(ri + 4) * n];
            let (r0, rest) = quad.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            simd::mm4t(a.as_slice(), m, first + ri, k, b.as_slice(), n, [r0, r1, r2, r3]);
            ri += 4;
        }
        while ri < rows_here {
            simd::mm1t(
                a.as_slice(),
                m,
                first + ri,
                k,
                b.as_slice(),
                n,
                &mut chunk[ri * n..(ri + 1) * n],
            );
            ri += 1;
        }
    });
}

/// `A · Bᵀ` for `A: m×k`, `B: n×k` — the input-gradient product of a linear
/// layer (`dX = dY · Wᵀ`), computed without materializing `Bᵀ`.
///
/// # Panics
///
/// Panics when the column counts disagree.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_a_bt_into(a, b, &mut out);
    out
}

/// [`matmul_a_bt`] writing into a caller-owned buffer.
///
/// Register-tiled over 4 × 4 *output blocks*: sixteen scalar accumulators
/// live in registers while the block walks `p`, so each load of an
/// `A`-row element feeds four dot products and each load of a `B`-row
/// element feeds the other four — 8 loads per 16 multiply-adds, versus
/// 5 per 4 in a plain column-unrolled row loop, with enough independent
/// FP-add chains to hide the add latency. Every element still keeps a
/// single accumulator walked in ascending `p`, which is why this kernel
/// has **no AVX2 lane-split path**: a dot product's accumulation chain is
/// sequential over `p`, and splitting it across vector lanes would
/// re-associate the sum and break bit-identity with
/// [`naive::matmul_a_bt_into`] (the tiling here reorders only which rows
/// and columns are register-resident, never any per-element chain).
///
/// # Panics
///
/// Panics when the column counts disagree.
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt shape mismatch: {:?} × {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        let first = ci * row_chunk;
        let rows_here = chunk.len() / n;
        let mut ri = 0;
        while ri + 4 <= rows_here {
            let quad = &mut chunk[ri * n..(ri + 4) * n];
            let (r0, rest) = quad.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let a_rows = [
                a.row(first + ri),
                a.row(first + ri + 1),
                a.row(first + ri + 2),
                a.row(first + ri + 3),
            ];
            dot_rows_bt(a_rows, b, [r0, r1, r2, r3]);
            ri += 4;
        }
        while ri < rows_here {
            dot_row_bt(a.row(first + ri), b, &mut chunk[ri * n..(ri + 1) * n]);
            ri += 1;
        }
    });
}

/// The 4 × 4 output block of [`matmul_a_bt_into`]: `out[r][j+c]` holds the
/// dot product of `a_rows[r]` with `B` row `j+c`, all sixteen accumulated
/// together in ascending `p`.
fn dot_rows_bt(a_rows: [&[f32]; 4], b: &Matrix, mut out: [&mut [f32]; 4]) {
    let n = b.rows();
    let k = a_rows[0].len();
    let n4 = n - n % 4;
    let mut j = 0;
    while j < n4 {
        let bq = [b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3)];
        let mut acc = [[0.0f32; 4]; 4];
        for p in 0..k {
            let xs = [a_rows[0][p], a_rows[1][p], a_rows[2][p], a_rows[3][p]];
            let ys = [bq[0][p], bq[1][p], bq[2][p], bq[3][p]];
            for (acc_r, &x) in acc.iter_mut().zip(&xs) {
                for (s, &y) in acc_r.iter_mut().zip(&ys) {
                    *s += x * y;
                }
            }
        }
        for (or, acc_r) in out.iter_mut().zip(&acc) {
            or[j..j + 4].copy_from_slice(acc_r);
        }
        j += 4;
    }
    for jj in n4..n {
        let b_row = b.row(jj);
        let mut acc = [0.0f32; 4];
        for (p, &y) in b_row.iter().enumerate() {
            for (s, ar) in acc.iter_mut().zip(&a_rows) {
                *s += ar[p] * y;
            }
        }
        for (or, &s) in out.iter_mut().zip(&acc) {
            or[jj] = s;
        }
    }
}

/// The row tail of [`matmul_a_bt_into`]: one output row, four independent
/// column dot products sharing each `A`-row load, each walked in
/// ascending `p`.
fn dot_row_bt(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    let n = b.rows();
    let k = a_row.len();
    let n4 = n - n % 4;
    let mut j = 0;
    while j < n4 {
        let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for p in 0..k {
            let x = a_row[p];
            s0 += x * b0[p];
            s1 += x * b1[p];
            s2 += x * b2[p];
            s3 += x * b3[p];
        }
        out_row[j] = s0;
        out_row[j + 1] = s1;
        out_row[j + 2] = s2;
        out_row[j + 3] = s3;
        j += 4;
    }
    for (j, o) in out_row.iter_mut().enumerate().skip(n4) {
        let b_row = b.row(j);
        let mut acc = 0.0;
        for (&x, &y) in a_row.iter().zip(b_row) {
            acc += x * y;
        }
        *o = acc;
    }
}

/// Elementwise `a + b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    add_into(a, b, &mut out);
    out
}

/// [`add`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x + y;
    }
}

/// Elementwise `a - b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    sub_into(a, b, &mut out);
    out
}

/// [`sub`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn sub_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x - y;
    }
}

/// Elementwise (Hadamard) product.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    hadamard_into(a, b, &mut out);
    out
}

/// [`hadamard`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn hadamard_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x * y;
    }
}

/// `a * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|v| v * s)
}

/// [`scale`] writing into a caller-owned buffer.
pub fn scale_into(a: &Matrix, s: f32, out: &mut Matrix) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x * s;
    }
}

/// Adds the `1 × cols` row vector `bias` to every row of `a` — the bias
/// broadcast of a linear layer.
///
/// # Panics
///
/// Panics when `bias` is not a single row of matching width.
pub fn add_bias_row(a: &Matrix, bias: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    add_bias_row_into(a, bias, &mut out);
    out
}

/// [`add_bias_row`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when `bias` is not a single row of matching width.
pub fn add_bias_row_into(a: &Matrix, bias: &Matrix, out: &mut Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "bias width must match");
    out.reset_shape(a.rows(), a.cols());
    let b = bias.row(0);
    for r in 0..a.rows() {
        for ((o, &x), &v) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b) {
            *o = x + v;
        }
    }
}

/// ReLU: `max(v, 0)` elementwise — the non-linearity φ whose presence makes
/// delayed-aggregation *approximate* (paper Equ. 3).
pub fn relu(a: &Matrix) -> Matrix {
    a.map(|v| v.max(0.0))
}

/// [`relu`] writing into a caller-owned buffer.
pub fn relu_into(a: &Matrix, out: &mut Matrix) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x.max(0.0);
    }
}

/// The ReLU gradient mask: 1 where `pre_activation > 0`, else 0.
pub fn relu_mask(pre_activation: &Matrix) -> Matrix {
    pre_activation.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Column-wise sum of `a` as a `1 × cols` row — the bias gradient.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, &v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
    out
}

/// Per-column mean and (population) variance — batch-normalization
/// statistics. Returns `(mean, var)` as `1 × cols` rows.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn column_stats(a: &Matrix) -> (Matrix, Matrix) {
    assert!(a.rows() > 0, "column stats of empty matrix");
    let n = a.rows() as f32;
    let mean = scale(&sum_rows(a), 1.0 / n);
    let mut var = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let d = a[(r, c)] - mean[(0, c)];
            var[(0, c)] += d * d;
        }
    }
    var.map_inplace(|v| v / n);
    (mean, var)
}

/// Per-column standardization `(x − mean) · inv_std` with population
/// statistics, `inv_std = 1/√(var + 1e-5)` — the shared forward kernel
/// behind `Graph::standardize` and the planned executor (both must produce
/// bit-identical values, so the arithmetic lives in exactly one place).
///
/// `stats` is a reusable scratch buffer; on return it holds
/// `[mean₀.. mean_{c}, inv_std₀.. inv_std_{c}]` so the autograd tape can
/// keep `inv_std` for its backward pass.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn standardize_into(a: &Matrix, stats: &mut Vec<f32>, out: &mut Matrix) {
    assert!(a.rows() > 0, "column stats of empty matrix");
    let (rows, cols) = a.shape();
    let n = rows as f32;
    stats.clear();
    stats.resize(2 * cols, 0.0);
    let (mean, inv) = stats.split_at_mut(cols);
    // Same accumulation order as `sum_rows` + `scale(_, 1/n)`.
    for r in 0..rows {
        for (m, &v) in mean.iter_mut().zip(a.row(r)) {
            *m += v;
        }
    }
    let s = 1.0 / n;
    for m in mean.iter_mut() {
        *m *= s;
    }
    // Same accumulation order (and final division) as `column_stats`' var.
    for r in 0..rows {
        for (c, &v) in a.row(r).iter().enumerate() {
            let d = v - mean[c];
            inv[c] += d * d;
        }
    }
    for v in inv.iter_mut() {
        *v = 1.0 / (*v / n + 1e-5).sqrt();
    }
    out.reset_shape(rows, cols);
    for r in 0..rows {
        for (c, (o, &v)) in out.row_mut(r).iter_mut().zip(a.row(r)).enumerate() {
            *o = (v - mean[c]) * inv[c];
        }
    }
}

/// Row-wise softmax (numerically stable).
pub fn softmax_rows(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Index of the maximum element in each row (ties: first).
pub fn argmax_rows(a: &Matrix) -> Vec<usize> {
    (0..a.rows())
        .map(|r| {
            let row = a.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Column-wise max over all rows, as a `1 × cols` row, with the arg rows —
/// the global max-pool closing PointNet-style networks.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn max_pool_columns(a: &Matrix) -> (Matrix, Vec<usize>) {
    assert!(a.rows() > 0, "max pool of empty matrix");
    let mut out = Matrix::from_vec(1, a.cols(), a.row(0).to_vec());
    let mut arg = vec![0usize; a.cols()];
    for r in 1..a.rows() {
        for (c, &v) in a.row(r).iter().enumerate() {
            if v > out[(0, c)] {
                out[(0, c)] = v;
                arg[c] = r;
            }
        }
    }
    (out, arg)
}

/// The pre-tier matmul kernels, preserved verbatim: plain i-k-j AXPY loops
/// with a sparse zero-skip, parallel over the same fixed row chunks as the
/// fast tier. They are the semantics reference the property suite compares
/// the blocked/vectorized kernels against (bit-identical for finite
/// inputs), and the `"naive"` backend of the bench harness, so every
/// committed `BENCH_*.json` carries the kernel tier's measured speedup.
pub mod naive {
    use super::par;
    use crate::Matrix;

    /// Reference `A · B` — see [`super::matmul_into`] for the fast tier.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} × {:?}", a.shape(), b.shape());
        let (m, k) = a.shape();
        let n = b.cols();
        out.reset_shape(m, n);
        if n == 0 {
            return;
        }
        out.as_mut_slice().fill(0.0);
        let row_chunk = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
            for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = a.row(ci * row_chunk + ri);
                for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = b.row(p);
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                        *o += a_ip * b_pj;
                    }
                }
            }
        });
    }

    /// Reference `Aᵀ · B` — see [`super::matmul_at_b_into`].
    ///
    /// # Panics
    ///
    /// Panics when the row counts disagree.
    pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_at_b shape mismatch: {:?}ᵀ × {:?}",
            a.shape(),
            b.shape()
        );
        let (k, m) = a.shape();
        let n = b.cols();
        out.reset_shape(m, n);
        if n == 0 {
            return;
        }
        out.as_mut_slice().fill(0.0);
        let row_chunk = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
            let first = ci * row_chunk;
            let rows_here = chunk.len() / n;
            for p in 0..k {
                let a_cols = &a.row(p)[first..first + rows_here];
                let b_row = b.row(p);
                for (ri, &a_pi) in a_cols.iter().enumerate() {
                    if a_pi == 0.0 {
                        continue;
                    }
                    let out_row = &mut chunk[ri * n..(ri + 1) * n];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                        *o += a_pi * b_pj;
                    }
                }
            }
        });
    }

    /// Reference `A · Bᵀ` — see [`super::matmul_a_bt_into`].
    ///
    /// # Panics
    ///
    /// Panics when the column counts disagree.
    pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_a_bt shape mismatch: {:?} × {:?}ᵀ",
            a.shape(),
            b.shape()
        );
        let (m, k) = a.shape();
        let n = b.rows();
        out.reset_shape(m, n);
        if n == 0 {
            return;
        }
        let row_chunk = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
            for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = a.row(ci * row_chunk + ri);
                for (j, o) in out_row.iter_mut().enumerate().take(n) {
                    let b_row = b.row(j);
                    let mut acc = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &Matrix::identity(4)), a);
        assert_eq!(matmul(&Matrix::identity(3), &a), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (r + 2 * c) as f32 * 0.25);
        assert!(approx_eq(&matmul_at_b(&a, &b), &matmul(&a.transposed(), &b), 1e-5));
        let c = Matrix::from_fn(2, 3, |r, c| (r * 7 + c) as f32);
        let d = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        assert!(approx_eq(&matmul_a_bt(&c, &d), &matmul(&c, &d.transposed()), 1e-5));
    }

    #[test]
    fn matmul_is_distributive_over_sub() {
        // The algebraic heart of delayed-aggregation: (A - B)·W = A·W - B·W.
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32 + 1.0);
        let b = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let w = Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.5);
        let lhs = matmul(&sub(&a, &b), &w);
        let rhs = sub(&matmul(&a, &w), &matmul(&b, &w));
        assert!(approx_eq(&lhs, &rhs, 1e-5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(add(&a, &b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(sub(&a, &b), Matrix::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(hadamard(&a, &b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(scale(&a, 2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    fn bias_broadcast() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = add_bias_row(&a, &b);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn relu_and_mask() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&a), Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
        assert_eq!(relu_mask(&a), Matrix::from_rows(&[&[0.0, 0.0, 1.0]]));
    }

    #[test]
    fn column_stats_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        let (mean, var) = column_stats(&a);
        assert_eq!(mean, Matrix::from_rows(&[&[2.0, 10.0]]));
        assert_eq!(var, Matrix::from_rows(&[&[1.0, 0.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-5, "large inputs stay stable");
    }

    #[test]
    fn argmax_and_max_pool() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[5.0, 2.0]]);
        assert_eq!(argmax_rows(&a), vec![1, 0]);
        let (pooled, arg) = max_pool_columns(&a);
        assert_eq!(pooled, Matrix::from_rows(&[&[5.0, 9.0]]));
        assert_eq!(arg, vec![1, 0]);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_rows(&a), Matrix::from_rows(&[&[4.0, 6.0]]));
    }

    /// Deterministic pseudo-random matrix with a configurable fraction of
    /// exact zeros (the fast tier and the reference treat zeros through
    /// different code paths — both must stay value-identical).
    fn noisy(rows: usize, cols: usize, seed: u32, zero_every: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((c as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            if zero_every > 0 && (h as usize).is_multiple_of(zero_every) {
                0.0
            } else {
                ((h >> 8) as f32 / 1e5).sin() * 3.0
            }
        })
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // Shapes straddle every block boundary: odd rows (the unpaired
        // tail), k below/at/above MATMUL_KC, n not a multiple of the
        // vector width, and degenerate edges (K=0, 1×N, empty).
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 9),
            (2, 64, 8),
            (3, 65, 17),
            (5, 0, 4),
            (0, 3, 3),
            (7, 130, 33),
            (16, 128, 128),
            (9, 200, 1),
        ] {
            for zero_every in [0, 2, 3] {
                let a = noisy(m, k, 11, zero_every);
                let b = noisy(k, n, 23, 0);
                let mut fast = Matrix::zeros(0, 0);
                let mut reference = Matrix::zeros(0, 0);
                matmul_into(&a, &b, &mut fast);
                naive::matmul_into(&a, &b, &mut reference);
                assert_eq!(fast, reference, "matmul {m}×{k}×{n} zeros 1/{zero_every}");
            }
        }
    }

    #[test]
    fn at_b_and_a_bt_are_bit_identical_to_naive() {
        // Shapes straddle the register-tile boundaries: m below/at/above a
        // quad (unpaired row tails), n across the 16- and 8-lane column
        // blocks of `mm4t`, and zero fractions that exercise the
        // reference's sparse skip against the tier's ±0.0 additions.
        for &(k, m, n) in &[
            (1usize, 1usize, 1usize),
            (7, 3, 9),
            (64, 5, 12),
            (130, 33, 2),
            (64, 9, 40),
            (30, 8, 33),
            (13, 17, 19),
        ] {
            for zero_every in [0, 2, 3] {
                let a = noisy(k, m, 31, zero_every);
                let b = noisy(k, n, 41, 0);
                let mut fast = Matrix::zeros(0, 0);
                let mut reference = Matrix::zeros(0, 0);
                matmul_at_b_into(&a, &b, &mut fast);
                naive::matmul_at_b_into(&a, &b, &mut reference);
                assert_eq!(fast, reference, "at_b {k}ᵀ{m}×{n} zeros 1/{zero_every}");
            }
        }
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 9, 7),
            (5, 12, 64),
            (33, 2, 130),
            (9, 64, 40),
            (12, 7, 35),
        ] {
            let a = noisy(m, k, 51, 0);
            let b = noisy(n, k, 61, 4);
            let mut fast = Matrix::zeros(0, 0);
            let mut reference = Matrix::zeros(0, 0);
            matmul_a_bt_into(&a, &b, &mut fast);
            naive::matmul_a_bt_into(&a, &b, &mut reference);
            assert_eq!(fast, reference, "a_bt {m}×{k}×{n}ᵀ");
        }
    }
}
