//! Dense kernels: matrix products, broadcasts, activations, statistics.
//!
//! The matmul family is data-parallel over output rows via [`mesorasi_par`]:
//! every output row is produced entirely by one chunk with a fixed
//! accumulation order, so results are bit-identical at every thread count
//! (and the whole layer degrades to the plain sequential loop at an
//! effective thread count of 1 or for small shapes).

use crate::Matrix;
use mesorasi_par as par;

/// `A · B` for `A: m×k`, `B: k×n`, parallel over output rows.
///
/// Uses the cache-friendly i-k-j loop order; the inner loop is a
/// scalar-times-row AXPY that the compiler auto-vectorizes.
///
/// # Panics
///
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_into(a, b, &mut out);
    out
}

/// [`matmul`] writing into a caller-owned buffer (reshaped, fully
/// overwritten; no allocation once the buffer's capacity suffices).
///
/// # Panics
///
/// Panics when the inner dimensions disagree.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} × {:?}", a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    out.as_mut_slice().fill(0.0);
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(ci * row_chunk + ri);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = b.row(p);
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
    });
}

/// `Aᵀ · B` for `A: k×m`, `B: k×n` — the weight-gradient product of a
/// linear layer (`dW = Xᵀ · dY`), computed without materializing `Aᵀ`.
/// Parallel over output-row chunks. Each chunk keeps the cache-friendly
/// p-outer loop restricted to its own column slice of `A`, so reads of `A`
/// and `B` stay contiguous and every output element still accumulates over
/// `p` ascending — bit-identical to the sequential formulation.
///
/// # Panics
///
/// Panics when the row counts disagree.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_at_b_into(a, b, &mut out);
    out
}

/// [`matmul_at_b`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when the row counts disagree.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b shape mismatch: {:?}ᵀ × {:?}",
        a.shape(),
        b.shape()
    );
    let (k, m) = a.shape();
    let n = b.cols();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    out.as_mut_slice().fill(0.0);
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        let first = ci * row_chunk;
        let rows_here = chunk.len() / n;
        for p in 0..k {
            let a_cols = &a.row(p)[first..first + rows_here];
            let b_row = b.row(p);
            for (ri, &a_pi) in a_cols.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut chunk[ri * n..(ri + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_pi * b_pj;
                }
            }
        }
    });
}

/// `A · Bᵀ` for `A: m×k`, `B: n×k` — the input-gradient product of a linear
/// layer (`dX = dY · Wᵀ`), computed without materializing `Bᵀ`.
///
/// # Panics
///
/// Panics when the column counts disagree.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    matmul_a_bt_into(a, b, &mut out);
    out
}

/// [`matmul_a_bt`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when the column counts disagree.
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt shape mismatch: {:?} × {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    out.reset_shape(m, n);
    if n == 0 {
        return;
    }
    let row_chunk = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out.as_mut_slice(), row_chunk * n, |ci, chunk| {
        for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(ci * row_chunk + ri);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    });
}

/// Elementwise `a + b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    add_into(a, b, &mut out);
    out
}

/// [`add`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x + y;
    }
}

/// Elementwise `a - b`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    sub_into(a, b, &mut out);
    out
}

/// [`sub`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn sub_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x - y;
    }
}

/// Elementwise (Hadamard) product.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    hadamard_into(a, b, &mut out);
    out
}

/// [`hadamard`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn hadamard_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard shape mismatch");
    out.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = x * y;
    }
}

/// `a * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|v| v * s)
}

/// [`scale`] writing into a caller-owned buffer.
pub fn scale_into(a: &Matrix, s: f32, out: &mut Matrix) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x * s;
    }
}

/// Adds the `1 × cols` row vector `bias` to every row of `a` — the bias
/// broadcast of a linear layer.
///
/// # Panics
///
/// Panics when `bias` is not a single row of matching width.
pub fn add_bias_row(a: &Matrix, bias: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    add_bias_row_into(a, bias, &mut out);
    out
}

/// [`add_bias_row`] writing into a caller-owned buffer.
///
/// # Panics
///
/// Panics when `bias` is not a single row of matching width.
pub fn add_bias_row_into(a: &Matrix, bias: &Matrix, out: &mut Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "bias width must match");
    out.reset_shape(a.rows(), a.cols());
    let b = bias.row(0);
    for r in 0..a.rows() {
        for ((o, &x), &v) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b) {
            *o = x + v;
        }
    }
}

/// ReLU: `max(v, 0)` elementwise — the non-linearity φ whose presence makes
/// delayed-aggregation *approximate* (paper Equ. 3).
pub fn relu(a: &Matrix) -> Matrix {
    a.map(|v| v.max(0.0))
}

/// [`relu`] writing into a caller-owned buffer.
pub fn relu_into(a: &Matrix, out: &mut Matrix) {
    out.reset_shape(a.rows(), a.cols());
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = x.max(0.0);
    }
}

/// The ReLU gradient mask: 1 where `pre_activation > 0`, else 0.
pub fn relu_mask(pre_activation: &Matrix) -> Matrix {
    pre_activation.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Column-wise sum of `a` as a `1 × cols` row — the bias gradient.
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, &v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
    out
}

/// Per-column mean and (population) variance — batch-normalization
/// statistics. Returns `(mean, var)` as `1 × cols` rows.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn column_stats(a: &Matrix) -> (Matrix, Matrix) {
    assert!(a.rows() > 0, "column stats of empty matrix");
    let n = a.rows() as f32;
    let mean = scale(&sum_rows(a), 1.0 / n);
    let mut var = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let d = a[(r, c)] - mean[(0, c)];
            var[(0, c)] += d * d;
        }
    }
    var.map_inplace(|v| v / n);
    (mean, var)
}

/// Per-column standardization `(x − mean) · inv_std` with population
/// statistics, `inv_std = 1/√(var + 1e-5)` — the shared forward kernel
/// behind `Graph::standardize` and the planned executor (both must produce
/// bit-identical values, so the arithmetic lives in exactly one place).
///
/// `stats` is a reusable scratch buffer; on return it holds
/// `[mean₀.. mean_{c}, inv_std₀.. inv_std_{c}]` so the autograd tape can
/// keep `inv_std` for its backward pass.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn standardize_into(a: &Matrix, stats: &mut Vec<f32>, out: &mut Matrix) {
    assert!(a.rows() > 0, "column stats of empty matrix");
    let (rows, cols) = a.shape();
    let n = rows as f32;
    stats.clear();
    stats.resize(2 * cols, 0.0);
    let (mean, inv) = stats.split_at_mut(cols);
    // Same accumulation order as `sum_rows` + `scale(_, 1/n)`.
    for r in 0..rows {
        for (m, &v) in mean.iter_mut().zip(a.row(r)) {
            *m += v;
        }
    }
    let s = 1.0 / n;
    for m in mean.iter_mut() {
        *m *= s;
    }
    // Same accumulation order (and final division) as `column_stats`' var.
    for r in 0..rows {
        for (c, &v) in a.row(r).iter().enumerate() {
            let d = v - mean[c];
            inv[c] += d * d;
        }
    }
    for v in inv.iter_mut() {
        *v = 1.0 / (*v / n + 1e-5).sqrt();
    }
    out.reset_shape(rows, cols);
    for r in 0..rows {
        for (c, (o, &v)) in out.row_mut(r).iter_mut().zip(a.row(r)).enumerate() {
            *o = (v - mean[c]) * inv[c];
        }
    }
}

/// Row-wise softmax (numerically stable).
pub fn softmax_rows(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Index of the maximum element in each row (ties: first).
pub fn argmax_rows(a: &Matrix) -> Vec<usize> {
    (0..a.rows())
        .map(|r| {
            let row = a.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Column-wise max over all rows, as a `1 × cols` row, with the arg rows —
/// the global max-pool closing PointNet-style networks.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn max_pool_columns(a: &Matrix) -> (Matrix, Vec<usize>) {
    assert!(a.rows() > 0, "max pool of empty matrix");
    let mut out = Matrix::from_vec(1, a.cols(), a.row(0).to_vec());
    let mut arg = vec![0usize; a.cols()];
    for r in 1..a.rows() {
        for (c, &v) in a.row(r).iter().enumerate() {
            if v > out[(0, c)] {
                out[(0, c)] = v;
                arg[c] = r;
            }
        }
    }
    (out, arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &Matrix::identity(4)), a);
        assert_eq!(matmul(&Matrix::identity(3), &a), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (r + 2 * c) as f32 * 0.25);
        assert!(approx_eq(&matmul_at_b(&a, &b), &matmul(&a.transposed(), &b), 1e-5));
        let c = Matrix::from_fn(2, 3, |r, c| (r * 7 + c) as f32);
        let d = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        assert!(approx_eq(&matmul_a_bt(&c, &d), &matmul(&c, &d.transposed()), 1e-5));
    }

    #[test]
    fn matmul_is_distributive_over_sub() {
        // The algebraic heart of delayed-aggregation: (A - B)·W = A·W - B·W.
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32 + 1.0);
        let b = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let w = Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.5);
        let lhs = matmul(&sub(&a, &b), &w);
        let rhs = sub(&matmul(&a, &w), &matmul(&b, &w));
        assert!(approx_eq(&lhs, &rhs, 1e-5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(add(&a, &b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(sub(&a, &b), Matrix::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(hadamard(&a, &b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(scale(&a, 2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    fn bias_broadcast() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = add_bias_row(&a, &b);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn relu_and_mask() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&a), Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
        assert_eq!(relu_mask(&a), Matrix::from_rows(&[&[0.0, 0.0, 1.0]]));
    }

    #[test]
    fn column_stats_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        let (mean, var) = column_stats(&a);
        assert_eq!(mean, Matrix::from_rows(&[&[2.0, 10.0]]));
        assert_eq!(var, Matrix::from_rows(&[&[1.0, 0.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-5, "large inputs stay stable");
    }

    #[test]
    fn argmax_and_max_pool() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[5.0, 2.0]]);
        assert_eq!(argmax_rows(&a), vec![1, 0]);
        let (pooled, arg) = max_pool_columns(&a);
        assert_eq!(pooled, Matrix::from_rows(&[&[5.0, 9.0]]));
        assert_eq!(arg, vec![1, 0]);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_rows(&a), Matrix::from_rows(&[&[4.0, 6.0]]));
    }
}
