//! Dense row-major `f32` matrices and the kernels point-cloud networks need.
//!
//! The paper's feature computation is a shared MLP over batched rows —
//! matrix-matrix products (Fig. 3) — plus a handful of irregular operators
//! that regular DNN stacks lack: row gather by neighbor index, grouped max
//! reduction, and centroid subtraction. The Rust ecosystem has no DNN stack
//! we are allowed to depend on here ("thin DNN ecosystem; point-cloud ops
//! hand-rolled"), so this crate implements exactly the kernel set the seven
//! evaluated networks require, with nothing speculative:
//!
//! * [`Matrix`] — the storage type,
//! * [`ops`] — matmul (three transpose variants), bias broadcast,
//!   elementwise arithmetic, ReLU and its gradient mask, column statistics,
//! * [`group`] — gather / grouped-reduce / scatter kernels used by
//!   aggregation in both the original and the delayed formulation.
//!
//! # Example
//!
//! ```
//! use mesorasi_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = mesorasi_tensor::ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! ```
//!
//! # Kernel tiers and dtypes
//!
//! The matmul family runs through cache-blocked, register-tiled
//! micro-kernels ([`simd`] supplies the vector inner loops behind runtime
//! detection; the `simd` cargo feature, on by default, gates them). The
//! pre-tier loops survive as [`ops::naive`] — the bit-identical semantics
//! reference. [`Matrix64`] and [`ops64`] carry the `f64` shadow-precision
//! tier: sequential, deterministic mirrors of every forward kernel, used
//! by the planned engine's opt-in f64 execution mode to measure what f32
//! costs in end-task accuracy.

// The `simd` module is the workspace's single unsafe island; everything
// else in this crate (and every other crate) refuses unsafe code.
#![deny(unsafe_code)]

pub mod group;
pub mod matrix;
pub mod matrix64;
pub mod ops;
pub mod ops64;
pub mod simd;

pub use matrix::Matrix;
pub use matrix64::Matrix64;

/// Element precision of a planned execution.
///
/// The workspace's native storage is `f32` ([`Matrix`]); `F64` selects the
/// shadow-precision tier, which replays planned forwards through the
/// [`ops64`] kernels on [`Matrix64`] values. Bit-identity guarantees
/// (tape vs. planned, thread-count invariance) hold *within* a dtype —
/// that is the per-dtype contract; across dtypes only closeness holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dtype {
    /// Native single precision — the fast tier, and the default.
    #[default]
    F32,
    /// Shadow double precision: sequential, deterministic, for measuring
    /// the end-task accuracy delta of f32 execution.
    F64,
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dtype::F32 => write!(f, "f32"),
            Dtype::F64 => write!(f, "f64"),
        }
    }
}
