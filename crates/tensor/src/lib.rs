//! Dense row-major `f32` matrices and the kernels point-cloud networks need.
//!
//! The paper's feature computation is a shared MLP over batched rows —
//! matrix-matrix products (Fig. 3) — plus a handful of irregular operators
//! that regular DNN stacks lack: row gather by neighbor index, grouped max
//! reduction, and centroid subtraction. The Rust ecosystem has no DNN stack
//! we are allowed to depend on here ("thin DNN ecosystem; point-cloud ops
//! hand-rolled"), so this crate implements exactly the kernel set the seven
//! evaluated networks require, with nothing speculative:
//!
//! * [`Matrix`] — the storage type,
//! * [`ops`] — matmul (three transpose variants), bias broadcast,
//!   elementwise arithmetic, ReLU and its gradient mask, column statistics,
//! * [`group`] — gather / grouped-reduce / scatter kernels used by
//!   aggregation in both the original and the delayed formulation.
//!
//! # Example
//!
//! ```
//! use mesorasi_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = mesorasi_tensor::ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! ```

pub mod group;
pub mod matrix;
pub mod ops;

pub use matrix::Matrix;
