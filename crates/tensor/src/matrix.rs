//! The [`Matrix`] storage type.

use std::fmt;

/// A dense row-major `f32` matrix.
///
/// Everything in the workspace — point features, MLP weights, activations,
/// the Point Feature Table — is a `Matrix`. Row-major layout matches the
/// paper's tables (one row per point) and makes the row-gather used by
/// aggregation a contiguous copy.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix with every element `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows × cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds a matrix element-by-element from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Size of the matrix in bytes when stored as `f32` — used by the
    /// memory-footprint experiments (Fig. 10).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the matrix in place to `rows × cols`, keeping the backing
    /// allocation. Existing element values are unspecified afterwards (the
    /// `_into` kernels fully define their output). Never shrinks the backing
    /// capacity, so a buffer cycling through the shapes of an inference plan
    /// stops allocating once it has seen the largest one.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Overwrites this matrix with `other`'s shape and contents, reusing the
    /// backing allocation — the buffer-recycling sibling of `Clone::clone`,
    /// used by the session's `infer_into` path so repeated inference on
    /// same-shaped inputs stops allocating for outputs.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.reset_shape(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Number of `f32` elements the backing allocation can hold without
    /// growing — used by the arena to report steady-state behaviour.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// A `0 × 0` matrix whose backing store can hold `elems` elements
    /// without reallocating — the initial state of an arena slot.
    pub fn with_capacity(elems: usize) -> Matrix {
        Matrix { rows: 0, cols: 0, data: Vec::with_capacity(elems) }
    }

    /// The transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Maximum absolute element, or 0 for an empty matrix. Used by tests to
    /// bound the divergence the delayed-aggregation approximation introduces.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontally concatenates `self` with `other` (the "+" tensor
    /// concatenation in DGCNN's architecture, Fig. 1b).
    ///
    /// # Panics
    ///
    /// Panics when row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.hstack_into(other, &mut out);
        out
    }

    /// [`Matrix::hstack`] writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics when row counts differ.
    pub fn hstack_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        out.reset_shape(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix (no allocation) — lets arena slots be
    /// `std::mem::take`n during execution.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ... {} more rows", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let c = Matrix::from_fn(2, 2, |r, col| (r * 2 + col + 1) as f32);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "rows × cols")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().shape(), (5, 3));
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.vstack(&b), Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        assert_eq!(a.hstack(&b), Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "equal column counts")]
    fn vstack_mismatch_panics() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        let _ = a.vstack(&b);
    }

    #[test]
    fn norms_and_bounds() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let bad = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn size_bytes_counts_f32s() {
        assert_eq!(Matrix::zeros(4, 8).size_bytes(), 128);
    }

    #[test]
    fn copy_from_matches_clone_and_keeps_capacity() {
        let big = Matrix::from_fn(6, 5, |r, c| (r * 7 + c) as f32);
        let small = Matrix::from_fn(2, 2, |r, c| -((r + c) as f32));
        let mut buf = Matrix::zeros(0, 0);
        buf.copy_from(&big);
        assert_eq!(buf, big);
        let cap = buf.capacity();
        buf.copy_from(&small);
        assert_eq!(buf, small);
        assert_eq!(buf.capacity(), cap, "copy_from must not shrink the backing store");
    }

    #[test]
    fn debug_output_is_nonempty_and_truncated() {
        let m = Matrix::zeros(10, 10);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("more rows"));
    }
}
