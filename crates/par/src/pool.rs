//! The persistent worker pool behind the `par_*` primitives.
//!
//! Spawning OS threads per parallel region costs tens of microseconds —
//! comparable to an entire paper-scale matmul — so the pool keeps a set of
//! detached workers parked on a condvar and hands them *jobs*: type-erased
//! `&(dyn Fn() + Sync)` bodies that internally claim chunks from an atomic
//! queue. Workers are spawned lazily and grown on demand (a
//! `with_threads(8)` sweep on a 2-core host still gets 8 real threads, so
//! thread-count equivalence tests exercise true concurrency everywhere).
//!
//! # Safety protocol
//!
//! A job body borrows the caller's stack (output slices, closures). The
//! caller publishes the job, runs the body itself, then *removes the job
//! from the queue and waits until no worker is still inside the body*
//! before returning. Workers register themselves (`active += 1`) under the
//! same lock that queue membership is changed under, so a worker can never
//! join a job after the caller started tearing it down.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

struct Job {
    /// The body with its borrow lifetime erased. Only dereferenced by
    /// workers registered in `active`, which the caller waits out before
    /// the real borrow ends.
    body: &'static (dyn Fn() + Sync),
    /// Additional workers this job still wants (decremented on join; the
    /// worker taking the last slot removes the job from the queue).
    slots: Mutex<usize>,
    /// Workers currently executing the body, plus a condvar the caller
    /// waits on for it to reach zero.
    active: Mutex<usize>,
    done: Condvar,
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    /// Workers spawned so far (grown on demand, bounded by the caller).
    spawned: Mutex<usize>,
}

fn shared() -> &'static PoolShared {
    static SHARED: OnceLock<PoolShared> = OnceLock::new();
    SHARED.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

fn worker_loop() {
    // Workers run nested parallel calls sequentially (see lib.rs).
    crate::pin_current_thread_sequential();
    let pool = shared();
    loop {
        let job = {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            loop {
                // Join the first job that still wants workers; claim the
                // slot and the `active` registration under the queue lock
                // so the caller's teardown can never miss us.
                let mut picked = None;
                let mut retire = None;
                for (i, job) in queue.iter().enumerate() {
                    let mut slots = job.slots.lock().expect("job slots poisoned");
                    if *slots > 0 {
                        *slots -= 1;
                        if *slots == 0 {
                            retire = Some(i);
                        }
                        *job.active.lock().expect("job active poisoned") += 1;
                        picked = Some(job.clone());
                        break;
                    }
                }
                if let Some(i) = retire {
                    queue.remove(i);
                }
                match picked {
                    Some(job) => break job,
                    None => {
                        queue = pool.work_ready.wait(queue).expect("pool queue poisoned");
                    }
                }
            }
        };
        // The chunk-claiming bodies catch their own panics (PanicSlot); a
        // panic escaping here would mean a bug in the claim loop itself.
        // Swallow it rather than killing the worker.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job.body));
        let mut active = job.active.lock().expect("job active poisoned");
        *active -= 1;
        if *active == 0 {
            job.done.notify_all();
        }
    }
}

/// Makes sure at least `wanted` workers exist (detached, parked when idle).
fn ensure_workers(wanted: usize) {
    let pool = shared();
    let mut spawned = pool.spawned.lock().expect("pool spawn count poisoned");
    while *spawned < wanted {
        std::thread::Builder::new()
            .name(format!("mesorasi-par-{}", *spawned))
            .spawn(worker_loop)
            .expect("cannot spawn pool worker");
        *spawned += 1;
    }
}

/// Runs `body` on the calling thread plus up to `extra` pool workers, and
/// returns once every participant has left the body. The body must be a
/// self-scheduling chunk-claim loop: idempotent to run on any number of
/// threads concurrently, a no-op once all chunks are claimed, and
/// panic-free (it catches its own panics).
#[allow(unsafe_code)]
pub(crate) fn run(extra: usize, body: &(dyn Fn() + Sync)) {
    if extra == 0 {
        body();
        return;
    }
    ensure_workers(extra);
    let pool = shared();
    // SAFETY: erases the borrow lifetime so the job can sit in the
    // 'static queue. The teardown below guarantees no worker touches
    // `body` after this function returns, re-establishing the borrow rule.
    let body_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let job = Arc::new(Job {
        body: body_static,
        slots: Mutex::new(extra),
        active: Mutex::new(0),
        done: Condvar::new(),
    });
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        queue.push_back(job.clone());
    }
    pool.work_ready.notify_all();

    // The caller participates too — pinned sequential like the workers, so
    // nested parallel calls behave identically on every participant.
    crate::with_threads(1, body);

    // Teardown: pull the job out of the queue (no new workers may join),
    // then wait out the ones already inside the body.
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        if let Some(i) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
            queue.remove(i);
        }
    }
    let mut active = job.active.lock().expect("job active poisoned");
    while *active > 0 {
        active = job.done.wait(active).expect("job active poisoned");
    }
}
