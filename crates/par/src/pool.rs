//! The persistent worker pool behind the `par_*` primitives.
//!
//! Spawning OS threads per parallel region costs tens of microseconds —
//! comparable to an entire paper-scale matmul — so the pool keeps a set of
//! detached workers parked on a condvar and hands them *jobs*: type-erased
//! `&(dyn Fn() + Sync)` bodies that internally claim chunks from an atomic
//! queue. Workers are spawned lazily and grown on demand (a
//! `with_threads(8)` sweep on a 2-core host still gets 8 real threads, so
//! thread-count equivalence tests exercise true concurrency everywhere).
//!
//! Job headers are recycled through a bounded freelist, so a warm dispatch
//! performs no heap allocation — the property the counting-allocator suite
//! relies on to extend the zero-alloc streaming bar to `MESORASI_THREADS>1`.
//!
//! # Safety protocol
//!
//! A job body borrows the caller's stack (output slices, closures). The
//! caller publishes the job, runs the body itself, then *removes the job
//! from the queue and waits until no worker is still inside the body*
//! before returning. Workers register themselves (`active += 1`) under the
//! same lock that queue membership is changed under, so a worker can never
//! join a job after the caller started tearing it down. Recycling is safe
//! for the same reason: once the job has left the queue and `active` hit
//! zero, a stale `Arc` clone held by a worker is only ever *dropped*, never
//! dereferenced into the body again.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// No-op body parked in a freelisted job header between uses.
fn idle_body() {}

struct Job {
    /// The body with its borrow lifetime erased. Only dereferenced by
    /// workers registered in `active`, which the caller waits out before
    /// the real borrow ends. Behind a mutex so recycled headers can be
    /// re-pointed at the next caller's body.
    body: Mutex<&'static (dyn Fn() + Sync)>,
    /// Additional workers this job still wants (decremented on join; the
    /// worker taking the last slot removes the job from the queue).
    slots: Mutex<usize>,
    /// Workers currently executing the body, plus a condvar the caller
    /// waits on for it to reach zero.
    active: Mutex<usize>,
    done: Condvar,
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    /// Workers spawned so far (grown on demand, bounded by the caller).
    spawned: Mutex<usize>,
    /// Retired job headers awaiting reuse — dispatching from a warm pool
    /// must not allocate.
    freelist: Mutex<Vec<Arc<Job>>>,
}

/// Upper bound on retired job headers kept for reuse; headers beyond it
/// are simply dropped. Concurrent jobs are bounded by live caller threads,
/// so a small cap covers the steady state.
const FREELIST_CAP: usize = 64;

fn shared() -> &'static PoolShared {
    static SHARED: OnceLock<PoolShared> = OnceLock::new();
    SHARED.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::with_capacity(FREELIST_CAP)),
        work_ready: Condvar::new(),
        spawned: Mutex::new(0),
        freelist: Mutex::new(Vec::with_capacity(FREELIST_CAP)),
    })
}

fn worker_loop(slot: usize) {
    // Workers run nested parallel calls sequentially (see lib.rs), and
    // carry a process-unique slot id so `ScratchPool` checkouts from chunk
    // bodies are contention-free.
    crate::pin_current_thread_sequential();
    crate::set_worker_slot(slot);
    let pool = shared();
    loop {
        let job = {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            loop {
                // Join the first job that still wants workers; claim the
                // slot and the `active` registration under the queue lock
                // so the caller's teardown can never miss us.
                let mut picked = None;
                let mut retire = None;
                for (i, job) in queue.iter().enumerate() {
                    let mut slots = job.slots.lock().expect("job slots poisoned");
                    if *slots > 0 {
                        *slots -= 1;
                        if *slots == 0 {
                            retire = Some(i);
                        }
                        *job.active.lock().expect("job active poisoned") += 1;
                        picked = Some(job.clone());
                        break;
                    }
                }
                if let Some(i) = retire {
                    queue.remove(i);
                }
                match picked {
                    Some(job) => break job,
                    None => {
                        queue = pool.work_ready.wait(queue).expect("pool queue poisoned");
                    }
                }
            }
        };
        // The chunk-claiming bodies catch their own panics (PanicSlot); a
        // panic escaping here would mean a bug in the claim loop itself.
        // Swallow it rather than killing the worker.
        let body = *job.body.lock().expect("job body poisoned");
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        let mut active = job.active.lock().expect("job active poisoned");
        *active -= 1;
        if *active == 0 {
            job.done.notify_all();
        }
    }
}

/// Makes sure at least `wanted` workers exist (detached, parked when idle).
fn ensure_workers(wanted: usize) {
    let pool = shared();
    let mut spawned = pool.spawned.lock().expect("pool spawn count poisoned");
    while *spawned < wanted {
        // Slot 0 belongs to non-pool threads; worker n gets slot n + 1.
        let slot = *spawned + 1;
        std::thread::Builder::new()
            .name(format!("mesorasi-par-{}", *spawned))
            .spawn(move || worker_loop(slot))
            .expect("cannot spawn pool worker");
        *spawned += 1;
    }
}

/// Pops a retired job header (or allocates the first time) and points it
/// at `body` with `extra` worker slots.
fn checkout_job(extra: usize, body: &'static (dyn Fn() + Sync)) -> Arc<Job> {
    let pool = shared();
    let recycled = pool.freelist.lock().expect("pool freelist poisoned").pop();
    match recycled {
        Some(job) => {
            *job.body.lock().expect("job body poisoned") = body;
            *job.slots.lock().expect("job slots poisoned") = extra;
            debug_assert_eq!(*job.active.lock().expect("job active poisoned"), 0);
            job
        }
        None => Arc::new(Job {
            body: Mutex::new(body),
            slots: Mutex::new(extra),
            active: Mutex::new(0),
            done: Condvar::new(),
        }),
    }
}

/// Returns a fully torn-down job header to the freelist (drops it past the
/// cap). Parking the body on [`idle_body`] keeps no dangling borrow alive.
fn retire_job(job: Arc<Job>) {
    *job.body.lock().expect("job body poisoned") = &idle_body;
    let mut freelist = shared().freelist.lock().expect("pool freelist poisoned");
    if freelist.len() < FREELIST_CAP {
        freelist.push(job);
    }
}

/// Runs `body` on the calling thread plus up to `extra` pool workers, and
/// returns once every participant has left the body. The body must be a
/// self-scheduling chunk-claim loop: idempotent to run on any number of
/// threads concurrently, a no-op once all chunks are claimed, and
/// panic-free (it catches its own panics).
#[allow(unsafe_code)]
pub(crate) fn run(extra: usize, body: &(dyn Fn() + Sync)) {
    if extra == 0 {
        body();
        return;
    }
    ensure_workers(extra);
    let pool = shared();
    // SAFETY: erases the borrow lifetime so the job can sit in the
    // 'static queue. The teardown below guarantees no worker touches
    // `body` after this function returns, re-establishing the borrow rule.
    let body_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let job = checkout_job(extra, body_static);
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        queue.push_back(job.clone());
    }
    pool.work_ready.notify_all();

    // The caller participates too — pinned sequential like the workers, so
    // nested parallel calls behave identically on every participant.
    crate::with_threads(1, body);

    // Teardown: pull the job out of the queue (no new workers may join),
    // then wait out the ones already inside the body.
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        if let Some(i) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
            queue.remove(i);
        }
    }
    {
        let mut active = job.active.lock().expect("job active poisoned");
        while *active > 0 {
            active = job.done.wait(active).expect("job active poisoned");
        }
    }
    retire_job(job);
}
