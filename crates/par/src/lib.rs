//! Zero-dependency data-parallel execution layer.
//!
//! Mesorasi's hot kernels — the dense MLP matrix products, the grouped max
//! reductions, and per-query neighbor search — are embarrassingly parallel
//! over rows, groups, and queries. This crate provides the minimal scoped
//! thread-pool substrate they share, in the same offline vendor-shim style
//! as `vendor/rand`: no external dependencies, `std::thread::scope` under
//! the hood.
//!
//! # Determinism contract
//!
//! Every primitive here is *bit-deterministic with respect to the thread
//! count*: work is split into chunks at fixed boundaries, each output
//! element is produced entirely by the chunk that owns it, and chunks never
//! share mutable state. Running with 1, 2, or 64 threads therefore produces
//! identical results down to the last float — threads only change which OS
//! thread executes a chunk, never the order of any floating-point
//! accumulation. At an effective thread count of 1 nothing is spawned at
//! all: the chunks run inline on the caller's thread.
//!
//! # Sizing
//!
//! The effective thread count is resolved, in priority order, from
//!
//! 1. a [`with_threads`] scope (used by tests and the bench harness),
//! 2. the `MESORASI_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Worker threads themselves run nested parallel calls sequentially, so a
//! parallel evaluation loop calling parallel matmuls cannot oversubscribe
//! the machine.

// `par` is, with `mesorasi_tensor::simd`, one of the two documented
// unsafe exceptions in the workspace: the chunk-claiming primitives hand
// disjoint sub-slices of one buffer to scoped workers, which cannot be
// expressed in safe Rust without an extra dependency. Every unsafe item
// below carries an explicit `#[allow(unsafe_code)]` and a SAFETY comment;
// everything else in the crate stays under the deny.
#![deny(unsafe_code)]

mod pool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on the pool size; protects against a pathological
/// `MESORASI_THREADS` value.
const MAX_POOL: usize = 256;

/// Minimum amount of per-chunk work (in arbitrary cost units — roughly
/// "inner-loop operations") below which [`chunk_len`] refuses to split
/// further. Keeps tiny kernels on one thread where spawn overhead dominates.
const MIN_CHUNK_WORK: usize = 16 * 1024;

/// Chunks-per-thread target: a few chunks per worker lets the atomic queue
/// balance uneven per-item cost (e.g. kd-tree queries) without shrinking
/// chunks into spawn-overhead territory.
const CHUNKS_PER_THREAD: usize = 4;

thread_local! {
    /// Per-thread override installed by [`with_threads`] and by pool
    /// workers (who pin themselves to 1 to serialize nested parallelism).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };

    /// The pool slot of this thread: 0 for every non-pool thread (callers
    /// participate in their own jobs), `n + 1` for pool worker `n`. What
    /// [`ScratchPool`] keys its checkouts by.
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Tags the calling thread with its pool slot — called once per worker at
/// spawn time.
pub(crate) fn set_worker_slot(slot: usize) {
    WORKER_SLOT.with(|s| s.set(slot));
}

/// The calling thread's scratch slot: 0 on any non-pool thread, a unique
/// `1..=MAX_POOL` id on pool workers. Distinct participants of one
/// parallel region always see distinct slots (the caller is the only
/// participant with slot 0), which is what makes [`ScratchPool`] checkouts
/// inside `par_*` bodies contention-free.
pub fn worker_slot() -> usize {
    WORKER_SLOT.with(|s| s.get())
}

/// Per-worker scratch buffers for `par_*` chunk bodies.
///
/// A chunk body that needs a scratch buffer (e.g. the kNN candidate heap)
/// cannot share one `&mut` buffer across workers, and allocating per chunk
/// would break the zero-allocation streaming bar above 1 thread. A
/// `ScratchPool` holds one lazily-default-initialized buffer per pool
/// slot; [`ScratchPool::with`] checks out the calling thread's slot for
/// the duration of a closure. Within one parallel region every
/// participant has a distinct slot, so checkouts never contend; the mutex
/// per slot exists for soundness (two *caller* threads from different
/// sessions share slot 0) and an uncontended `std` mutex does not
/// allocate.
///
/// Buffers keep their capacity across checkouts — after a warm-up pass,
/// `with` performs zero heap allocations no matter the thread count.
pub struct ScratchPool<T> {
    slots: Box<[Mutex<T>]>,
}

impl<T: Default> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool::new()
    }
}

impl<T: Default> ScratchPool<T> {
    /// A pool with one default-initialized slot per possible participant
    /// (`MAX_POOL` workers plus the slot-0 caller).
    pub fn new() -> Self {
        ScratchPool { slots: (0..=MAX_POOL).map(|_| Mutex::new(T::default())).collect() }
    }
}

impl<T> ScratchPool<T> {
    /// Runs `f` with exclusive access to the calling thread's slot buffer.
    /// The buffer retains whatever state (and capacity) the previous
    /// checkout on this slot left behind — callers must clear it if they
    /// need a fresh start.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard =
            self.slots[worker_slot()].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Folds `measure` over every slot buffer (skipping any slot currently
    /// checked out) — how retained scratch memory is reported.
    pub fn measure_bytes(&self, measure: impl Fn(&T) -> usize) -> usize {
        self.slots.iter().filter_map(|m| m.try_lock().ok()).map(|guard| measure(&guard)).sum()
    }
}

/// Resolves the `MESORASI_THREADS` override, once per process.
///
/// # Panics
///
/// Panics on a value that is not a positive integer, naming the accepted
/// range. Silently falling back to the hardware count would make a typo'd
/// override *look* honored — config errors must fail loudly, not skew
/// thread-sweep experiments.
fn env_or_hardware_threads() -> usize {
    static RESOLVED: OnceLock<usize> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        if let Ok(raw) = std::env::var("MESORASI_THREADS") {
            match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n.min(MAX_POOL),
                _ => panic!(
                    "invalid MESORASI_THREADS='{raw}': accepted values are \
                     positive integers 1..={MAX_POOL}"
                ),
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_POOL))
    })
}

/// The effective thread count for parallel primitives called from this
/// thread: the innermost [`with_threads`] override if any, else
/// `MESORASI_THREADS`, else the hardware parallelism.
pub fn current_threads() -> usize {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(env_or_hardware_threads)
}

/// Permanently pins the calling thread to sequential execution — used by
/// pool workers so nested parallel calls inside a chunk body run inline.
pub(crate) fn pin_current_thread_sequential() {
    OVERRIDE.with(|o| o.set(Some(1)));
}

/// Runs `f` with the effective thread count forced to `n` (clamped to
/// `1..=256`) on this thread, restoring the previous setting afterwards.
/// This is how the bench harness and the equivalence tests sweep thread
/// counts without touching the process environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.clamp(1, MAX_POOL);
    let prev = OVERRIDE.with(|o| o.replace(Some(n)));
    // Restore on unwind too, so a panicking closure doesn't leak the
    // override into unrelated tests sharing this thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Picks a chunk length (in items) for `n` items of roughly `cost_per_item`
/// work units each: enough chunks to balance [`current_threads`] workers,
/// but never chunks smaller than `MIN_CHUNK_WORK` total work. Returns a
/// length ≥ `n` (meaning "do not parallelize") for small workloads.
pub fn chunk_len(n: usize, cost_per_item: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let threads = current_threads();
    if threads <= 1 {
        return n;
    }
    let balanced = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let min_items = MIN_CHUNK_WORK.div_ceil(cost_per_item.max(1)).max(1);
    balanced.max(min_items)
}

/// Raw mutable base pointer that is safe to ship across scoped threads:
/// each worker only ever touches the disjoint chunk it claimed.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced through disjoint [start, end)
// ranges, each claimed by exactly one worker via an atomic chunk queue,
// and the pointee buffer outlives the scoped job.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// `Sync` wrapper, not the raw pointer itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into fixed-boundary chunks of `chunk` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` over them on the
/// effective thread count. Chunk boundaries depend only on `chunk` and
/// `data.len()` — never on the thread count — and workers claim chunk
/// indices from an atomic queue, so uneven chunks still balance.
///
/// A panic in any chunk propagates to the caller (after all workers join),
/// preserving the payload.
///
/// # Panics
///
/// Panics if `chunk == 0` while `data` is non-empty.
#[allow(unsafe_code)]
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk > 0, "chunk length must be positive");
    let n_chunks = data.len().div_ceil(chunk);
    let threads = current_threads().min(n_chunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }

    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let panic_slot = PanicSlot::default();
    let body = || loop {
        if panic_slot.poisoned() {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: chunk index `i` is claimed by exactly one participant
        // (fetch_add), and [start, end) ranges for distinct `i` are
        // disjoint sub-slices of `data`, which outlives the pool job.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        panic_slot.run(|| f(i, slice));
    };
    pool::run(threads - 1, &body);
    panic_slot.resume();
}

/// Captures the first panic raised on a worker so the caller can re-raise
/// it with the original payload (`std::thread::scope` alone would replace
/// the message with "a scoped thread panicked", breaking the kernels'
/// documented assertion messages).
#[derive(Default)]
struct PanicSlot {
    poisoned: std::sync::atomic::AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl PanicSlot {
    fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Runs `f`, stashing its panic payload (first writer wins).
    fn run(&self, f: impl FnOnce()) {
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            self.poisoned.store(true, Ordering::Relaxed);
            let mut slot = self.payload.lock().expect("panic slot lock");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    /// Re-raises the stashed panic, if any.
    fn resume(&self) {
        if let Some(payload) = self.payload.lock().expect("panic slot lock").take() {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Like [`par_chunks_mut`] but splits two output slices along proportional
/// fixed boundaries — chunk `i` covers `a[i*chunk_a ..]` and
/// `b[i*chunk_b ..]` — so kernels producing paired outputs (a reduced
/// matrix plus its argmax table) keep both halves of each work unit on the
/// same thread.
///
/// # Panics
///
/// Panics if either chunk length is zero while its slice is non-empty, or
/// if the two slices disagree on the number of chunks.
#[allow(unsafe_code)]
pub fn par_chunks_mut_pair<A, B, F>(a: &mut [A], b: &mut [B], chunk_a: usize, chunk_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a.is_empty() && b.is_empty() {
        return;
    }
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    let n_chunks = a.len().div_ceil(chunk_a).max(b.len().div_ceil(chunk_b));
    assert!(
        (n_chunks - 1) * chunk_a < a.len().max(1) && (n_chunks - 1) * chunk_b < b.len().max(1),
        "slices disagree on chunk count: {} × {chunk_a} vs {} × {chunk_b}",
        a.len(),
        b.len()
    );
    let threads = current_threads().min(n_chunks);
    let (a_len, b_len) = (a.len(), b.len());
    let run_chunk = |i: usize, a_ptr: *mut A, b_ptr: *mut B| {
        let (a_start, b_start) = (i * chunk_a, i * chunk_b);
        let a_end = (a_start + chunk_a).min(a_len);
        let b_end = (b_start + chunk_b).min(b_len);
        // SAFETY: chunk index `i` is processed exactly once, and the
        // [start, end) ranges for distinct `i` are disjoint in both slices.
        let (sa, sb) = unsafe {
            (
                std::slice::from_raw_parts_mut(a_ptr.add(a_start), a_end - a_start),
                std::slice::from_raw_parts_mut(b_ptr.add(b_start), b_end - b_start),
            )
        };
        f(i, sa, sb);
    };
    if threads <= 1 {
        for i in 0..n_chunks {
            run_chunk(i, a.as_mut_ptr(), b.as_mut_ptr());
        }
        return;
    }
    let base_a = SendPtr(a.as_mut_ptr());
    let base_b = SendPtr(b.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let panic_slot = PanicSlot::default();
    let body = || loop {
        if panic_slot.poisoned() {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        panic_slot.run(|| run_chunk(i, base_a.get(), base_b.get()));
    };
    pool::run(threads - 1, &body);
    panic_slot.resume();
}

/// Maps `f(index, item)` over `items`, preserving order. The closure runs
/// on worker threads but the result vector is assembled in index order, so
/// output is identical at every thread count.
pub fn par_map_collect<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indices(items.len(), |i| f(i, &items[i]))
}

/// Like [`par_map_collect`] but stays sequential when the total work
/// (`items.len() × cost_per_item` units) is too small to amortize thread
/// spawns — the per-query kNN paths use this so unit-test-sized clouds
/// never pay pool overhead.
pub fn par_map_collect_cost<T, R, F>(items: &[T], cost_per_item: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk = chunk_len(items.len(), cost_per_item);
    par_map_indices_chunked(items.len(), chunk, |i| f(i, &items[i]))
}

/// Index-space variant of [`par_map_collect`]: computes `f(0..n)` in
/// parallel and returns the results in index order.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunk = n.div_ceil(current_threads() * CHUNKS_PER_THREAD).max(1);
    par_map_indices_chunked(n, chunk, f)
}

fn par_map_indices_chunked<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if current_threads() <= 1 || n <= 1 || chunk >= n {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    par_chunks_mut(&mut out, chunk, |ci, slots| {
        let start = ci * chunk;
        for (j, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(start + j));
        }
    });
    out.into_iter().map(|r| r.expect("every index chunk fills its slots")).collect()
}

/// Runs heterogeneous one-shot tasks on the pool (used for per-module /
/// per-trace parallelism where each task is a different closure). Tasks are
/// claimed from a queue; at an effective thread count of 1 they run inline
/// in order.
pub fn par_run_tasks<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let threads = current_threads().min(tasks.len());
    if threads <= 1 {
        for t in tasks {
            t();
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    let panic_slot = PanicSlot::default();
    let body = || loop {
        if panic_slot.poisoned() {
            break;
        }
        let task = queue.lock().expect("task queue poisoned").next();
        match task {
            Some(t) => panic_slot.run(t),
            None => break,
        }
    };
    pool::run(threads - 1, &body);
    panic_slot.resume();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        let inner = with_threads(3, current_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(with_threads(0, current_threads), 1);
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let before = current_threads();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn chunk_len_keeps_small_work_sequential() {
        with_threads(8, || {
            // 100 items of cost 1 = 100 work units << MIN_CHUNK_WORK.
            assert!(chunk_len(100, 1) >= 100);
            // Large per-item cost splits down to the balanced size.
            assert_eq!(chunk_len(64, 1 << 20), 2);
        });
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        for threads in [1, 2, 8] {
            let mut data = vec![0u32; 1003];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 17, |ci, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v += (ci * 17 + j) as u32 + 1;
                    }
                });
            });
            let want: Vec<u32> = (1..=1003).collect();
            assert_eq!(data, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_input_is_noop() {
        let mut data: Vec<u32> = Vec::new();
        par_chunks_mut(&mut data, 0, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || par_map_collect(&items, |i, &x| i * 1000 + x));
            let want: Vec<usize> = (0..500).map(|i| i * 1000 + i).collect();
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_pair_splits_proportionally() {
        for threads in [1, 2, 8] {
            // 20 groups: a holds 3 values per group, b holds 1 per group.
            let mut a = vec![0u32; 60];
            let mut b = vec![0u32; 20];
            with_threads(threads, || {
                par_chunks_mut_pair(&mut a, &mut b, 2 * 3, 2, |ci, ca, cb| {
                    for v in ca.iter_mut() {
                        *v = ci as u32 + 1;
                    }
                    for v in cb.iter_mut() {
                        *v = (ci as u32 + 1) * 100;
                    }
                });
            });
            for g in 0..20 {
                let chunk = (g / 2) as u32 + 1;
                assert_eq!(b[g], chunk * 100, "threads {threads} group {g}");
                assert!(a[3 * g..3 * (g + 1)].iter().all(|&v| v == chunk));
            }
        }
    }

    #[test]
    fn par_map_collect_cost_gates_small_work() {
        // Cheap items: must produce identical output regardless, and the
        // gate (chunk >= n) keeps it on the calling thread.
        let items: Vec<u32> = (0..50).collect();
        let out = with_threads(8, || par_map_collect_cost(&items, 1, |_, &x| x * 2));
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_run_tasks_runs_everything() {
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..37)
            .map(|i| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1 << (i % 10), Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        with_threads(4, || par_run_tasks(tasks));
        let mut want = 0u64;
        for i in 0..37 {
            want += 1 << (i % 10);
        }
        assert_eq!(counter.load(Ordering::Relaxed), want);
    }

    #[test]
    fn workers_serialize_nested_parallelism() {
        let mut data = vec![0usize; 64];
        with_threads(4, || {
            par_chunks_mut(&mut data, 8, |_, chunk| {
                // Inside a worker the effective thread count is pinned to 1.
                for v in chunk.iter_mut() {
                    *v = current_threads();
                }
            });
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn worker_slots_are_distinct_within_a_region() {
        // Every chunk records the slot of the thread that ran it; the
        // caller is slot 0 and each pool worker has a unique nonzero slot,
        // so concurrent participants can never collide in a ScratchPool.
        let mut slots = vec![usize::MAX; 64];
        with_threads(4, || {
            par_chunks_mut(&mut slots, 1, |_, chunk| {
                // Spread the claims out so several workers participate.
                std::thread::sleep(std::time::Duration::from_micros(50));
                chunk[0] = worker_slot();
            });
        });
        assert!(slots.iter().all(|&s| s <= MAX_POOL));
        assert_eq!(worker_slot(), 0, "the calling thread keeps slot 0");
    }

    #[test]
    fn scratch_pool_keeps_per_slot_capacity() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        let mut caps = vec![0usize; 64];
        for _round in 0..2 {
            with_threads(4, || {
                par_chunks_mut(&mut caps, 1, |ci, chunk| {
                    pool.with(|buf| {
                        buf.clear();
                        buf.extend((0..128).map(|j| (ci * 128 + j) as u64));
                        chunk[0] = buf.capacity();
                    });
                });
            });
        }
        assert!(caps.iter().all(|&c| c >= 128));
        // Capacity is retained across checkouts and visible to the meter.
        assert!(pool.measure_bytes(|v| v.capacity() * 8) >= 128 * 8);
    }

    #[test]
    fn scratch_pool_slot_zero_is_shared_but_sound() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        pool.with(|v| v.push(1));
        pool.with(|v| v.push(2));
        pool.with(|v| assert_eq!(v.as_slice(), &[1, 2]));
    }

    #[test]
    fn panic_in_chunk_propagates_payload() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 100];
            with_threads(2, || {
                par_chunks_mut(&mut data, 10, |ci, _| {
                    if ci == 7 {
                        panic!("chunk 7 exploded");
                    }
                });
            });
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("chunk 7 exploded"), "got '{msg}'");
    }
}
