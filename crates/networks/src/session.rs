//! Session-first inference: one owned, thread-safe entry point for all
//! seven networks.
//!
//! A [`Session`] owns a frozen [`PointCloudNetwork`] plus a pool of
//! per-worker [`PlanEngine`]s, so it is `Send + Sync` and lifetime-free:
//! wrap it in an `Arc` and call [`Session::infer`] from as many threads as
//! you like. Every forward runs on the plan-and-execute engine — the first
//! forward per (worker, input shape) records the network once on the
//! autograd tape and compiles a liveness-planned arena; every later
//! forward replays the plan, re-deriving only per-sample neighbor
//! structure. Outputs are bit-identical to [`PointCloudNetwork::forward`]
//! at every thread count.
//!
//! Results are domain-typed: [`Logits`] for classification,
//! [`PerPointLabels`] for segmentation, [`Boxes3D`] for detection —
//! no raw matrices, no F-PointNet special case at the call site.
//!
//! ```
//! use mesorasi_networks::session::SessionBuilder;
//! use mesorasi_networks::NetworkKind;
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//!
//! let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
//!     .classes(10)
//!     .build();
//! let cloud = sample_shape(ShapeClass::Chair, session.network().input_points(), 1);
//! let logits = session.infer(&cloud).into_classification();
//! assert_eq!(logits.matrix().shape(), (1, 10));
//! assert!(logits.predicted() < 10);
//! ```
//!
//! Use the tape ([`PointCloudNetwork::forward`]) when you need gradients
//! or one-off forwards; use a session for eval loops and serving, where
//! the tape's per-op allocation and autograd bookkeeping are pure
//! overhead. A session assumes frozen parameters: plans snapshot weights
//! at build time (the builder clones networks it only borrows), so
//! optimizer steps on the original network never invalidate a session.

use crate::registry::{Domain, NetworkKind};
use crate::PointCloudNetwork;
use mesorasi_core::engine::{EngineStats, PlanEngine};
use mesorasi_core::{SampleCacheStats, Strategy};
use mesorasi_knn::stats::SearchCounters;
use mesorasi_knn::{SearchBackend, SearchPlanner};
use mesorasi_nn::loss;
use mesorasi_nn::{Graph, VarId};
use mesorasi_par as par;
use mesorasi_pointcloud::{Point3, PointCloud};
use mesorasi_tensor::{Dtype, Matrix};
use std::borrow::Borrow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Classification output: one row of class scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Logits {
    scores: Matrix,
}

impl Logits {
    /// Wraps a raw `1 × classes` score matrix — for callers (e.g. network
    /// clients) that rebuild an [`Inference`] from transported matrices.
    pub fn new(scores: Matrix) -> Logits {
        Logits { scores }
    }

    /// The raw `1 × classes` score matrix (pre-softmax).
    pub fn matrix(&self) -> &Matrix {
        &self.scores
    }

    /// The scores as a slice, one entry per class.
    pub fn scores(&self) -> &[f32] {
        self.scores.as_slice()
    }

    /// The argmax class (ties break to the lowest index, matching the
    /// training metrics).
    pub fn predicted(&self) -> u32 {
        loss::predictions(&self.scores)[0]
    }

    /// Consumes the result, yielding the raw matrix.
    pub fn into_matrix(self) -> Matrix {
        self.scores
    }
}

/// Segmentation output: per-point part scores.
#[derive(Debug, Clone, PartialEq)]
pub struct PerPointLabels {
    logits: Matrix,
}

impl PerPointLabels {
    /// Wraps a raw `N × parts` per-point score matrix — for callers that
    /// rebuild an [`Inference`] from transported matrices.
    pub fn new(logits: Matrix) -> PerPointLabels {
        PerPointLabels { logits }
    }

    /// The raw `N × parts` per-point score matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.logits
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.logits.rows()
    }

    /// True when the cloud had no points.
    pub fn is_empty(&self) -> bool {
        self.logits.rows() == 0
    }

    /// Per-point argmax labels, in input point order.
    pub fn labels(&self) -> Vec<u32> {
        loss::predictions(&self.logits)
    }

    /// Consumes the result, yielding the raw matrix.
    pub fn into_matrix(self) -> Matrix {
        self.logits
    }
}

/// Detection output: the frustum pipeline's per-point mask logits plus the
/// regressed box parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Boxes3D {
    seg_logits: Matrix,
    params: Matrix,
}

impl Boxes3D {
    /// Wraps raw mask logits (`N × 2`) and box regression (`1 × 7`)
    /// matrices — for callers that rebuild an [`Inference`] from
    /// transported matrices.
    pub fn new(seg_logits: Matrix, params: Matrix) -> Boxes3D {
        Boxes3D { seg_logits, params }
    }

    /// Per-point object/background logits, `N × 2`.
    pub fn seg_logits(&self) -> &Matrix {
        &self.seg_logits
    }

    /// Per-point mask labels (1 = object), the argmax of
    /// [`Boxes3D::seg_logits`].
    pub fn mask_labels(&self) -> Vec<u32> {
        loss::predictions(&self.seg_logits)
    }

    /// Raw box regression `1 × 7`: center residual (3), size residual (3),
    /// heading (1) — relative to the mask-coordinate frame.
    pub fn params(&self) -> &Matrix {
        &self.params
    }

    /// The bird's-eye-view box `(cx, cy, w, h)` implied by the regression,
    /// anchored at `anchor` (the mask-crop centroid the residuals are
    /// relative to). Sizes are clamped positive.
    pub fn bev_box(&self, anchor: Point3) -> (f32, f32, f32, f32) {
        let p = &self.params;
        (anchor.x + p[(0, 0)], anchor.y + p[(0, 1)], p[(0, 3)].abs(), p[(0, 4)].abs())
    }
}

/// A domain-typed inference result — what [`Session::infer`] returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Inference {
    /// Object classification scores.
    Classification(Logits),
    /// Per-point part segmentation scores.
    Segmentation(PerPointLabels),
    /// Detection: mask logits + regressed box.
    Detection(Boxes3D),
}

impl Inference {
    /// The domain this result belongs to.
    pub fn domain(&self) -> Domain {
        match self {
            Inference::Classification(_) => Domain::Classification,
            Inference::Segmentation(_) => Domain::Segmentation,
            Inference::Detection(_) => Domain::Detection,
        }
    }

    /// The primary output matrix regardless of domain: class scores,
    /// per-point scores, or mask logits.
    pub fn logits(&self) -> &Matrix {
        match self {
            Inference::Classification(l) => l.matrix(),
            Inference::Segmentation(s) => s.matrix(),
            Inference::Detection(d) => d.seg_logits(),
        }
    }

    /// Classification result, if this is one.
    pub fn as_classification(&self) -> Option<&Logits> {
        match self {
            Inference::Classification(l) => Some(l),
            _ => None,
        }
    }

    /// Segmentation result, if this is one.
    pub fn as_segmentation(&self) -> Option<&PerPointLabels> {
        match self {
            Inference::Segmentation(s) => Some(s),
            _ => None,
        }
    }

    /// Detection result, if this is one.
    pub fn as_detection(&self) -> Option<&Boxes3D> {
        match self {
            Inference::Detection(d) => Some(d),
            _ => None,
        }
    }

    /// Unwraps a classification result.
    ///
    /// # Panics
    ///
    /// Panics when the session's network solves a different task.
    pub fn into_classification(self) -> Logits {
        match self {
            Inference::Classification(l) => l,
            other => panic!("expected a classification result, got {:?}", other.domain()),
        }
    }

    /// Unwraps a segmentation result.
    ///
    /// # Panics
    ///
    /// Panics when the session's network solves a different task.
    pub fn into_segmentation(self) -> PerPointLabels {
        match self {
            Inference::Segmentation(s) => s,
            other => panic!("expected a segmentation result, got {:?}", other.domain()),
        }
    }

    /// Unwraps a detection result.
    ///
    /// # Panics
    ///
    /// Panics when the session's network solves a different task.
    pub fn into_detection(self) -> Boxes3D {
        match self {
            Inference::Detection(d) => d,
            other => panic!("expected a detection result, got {:?}", other.domain()),
        }
    }
}

/// How the builder obtains the network it will own.
enum NetSource {
    Kind(NetworkKind),
    Owned(Box<dyn PointCloudNetwork>),
}

/// Configures and builds a [`Session`].
///
/// Defaults: [`Strategy::Delayed`], sampling seed 7, small-scale instances
/// with 10 classes when building from a [`NetworkKind`], weight-init seed
/// 0, and one engine per host thread.
pub struct SessionBuilder {
    source: NetSource,
    strategy: Strategy,
    seed: u64,
    workers: Option<usize>,
    classes: usize,
    paper_scale: bool,
    init_seed: u64,
    search: Option<SearchBackend>,
    sample_cache_cap: Option<usize>,
    dtype: Option<Dtype>,
    tile_budget: Option<Option<usize>>,
    lod: usize,
    pager_budget: Option<Option<usize>>,
}

/// Default per-tile point budget of the tiled streaming path: large enough
/// that paper-scale frames split into a handful of tiles, small enough to
/// bound per-tile latency and scratch.
pub const DEFAULT_TILE_BUDGET: usize = 256;

/// Reads `MESORASI_TILE_BUDGET` (a positive point count, or `"off"` for
/// untiled cost-model chunking). Like `MESORASI_SEARCH` and
/// `MESORASI_THREADS`, an invalid value fails loudly rather than silently
/// running the wrong configuration.
fn tile_budget_from_env() -> Option<usize> {
    match std::env::var("MESORASI_TILE_BUDGET") {
        Ok(raw) if raw == "off" => None,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(b) if b > 0 => Some(b),
            _ => panic!(
                "invalid MESORASI_TILE_BUDGET='{raw}': accepted values are positive \
                 integers (points per tile) or \"off\""
            ),
        },
        Err(_) => Some(DEFAULT_TILE_BUDGET),
    }
}

/// Reads `MESORASI_DTYPE` (`"f32"` or `"f64"`). Like `MESORASI_SEARCH`
/// and `MESORASI_THREADS`, an invalid value fails loudly rather than
/// silently running the wrong configuration.
fn dtype_from_env() -> Dtype {
    match std::env::var("MESORASI_DTYPE") {
        Ok(v) => match v.as_str() {
            "f32" => Dtype::F32,
            "f64" => Dtype::F64,
            other => panic!("MESORASI_DTYPE must be \"f32\" or \"f64\", got {other:?}"),
        },
        Err(_) => Dtype::F32,
    }
}

impl SessionBuilder {
    fn new(source: NetSource) -> Self {
        SessionBuilder {
            source,
            strategy: Strategy::Delayed,
            seed: 7,
            workers: None,
            classes: 10,
            paper_scale: false,
            init_seed: 0,
            search: None,
            sample_cache_cap: None,
            dtype: None,
            tile_budget: None,
            lod: 0,
            pager_budget: None,
        }
    }

    /// A session over a freshly built instance of one of the seven
    /// benchmark networks (small scale unless
    /// [`SessionBuilder::paper_scale`] is set).
    pub fn from_kind(kind: NetworkKind) -> Self {
        SessionBuilder::new(NetSource::Kind(kind))
    }

    /// A session that takes ownership of `net`.
    pub fn from_network(net: impl PointCloudNetwork + 'static) -> Self {
        SessionBuilder::new(NetSource::Owned(Box::new(net)))
    }

    /// A session that takes ownership of an already-boxed network (what
    /// [`NetworkKind::build_small`] / [`NetworkKind::build_paper`] return).
    pub fn from_boxed(net: Box<dyn PointCloudNetwork>) -> Self {
        SessionBuilder::new(NetSource::Owned(net))
    }

    /// A session over a weight snapshot of `net` (via
    /// [`PointCloudNetwork::boxed_clone`]) — for callers that keep training
    /// the original network afterwards.
    pub fn from_network_ref(net: &dyn PointCloudNetwork) -> Self {
        SessionBuilder::new(NetSource::Owned(net.boxed_clone()))
    }

    /// Execution strategy (default [`Strategy::Delayed`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Centroid-sampling seed (default 7), kept fixed so strategies can be
    /// compared on identical neighbor structures.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Engine-pool size (default: the host thread budget at build time).
    /// Each worker owns its own plans, arena, and NIT cache; concurrent
    /// [`Session::infer`] calls beyond this count share engines.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Label-space size for [`SessionBuilder::from_kind`] small-scale
    /// builds (default 10; ignored for owned networks and paper scale).
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Build the paper-scale instance instead of the small one (only
    /// meaningful with [`SessionBuilder::from_kind`]).
    pub fn paper_scale(mut self) -> Self {
        self.paper_scale = true;
        self
    }

    /// Weight-initialization seed for [`SessionBuilder::from_kind`] builds
    /// (default 0).
    pub fn init_seed(mut self, seed: u64) -> Self {
        self.init_seed = seed;
        self
    }

    /// Forces every worker's neighbor searches onto one backend instead of
    /// the cost-model choice (the programmatic form of `MESORASI_SEARCH`).
    /// Every backend is exact, so this changes where search time goes,
    /// never the inference results — useful for benchmarking and for
    /// pinning behaviour in latency-sensitive deployments.
    pub fn search_backend(mut self, backend: SearchBackend) -> Self {
        self.search = Some(backend);
        self
    }

    /// Per-worker, per-plan NIT sample-cache capacity (default
    /// [`mesorasi_core::DEFAULT_SAMPLE_CACHE_CAP`]; 0 disables caching).
    /// Eviction is true LRU — hot samples survive unbounded fresh traffic —
    /// so servers sizing for memory can shrink this without re-introducing
    /// a periodic cold-cache latency cliff.
    pub fn sample_cache_cap(mut self, cap: usize) -> Self {
        self.sample_cache_cap = Some(cap);
        self
    }

    /// Execution dtype for every worker engine. The default (also when
    /// `MESORASI_DTYPE` is unset) is [`Dtype::F32`] — the native fast
    /// tier. [`Dtype::F64`] selects shadow-precision execution: the f32
    /// plan still runs and derives all neighbor structure (searches are
    /// dtype-invariant), then a sequential f64 replay produces the
    /// outputs, rounded to f32 once. Bit-identity contracts (tape vs.
    /// planned, thread invariance) hold *within* each dtype; use f64 runs
    /// to measure what f32 execution costs in end-task accuracy.
    pub fn dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = Some(dtype);
        self
    }

    /// Per-tile point budget of the tiled streaming hot path (default
    /// [`DEFAULT_TILE_BUDGET`], overridable via `MESORASI_TILE_BUDGET`).
    /// Every worker engine splits per-frame derivation — input-row fills
    /// and batch searches — into fixed tiles of this many points,
    /// pipelined across the `mesorasi-par` workers with a bounded
    /// in-flight window. A scheduling knob only: results are bit-identical
    /// at every budget and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn tile_budget(mut self, budget: usize) -> Self {
        assert!(budget > 0, "tile budget must be positive");
        self.tile_budget = Some(Some(budget));
        self
    }

    /// Disables frame tiling: per-frame derivation falls back to
    /// cost-model chunking (the pre-tiling reference path).
    pub fn untiled(mut self) -> Self {
        self.tile_budget = Some(None);
        self
    }

    /// Octree LOD level for every worker's coordinate searches (default 0
    /// = exact). Level `ℓ ≥ 1` lets octree-served searches answer from
    /// depth-`ℓ` representative subsamples — approximate neighborhoods at
    /// lower latency on large clouds. Searches served by other backends
    /// stay exact, so this only affects clouds the planner (or a forced
    /// `octree` backend) routes to the octree.
    pub fn lod(mut self, lod: usize) -> Self {
        self.lod = lod;
        self
    }

    /// Pages octree leaf payloads through a file-backed LRU bounded by
    /// `bytes` of residency per worker (the out-of-core mode; default:
    /// resident, or `MESORASI_PAGER_BUDGET`). Paging is bit-identical to
    /// resident execution at every budget — only memory and latency move.
    pub fn pager_budget(mut self, bytes: usize) -> Self {
        self.pager_budget = Some(Some(bytes));
        self
    }

    /// Forces octree leaf payloads resident, overriding any
    /// `MESORASI_PAGER_BUDGET` in the environment.
    pub fn unpaged(mut self) -> Self {
        self.pager_budget = Some(None);
        self
    }

    /// Builds the session. Plan compilation is lazy: each worker engine
    /// records the network on first contact with a given input shape.
    pub fn build(self) -> Session {
        let net = match self.source {
            NetSource::Owned(net) => net,
            NetSource::Kind(kind) => {
                let mut rng = mesorasi_pointcloud::seeded_rng(self.init_seed);
                if self.paper_scale {
                    kind.build_paper(&mut rng)
                } else {
                    kind.build_small(self.classes, &mut rng)
                }
            }
        };
        let workers = self.workers.unwrap_or_else(par::current_threads).max(1);
        let domain = net.domain();
        let planner = match self.search {
            Some(backend) => SearchPlanner::forced(backend),
            None => SearchPlanner::from_env(),
        };
        let dtype = self.dtype.unwrap_or_else(dtype_from_env);
        let tile_budget = self.tile_budget.unwrap_or_else(tile_budget_from_env);
        Session {
            net,
            strategy: self.strategy,
            seed: self.seed,
            domain,
            dtype,
            tile_budget,
            engines: (0..workers)
                .map(|_| {
                    let mut engine = PlanEngine::with_planner(planner);
                    if let Some(cap) = self.sample_cache_cap {
                        engine.set_sample_cache_cap(cap);
                    }
                    engine.set_dtype(dtype);
                    engine.set_tile_budget(tile_budget);
                    engine.set_lod(self.lod);
                    if let Some(budget) = self.pager_budget {
                        engine.set_pager_budget(budget);
                    }
                    Worker { engine: Mutex::new(engine), holder: AtomicU64::new(0) }
                })
                .collect(),
            next: AtomicUsize::new(0),
        }
    }
}

/// The fallible checkout paths' error: every worker engine is already
/// checked out **by the calling thread** (via live [`FrameStream`]s), so
/// blocking would self-deadlock — `std::sync::Mutex` is not re-entrant.
///
/// Returned by [`Session::try_infer`] / [`Session::try_frames`]; the
/// infallible paths panic with the same message instead of hanging. Server
/// handler code should use the `try_` variants and surface this as a typed
/// "unavailable" response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckoutError {
    workers: usize,
}

impl CheckoutError {
    /// Pool size at the time of the failed checkout.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl std::fmt::Display for CheckoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all {} worker engine(s) are already checked out by this thread \
             (live FrameStream handles?); blocking would self-deadlock — drop \
             a handle or grow the pool via SessionBuilder::workers",
            self.workers
        )
    }
}

impl std::error::Error for CheckoutError {}

/// One pool slot: the engine plus the token of the thread currently
/// holding it (0 = unheld). The holder tag is what lets checkout detect
/// same-thread re-entrancy instead of deadlocking.
struct Worker {
    engine: Mutex<PlanEngine>,
    holder: AtomicU64,
}

/// A process-unique, never-zero token for the calling thread.
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// A checked-out engine: the mutex guard plus the holder tag that marks it
/// as owned by this thread for the lifetime of the guard.
struct EngineGuard<'s> {
    guard: MutexGuard<'s, PlanEngine>,
    holder: &'s AtomicU64,
}

impl<'s> EngineGuard<'s> {
    fn new(worker: &'s Worker, guard: MutexGuard<'s, PlanEngine>, token: u64) -> EngineGuard<'s> {
        worker.holder.store(token, Ordering::Release);
        EngineGuard { guard, holder: &worker.holder }
    }
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        self.holder.store(0, Ordering::Release);
    }
}

impl std::ops::Deref for EngineGuard<'_> {
    type Target = PlanEngine;

    fn deref(&self) -> &PlanEngine {
        &self.guard
    }
}

impl std::ops::DerefMut for EngineGuard<'_> {
    fn deref_mut(&mut self) -> &mut PlanEngine {
        &mut self.guard
    }
}

/// An owned, thread-safe inference session over one frozen
/// `(network, strategy, seed)` combination.
///
/// See the [module docs](self) for the lifecycle; build one with
/// [`SessionBuilder`]. All inference methods take `&self`, so an
/// `Arc<Session>` can serve concurrent callers; results are deterministic
/// and bit-identical to the tape regardless of thread count, engine
/// checkout order, or batch chunking.
pub struct Session {
    net: Box<dyn PointCloudNetwork>,
    strategy: Strategy,
    seed: u64,
    domain: Domain,
    dtype: Dtype,
    tile_budget: Option<usize>,
    engines: Vec<Worker>,
    next: AtomicUsize,
}

impl Session {
    /// The owned network.
    pub fn network(&self) -> &dyn PointCloudNetwork {
        self.net.as_ref()
    }

    /// Consumes the session, returning the network (e.g. to resume
    /// training after an evaluation pass).
    pub fn into_network(self) -> Box<dyn PointCloudNetwork> {
        self.net
    }

    /// The execution strategy every forward runs under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The centroid-sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The execution dtype every worker engine runs at.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// The per-tile point budget every worker engine streams under
    /// (`None` when tiling is disabled).
    pub fn tile_budget(&self) -> Option<usize> {
        self.tile_budget
    }

    /// The task domain, deciding which [`Inference`] variant is returned.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Engine-pool size.
    pub fn workers(&self) -> usize {
        self.engines.len()
    }

    /// Runs one planned forward on `cloud` and returns the domain-typed
    /// result.
    ///
    /// # Panics
    ///
    /// Panics when the network's forward cannot be planned (see
    /// [`PlanEngine::run`]) — never the case for the seven built-in
    /// networks.
    pub fn infer(&self, cloud: &PointCloud) -> Inference {
        let mut engine = self.checkout_engine();
        self.run_on(&mut engine, cloud)
    }

    /// Like [`Session::infer`], but returns a typed [`CheckoutError`]
    /// instead of panicking when every worker engine is already held by
    /// the calling thread (live [`FrameStream`]s) — the variant server
    /// handlers should use, so a would-be deadlock becomes a reportable
    /// "unavailable" condition.
    pub fn try_infer(&self, cloud: &PointCloud) -> Result<Inference, CheckoutError> {
        let mut engine = self.try_checkout_engine()?;
        Ok(self.run_on(&mut engine, cloud))
    }

    /// Runs a batch data-parallel over the worker pool: the batch is split
    /// into per-worker chunks, each chunk replays against its own engine's
    /// arena (amortizing plan compilation and the NIT cache across the
    /// chunk), and results come back in input order. Accepts owned clouds
    /// or references (`&[PointCloud]`, `&[&PointCloud]`).
    pub fn infer_batch<C>(&self, clouds: &[C]) -> Vec<Inference>
    where
        C: Borrow<PointCloud> + Sync,
    {
        if clouds.is_empty() {
            return Vec::new();
        }
        let workers = self.engines.len().min(par::current_threads()).min(clouds.len()).max(1);
        let chunk = clouds.len().div_ceil(workers);
        let n_chunks = clouds.len().div_ceil(chunk);
        let mut results: Vec<Vec<Inference>> = (0..n_chunks).map(|_| Vec::new()).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .zip(clouds.chunks(chunk))
            .map(|(out, part)| {
                Box::new(move || {
                    let mut engine = self.checkout_engine();
                    out.extend(part.iter().map(|cloud| self.run_on(&mut engine, cloud.borrow())));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        par::par_run_tasks(tasks);
        results.into_iter().flatten().collect()
    }

    /// Lazily infers a stream of clouds, yielding one result per input in
    /// order. Each item runs like [`Session::infer`]; for throughput,
    /// collect chunks and call [`Session::infer_batch`] instead — and for
    /// *frame sequences* (consecutive captures of a scene, where inputs
    /// rarely repeat), use [`Session::infer_frames`] / [`Session::frames`],
    /// which reuse search state across frames instead of caching samples.
    pub fn infer_stream<'s, I>(&'s self, clouds: I) -> impl Iterator<Item = Inference> + 's
    where
        I: IntoIterator + 's,
        I::Item: Borrow<PointCloud>,
    {
        clouds.into_iter().map(move |cloud| self.infer(cloud.borrow()))
    }

    /// Checks out one worker engine for a frame sequence. All frames run
    /// on that engine's streaming path: the per-sample NIT cache is
    /// bypassed (frames rarely repeat) and neighbor-search indices
    /// warm-start from the previous frame — capacity reused, contents
    /// rebuilt — so a warm same-shaped stream performs zero heap
    /// allocations per frame in search and tensor execution alike.
    /// Results are bit-identical to [`Session::infer`] on the same cloud.
    ///
    /// The handle holds the engine until dropped; other workers keep
    /// serving [`Session::infer`] / [`Session::infer_batch`] concurrently.
    ///
    /// **Drop the handle before calling the session from the same thread
    /// again.** While a `FrameStream` is live, methods that visit *every*
    /// worker ([`Session::warm`], [`Session::arena_stats`],
    /// [`Session::search_counters`], [`Session::cache_stats`]) — and, on a
    /// session whose other workers are all busy, [`Session::infer`] itself
    /// — would block on the held engine; from the holding thread that is a
    /// self-deadlock, since `std::sync::Mutex` is not re-entrant. The
    /// session detects this and **panics with a clear message instead of
    /// hanging**; use [`Session::try_infer`] / [`Session::try_frames`] to
    /// get a typed [`CheckoutError`] instead.
    pub fn frames(&self) -> FrameStream<'_> {
        FrameStream { session: self, engine: self.checkout_engine() }
    }

    /// Like [`Session::frames`], but returns a typed [`CheckoutError`]
    /// instead of panicking when every worker engine is already held by
    /// the calling thread.
    pub fn try_frames(&self) -> Result<FrameStream<'_>, CheckoutError> {
        Ok(FrameStream { session: self, engine: self.try_checkout_engine()? })
    }

    /// Convenience over [`Session::frames`]: lazily infers a frame
    /// sequence on one engine, yielding results in order.
    ///
    /// The engine is checked out **eagerly** and held until the returned
    /// iterator is dropped — the same-thread re-entrancy caveat on
    /// [`Session::frames`] applies for as long as the iterator lives.
    pub fn infer_frames<'s, I>(&'s self, clouds: I) -> impl Iterator<Item = Inference> + 's
    where
        I: IntoIterator + 's,
        I::Item: Borrow<PointCloud>,
    {
        let mut frames = self.frames();
        clouds.into_iter().map(move |cloud| frames.infer(cloud.borrow()))
    }

    /// Pre-warms every worker engine on `cloud`: compiles the plan for its
    /// shape, fills the per-sample NIT cache, **and** primes the search
    /// state — per-space indices and the streaming buffers — so later
    /// [`Session::infer`] / [`Session::infer_batch`] / [`Session::frames`]
    /// traffic on same-shaped inputs starts from the fully warm steady
    /// state no matter which engine serves it. Call before
    /// timing-sensitive traffic; purely an optimization.
    pub fn warm(&self, cloud: &PointCloud) {
        for i in 0..self.engines.len() {
            let mut engine = self.lock_pool_engine(i);
            let _ = self.run_on(&mut engine, cloud);
            let _ = self.exec(&mut engine, cloud, true);
        }
    }

    /// Statistics of the plan compiled for `n_points` inputs, from the
    /// first worker that has compiled that shape: tensor-arena usage plus
    /// search-arena bytes, traffic counters, and NIT-cache traffic.
    pub fn arena_stats(&self, n_points: usize) -> Option<EngineStats> {
        (0..self.engines.len()).find_map(|i| self.lock_pool_engine(i).stats(n_points))
    }

    /// Search-traffic counters summed across the worker pool — what the
    /// bench harness reads to report distance evaluations and the index
    /// build/query time split of real inference traffic.
    pub fn search_counters(&self) -> SearchCounters {
        let mut total = SearchCounters::default();
        for i in 0..self.engines.len() {
            total.add(&self.lock_pool_engine(i).search_counters());
        }
        total
    }

    /// NIT sample-cache traffic (hits / misses / LRU evictions) summed
    /// across the worker pool — what a server reports per connection to
    /// show whether traffic is being served from the warm steady state.
    pub fn cache_stats(&self) -> SampleCacheStats {
        let mut total = SampleCacheStats::default();
        for i in 0..self.engines.len() {
            total.add(&self.lock_pool_engine(i).sample_cache_stats());
        }
        total
    }

    /// Total plans compiled across the worker pool (one per worker per
    /// distinct input shape it has seen).
    pub fn compiled_plans(&self) -> usize {
        (0..self.engines.len()).map(|i| self.lock_pool_engine(i).compiled_plans()).sum()
    }

    /// Blocking lock of one pool engine for the whole-pool visitors —
    /// panics (rather than self-deadlocking) when the calling thread
    /// already holds that engine through a live [`FrameStream`].
    fn lock_pool_engine(&self, i: usize) -> MutexGuard<'_, PlanEngine> {
        let w = &self.engines[i];
        assert!(
            w.holder.load(Ordering::Acquire) != thread_token(),
            "worker engine #{i} is already checked out by this thread (a live \
             FrameStream?); locking it again would self-deadlock — drop the \
             handle before calling whole-pool session methods"
        );
        lock_unpoisoned(&w.engine)
    }

    /// Picks an engine: any free worker first, else round-robin blocking —
    /// callers beyond the pool size queue on an engine rather than failing.
    /// Skips engines the calling thread already holds; errs when that is
    /// all of them (same-thread re-entrancy, which would self-deadlock).
    fn try_checkout_engine(&self) -> Result<EngineGuard<'_>, CheckoutError> {
        let token = thread_token();
        for w in &self.engines {
            // A poisoned engine is free, not busy (see [`lock_unpoisoned`]).
            match w.engine.try_lock() {
                Ok(guard) => return Ok(EngineGuard::new(w, guard, token)),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return Ok(EngineGuard::new(w, p.into_inner(), token))
                }
                Err(std::sync::TryLockError::WouldBlock) => {}
            }
        }
        // All busy: block on a round-robin engine — but never on one this
        // thread itself holds. The round-robin counter visits every slot
        // once across `n` probes, so a skippable engine costs one probe.
        let n = self.engines.len();
        for _ in 0..n {
            let i = self.next.fetch_add(1, Ordering::Relaxed) % n;
            let w = &self.engines[i];
            if w.holder.load(Ordering::Acquire) == token {
                continue;
            }
            return Ok(EngineGuard::new(w, lock_unpoisoned(&w.engine), token));
        }
        Err(CheckoutError { workers: n })
    }

    /// Infallible checkout: panics with the [`CheckoutError`] message on
    /// same-thread re-entrancy instead of deadlocking.
    fn checkout_engine(&self) -> EngineGuard<'_> {
        self.try_checkout_engine().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one forward on `engine` — the plan-and-cache path when
    /// `streamed` is false, the cache-bypassing streaming path otherwise.
    fn exec<'e>(
        &self,
        engine: &'e mut PlanEngine,
        cloud: &PointCloud,
        streamed: bool,
    ) -> mesorasi_core::engine::PlannedOutputs<'e> {
        let net = self.net.as_ref();
        let (strategy, seed) = (self.strategy, self.seed);
        let record = move |g: &mut Graph, c: &PointCloud| -> Vec<VarId> {
            net.session_outputs(g, c, strategy, seed)
        };
        if streamed {
            engine.run_streamed(cloud, &record)
        } else {
            engine.run(cloud, &record)
        }
    }

    fn package(&self, out: mesorasi_core::engine::PlannedOutputs<'_>) -> Inference {
        match self.domain {
            Domain::Classification => {
                Inference::Classification(Logits { scores: out.get(0).clone() })
            }
            Domain::Segmentation => {
                Inference::Segmentation(PerPointLabels { logits: out.get(0).clone() })
            }
            Domain::Detection => {
                assert!(
                    out.len() >= 2,
                    "a detection network's session_outputs must yield [seg_logits, box_params]"
                );
                Inference::Detection(Boxes3D {
                    seg_logits: out.get(0).clone(),
                    params: out.get(1).clone(),
                })
            }
        }
    }

    /// Like [`Session::package`] but recycling `dst`'s buffers: when the
    /// variant already matches the session's domain, output matrices are
    /// copied in place (zero allocation once capacities are warm).
    fn package_into(&self, out: mesorasi_core::engine::PlannedOutputs<'_>, dst: &mut Inference) {
        match (self.domain, &mut *dst) {
            (Domain::Classification, Inference::Classification(l)) => {
                l.scores.copy_from(out.get(0));
            }
            (Domain::Segmentation, Inference::Segmentation(s)) => {
                s.logits.copy_from(out.get(0));
            }
            (Domain::Detection, Inference::Detection(d)) => {
                assert!(
                    out.len() >= 2,
                    "a detection network's session_outputs must yield [seg_logits, box_params]"
                );
                d.seg_logits.copy_from(out.get(0));
                d.params.copy_from(out.get(1));
            }
            (_, other) => *other = self.package(out),
        }
    }

    fn run_on(&self, engine: &mut PlanEngine, cloud: &PointCloud) -> Inference {
        let out = self.exec(engine, cloud, false);
        self.package(out)
    }
}

/// A frame-sequence handle over one checked-out worker engine; see
/// [`Session::frames`] (including its same-thread re-entrancy caveat).
/// Frames run in call order on the engine's streaming path, warm-starting
/// search indices from the previous frame.
pub struct FrameStream<'s> {
    session: &'s Session,
    engine: EngineGuard<'s>,
}

impl FrameStream<'_> {
    /// Infers the next frame. Bit-identical to [`Session::infer`] on the
    /// same cloud.
    pub fn infer(&mut self, cloud: &PointCloud) -> Inference {
        let out = self.session.exec(&mut self.engine, cloud, true);
        self.session.package(out)
    }

    /// Infers the next frame into `out`, recycling its buffers — the
    /// fully allocation-free serving path: once the stream is warm (same
    /// frame shape, matching `out` variant), a call performs **zero** heap
    /// allocations end to end, neighbor search included.
    pub fn infer_into(&mut self, cloud: &PointCloud, out: &mut Inference) {
        let planned = self.session.exec(&mut self.engine, cloud, true);
        self.session.package_into(planned, out);
    }
}

impl std::fmt::Debug for FrameStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameStream").field("session", &self.session).finish()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("network", &self.net.name())
            .field("strategy", &self.strategy)
            .field("seed", &self.seed)
            .field("domain", &self.domain)
            .field("workers", &self.engines.len())
            .finish()
    }
}

/// A poisoned engine only means another thread panicked mid-forward; the
/// arena is overwritten from scratch on the next run, so recovery is safe.
fn lock_unpoisoned<'m>(m: &'m Mutex<PlanEngine>) -> MutexGuard<'m, PlanEngine> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpointnet::FPointNet;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
    use std::sync::Arc;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<Inference>();
    };

    #[test]
    fn session_infer_matches_tape_for_classification_and_segmentation() {
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        for kind in [NetworkKind::PointNetPPClassification, NetworkKind::DgcnnSegmentation] {
            let net = kind.build_small(6, &mut rng);
            let session = SessionBuilder::from_network_ref(net.as_ref())
                .strategy(Strategy::Delayed)
                .seed(9)
                // Bit-identity to the tape is a per-dtype (f32) contract.
                .dtype(Dtype::F32)
                .build();
            for cloud_seed in [1, 2] {
                let cloud = sample_shape(ShapeClass::Guitar, net.input_points(), cloud_seed);
                let mut g = Graph::new();
                let expected = net.forward(&mut g, &cloud, Strategy::Delayed, 9);
                let out = session.infer(&cloud);
                assert_eq!(out.domain(), kind.domain());
                assert_eq!(
                    out.logits(),
                    g.value(expected.logits),
                    "{} cloud {cloud_seed}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn detection_sessions_expose_boxes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        let net = FPointNet::small(&mut rng);
        let frustums = crate::datasets::frustums(2, 128, 5);
        let session = SessionBuilder::from_network_ref(&net)
            .strategy(Strategy::Original)
            .seed(11)
            .dtype(Dtype::F32)
            .build();
        for ex in frustums.iter().take(3) {
            let mut g = Graph::new();
            let det = net.forward_detection(&mut g, &ex.cloud, Strategy::Original, 11);
            let boxes = session.infer(&ex.cloud).into_detection();
            assert_eq!(boxes.seg_logits(), g.value(det.seg_logits));
            assert_eq!(boxes.params(), g.value(det.box_params));
            assert_eq!(boxes.mask_labels().len(), ex.cloud.len());
        }
    }

    #[test]
    fn infer_batch_and_stream_match_single_infer_in_order() {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(4)
            .workers(2)
            .build();
        let n = session.network().input_points();
        let clouds: Vec<PointCloud> = (0..5).map(|s| sample_shape(ShapeClass::Car, n, s)).collect();
        let singles: Vec<Inference> = clouds.iter().map(|c| session.infer(c)).collect();
        assert_eq!(session.infer_batch(&clouds), singles);
        let refs: Vec<&PointCloud> = clouds.iter().collect();
        assert_eq!(session.infer_batch(&refs), singles);
        let streamed: Vec<Inference> = session.infer_stream(clouds.iter()).collect();
        assert_eq!(streamed, singles);
    }

    #[test]
    fn frame_stream_matches_single_infer_per_frame() {
        // Streaming bypasses the NIT cache and reuses search indices
        // across frames; results must stay bit-identical to infer().
        for kind in [NetworkKind::PointNetPPClassification, NetworkKind::DgcnnClassification] {
            let session = SessionBuilder::from_kind(kind).classes(4).workers(1).build();
            let n = session.network().input_points();
            let clouds: Vec<PointCloud> =
                (0..4).map(|s| sample_shape(ShapeClass::Airplane, n, s)).collect();
            let singles: Vec<Inference> = clouds.iter().map(|c| session.infer(c)).collect();
            let framed: Vec<Inference> = session.infer_frames(clouds.iter()).collect();
            assert_eq!(framed, singles, "{}", kind.name());
        }
    }

    #[test]
    fn frame_infer_into_recycles_the_result() {
        let session =
            SessionBuilder::from_kind(NetworkKind::PointNetPPClassification).classes(5).build();
        let n = session.network().input_points();
        let clouds: Vec<PointCloud> =
            (0..3).map(|s| sample_shape(ShapeClass::Car, n, s + 10)).collect();
        let expected: Vec<Inference> = clouds.iter().map(|c| session.infer(c)).collect();
        let mut frames = session.frames();
        let mut out = frames.infer(&clouds[0]);
        for (cloud, want) in clouds.iter().zip(&expected) {
            frames.infer_into(cloud, &mut out);
            assert_eq!(&out, want);
        }
    }

    #[test]
    fn forced_search_backends_do_not_change_results() {
        let mut rng = mesorasi_pointcloud::seeded_rng(8);
        let net = crate::pointnetpp::PointNetPP::classification_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Guitar, net.input_points(), 3);
        let reference = SessionBuilder::from_network_ref(&net).build().infer(&cloud);
        for backend in [SearchBackend::BruteForce, SearchBackend::KdTree, SearchBackend::Grid] {
            let session = SessionBuilder::from_network_ref(&net).search_backend(backend).build();
            assert_eq!(session.infer(&cloud), reference, "forced {backend:?} drifted");
        }
    }

    #[test]
    fn warm_primes_search_state_and_stats_report_it() {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(2)
            // Forced kd-tree so index builds are observable even at the
            // small scale where the cost model prefers brute force.
            .search_backend(SearchBackend::KdTree)
            .build();
        let n = session.network().input_points();
        let cloud = sample_shape(ShapeClass::Chair, n, 2);
        session.warm(&cloud);
        let stats = session.arena_stats(n).expect("warmed shape is compiled");
        assert!(stats.search_bytes > 0, "warming must build search state");
        assert!(stats.arena.peak_bytes > 0);
        let counters = session.search_counters();
        assert!(counters.query_calls > 0);
        assert!(counters.index_builds > 0, "warming builds indices");
        assert!(counters.distance_evals > 0);
    }

    #[test]
    fn shared_session_is_deterministic_across_threads() {
        let session = Arc::new(
            SessionBuilder::from_kind(NetworkKind::DgcnnClassification)
                .classes(4)
                .workers(2)
                .build(),
        );
        let n = session.network().input_points();
        let clouds: Vec<PointCloud> =
            (0..4).map(|s| sample_shape(ShapeClass::Lamp, n, s)).collect();
        let reference: Vec<Inference> = clouds.iter().map(|c| session.infer(c)).collect();
        let results: Vec<Vec<Inference>> = std::thread::scope(|scope| {
            (0..2)
                .map(|_| {
                    let session = Arc::clone(&session);
                    let clouds = &clouds;
                    scope.spawn(move || clouds.iter().map(|c| session.infer(c)).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("inference worker"))
                .collect()
        });
        for (t, got) in results.iter().enumerate() {
            assert_eq!(got, &reference, "thread {t} drifted");
        }
    }

    /// Delegates to a real network but panics on the first forward —
    /// poisoning the engine mutex mid-recording, exactly the failure the
    /// checkout paths must recover from.
    struct FlakyOnce {
        inner: crate::pointnetpp::PointNetPP,
        tripped: std::sync::atomic::AtomicBool,
    }

    impl PointCloudNetwork for FlakyOnce {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn input_points(&self) -> usize {
            self.inner.input_points()
        }

        fn domain(&self) -> Domain {
            self.inner.domain()
        }

        fn forward(
            &self,
            g: &mut Graph,
            cloud: &PointCloud,
            strategy: Strategy,
            seed: u64,
        ) -> crate::NetForward {
            if !self.tripped.swap(true, std::sync::atomic::Ordering::SeqCst) {
                panic!("injected first-forward failure");
            }
            self.inner.forward(g, cloud, strategy, seed)
        }

        fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
            Box::new(FlakyOnce {
                inner: self.inner.clone(),
                tripped: std::sync::atomic::AtomicBool::new(true),
            })
        }

        fn params_mut(&mut self) -> Vec<&mut mesorasi_nn::Param> {
            self.inner.params_mut()
        }
    }

    #[test]
    fn a_panicked_forward_does_not_wedge_the_session() {
        let mut rng = mesorasi_pointcloud::seeded_rng(30);
        let inner = crate::pointnetpp::PointNetPP::classification_small(3, &mut rng);
        let reference = inner.clone();
        let flaky = FlakyOnce { inner, tripped: std::sync::atomic::AtomicBool::new(false) };
        let session =
            SessionBuilder::from_network(flaky).seed(5).workers(2).dtype(Dtype::F32).build();
        let cloud = sample_shape(ShapeClass::Chair, reference.input_points(), 8);

        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = session.infer(&cloud);
        }));
        assert!(first.is_err(), "the injected failure must surface");

        // The panicked call poisoned its engine's mutex mid-recording; the
        // session must treat that engine as free and recover on retry.
        let mut g = Graph::new();
        let want = reference.forward(&mut g, &cloud, Strategy::Delayed, 5);
        let got = session.infer(&cloud).into_classification();
        assert_eq!(got.matrix(), g.value(want.logits));
    }

    #[test]
    fn reentrant_checkout_is_a_typed_error_not_a_deadlock() {
        // With a single worker held by a live FrameStream on this thread,
        // the old code deadlocked; now the try_ paths return a typed
        // error and the infallible paths panic with the same message.
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(1)
            .build();
        let n = session.network().input_points();
        let cloud = sample_shape(ShapeClass::Chair, n, 1);
        let mut frames = session.try_frames().expect("free pool checks out");
        let _ = frames.infer(&cloud);

        let err = session.try_infer(&cloud).expect_err("all engines self-held");
        assert_eq!(err.workers(), 1);
        assert!(err.to_string().contains("self-deadlock"), "unhelpful message: {err}");
        assert!(session.try_frames().is_err());

        // Dropping the stream frees the engine for the same thread again.
        drop(frames);
        let _ = session.try_infer(&cloud).expect("freed engine checks out");
    }

    #[test]
    fn whole_pool_visitors_panic_loudly_when_self_held() {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(1)
            .build();
        let _frames = session.frames();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = session.search_counters();
        }))
        .expect_err("must not silently deadlock");
        let msg = err.downcast_ref::<String>().expect("panic carries a message");
        assert!(msg.contains("self-deadlock"), "unhelpful message: {msg}");
    }

    #[test]
    fn a_held_frame_stream_does_not_block_other_workers() {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(2)
            .build();
        let n = session.network().input_points();
        let cloud = sample_shape(ShapeClass::Chair, n, 1);
        let mut frames = session.frames();
        let want = frames.infer(&cloud);
        // The second worker serves the same thread while the first is held.
        let got = session.try_infer(&cloud).expect("second worker is free");
        assert_eq!(got, want);
    }

    #[test]
    fn sample_cache_cap_knob_reaches_the_engines() {
        let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(1)
            .sample_cache_cap(2)
            .build();
        let n = session.network().input_points();
        let clouds: Vec<PointCloud> = (0..4).map(|s| sample_shape(ShapeClass::Car, n, s)).collect();
        for c in &clouds {
            let _ = session.infer(c);
        }
        let stats = session.cache_stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2, "LRU evicts one at a time past the cap");
        let per_shape = session.arena_stats(n).expect("shape compiled");
        assert_eq!(per_shape.cache.capacity, 2);
    }

    #[test]
    fn tile_budget_knob_reaches_the_engines_and_stays_bit_identical() {
        // Default sessions are tiled; explicit budgets and the untiled
        // reference path must all produce bit-identical inference.
        let n;
        let want;
        {
            let untiled = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(3)
                .workers(1)
                .untiled()
                .build();
            assert_eq!(untiled.tile_budget(), None);
            n = untiled.network().input_points();
            let cloud = sample_shape(ShapeClass::Chair, n, 1);
            want = untiled.frames().infer(&cloud);
        }
        let cloud = sample_shape(ShapeClass::Chair, n, 1);
        let default_session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(3)
            .workers(1)
            .build();
        assert_eq!(default_session.tile_budget(), Some(DEFAULT_TILE_BUDGET));
        assert_eq!(default_session.frames().infer(&cloud), want);
        for budget in [64, n, n + 1] {
            let tiled = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(3)
                .workers(1)
                .tile_budget(budget)
                .build();
            assert_eq!(tiled.tile_budget(), Some(budget));
            assert_eq!(tiled.frames().infer(&cloud), want, "budget {budget}");
            let stats = tiled.arena_stats(n).expect("shape compiled");
            assert_eq!(stats.tile_budget, Some(budget), "budget must reach the engines");
        }
    }

    #[test]
    #[should_panic(expected = "tile budget must be positive")]
    fn zero_tile_budget_knob_panics() {
        let _ = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification).tile_budget(0);
    }

    #[test]
    fn into_network_returns_the_owned_network() {
        let session = SessionBuilder::from_kind(NetworkKind::Ldgcnn).classes(3).build();
        let net = session.into_network();
        assert_eq!(net.name(), "LDGCNN");
        assert_eq!(net.domain(), Domain::Classification);
    }

    #[test]
    #[should_panic(expected = "expected a detection result")]
    fn wrong_domain_unwrap_panics_clearly() {
        let session = SessionBuilder::from_kind(NetworkKind::DensePoint).classes(3).build();
        let cloud = sample_shape(ShapeClass::Chair, session.network().input_points(), 1);
        let _ = session.infer(&cloud).into_detection();
    }
}
