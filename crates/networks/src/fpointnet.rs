//! F-PointNet \[41\]: frustum-based 3-D object detection.
//!
//! The pipeline: a 2-D detector proposes a frustum (simulated here by
//! `mesorasi-pointcloud::lidar::Scene::frustum`); a PointNet++-style
//! network segments the frustum's points into object/background; a T-Net
//! regresses the object center from the masked points; and a box-estimation
//! network regresses the 3-D box parameters. Only the segmentation network
//! touches aggregation order; the T-Net and box network consume the masked
//! subset.
//!
//! Simplifications vs \[41\] (recorded in `DESIGN.md`): the mask used to
//! crop points for the T-Net/box network is the ground-truth mask during
//! both training and tracing (the original uses it during training only),
//! and the box parameterization is a single regression head (no
//! heading/size bins).

use crate::{NetForward, PointCloudNetwork};
use mesorasi_core::module::{Module, ModuleConfig, NeighborMode};
use mesorasi_core::runner::{self, ModuleState};
use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::layers::{NormMode, SharedMlp};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;
use rand::rngs::StdRng;

/// Output of the full detection pipeline.
#[derive(Debug)]
pub struct DetectionForward {
    /// Per-point object/background logits, `N × 2`.
    pub seg_logits: VarId,
    /// T-Net center residual, `1 × 3`.
    pub center: VarId,
    /// Box regression `1 × 7`: center residual (3), size residual (3),
    /// heading (1).
    pub box_params: VarId,
    /// The recorded workload.
    pub trace: NetworkTrace,
}

/// Seeds the box head's output bias with a car-sized prior
/// `(w ≈ h ≈ 1.5 m)` so early training predicts plausible boxes — the same
/// role the size-cluster anchors play in \[41\].
fn init_box_prior(head: &mut SharedMlp) {
    let bias = &mut head.last_layer_mut().bias;
    debug_assert_eq!(bias.value.cols(), 7);
    bias.value[(0, 3)] = 1.5;
    bias.value[(0, 4)] = 1.5;
}

/// The F-PointNet pipeline.
#[derive(Debug, Clone)]
pub struct FPointNet {
    input_points: usize,
    masked_points: usize,
    seg_sa: Vec<Module>,
    seg_fp: Vec<SharedMlp>,
    seg_head: SharedMlp,
    tnet: Module,
    tnet_head: SharedMlp,
    box_sa: Vec<Module>,
    box_head: SharedMlp,
}

impl FPointNet {
    /// Paper-scale pipeline: 1024-point frustums, 512 masked points.
    pub fn paper(rng: &mut StdRng) -> Self {
        let seg_sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "seg-sa1",
                    512,
                    64,
                    NeighborMode::CoordBall { radius: 0.25 },
                    vec![3, 64, 64, 128],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::offset(
                    "seg-sa2",
                    128,
                    64,
                    NeighborMode::CoordBall { radius: 0.45 },
                    vec![128, 128, 256],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::global("seg-sa3", vec![256, 256, 512, 1024]),
                NormMode::None,
                rng,
            ),
        ];
        let seg_fp = vec![
            SharedMlp::new(&[1024 + 256, 512, 512], NormMode::None, true, rng),
            SharedMlp::new(&[512 + 128, 512, 256], NormMode::None, true, rng),
            SharedMlp::new(&[256 + 3, 256, 128], NormMode::None, true, rng),
        ];
        let seg_head = SharedMlp::new(&[128, 128, 2], NormMode::None, false, rng);
        let tnet =
            Module::new(ModuleConfig::global("tnet", vec![3, 128, 256, 512]), NormMode::None, rng);
        let tnet_head = SharedMlp::new(&[512, 256, 3], NormMode::None, false, rng);
        let box_sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "box-sa1",
                    128,
                    32,
                    NeighborMode::CoordBall { radius: 0.3 },
                    vec![3, 128, 128, 256],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(ModuleConfig::global("box-sa2", vec![256, 256, 512]), NormMode::None, rng),
        ];
        let mut box_head = SharedMlp::new(&[512, 256, 7], NormMode::None, false, rng);
        init_box_prior(&mut box_head);
        FPointNet {
            input_points: 1024,
            masked_points: 512,
            seg_sa,
            seg_fp,
            seg_head,
            tnet,
            tnet_head,
            box_sa,
            box_head,
        }
    }

    /// Small trainable pipeline: 128-point frustums, 32 masked points.
    pub fn small(rng: &mut StdRng) -> Self {
        let seg_sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "seg-sa1",
                    48,
                    8,
                    NeighborMode::CoordBall { radius: 0.35 },
                    vec![3, 24, 32],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(ModuleConfig::global("seg-sa2", vec![32, 64]), NormMode::Feature, rng),
        ];
        let seg_fp = vec![
            SharedMlp::new(&[64 + 32, 48], NormMode::Feature, true, rng),
            SharedMlp::new(&[48 + 3, 32], NormMode::Feature, true, rng),
        ];
        let seg_head = SharedMlp::new(&[32, 2], NormMode::None, false, rng);
        let tnet =
            Module::new(ModuleConfig::global("tnet", vec![3, 32, 64]), NormMode::Feature, rng);
        let tnet_head = SharedMlp::new(&[64, 3], NormMode::None, false, rng);
        let box_sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "box-sa1",
                    16,
                    8,
                    NeighborMode::CoordBall { radius: 0.5 },
                    vec![3, 32, 48],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(ModuleConfig::global("box-sa2", vec![48, 64]), NormMode::Feature, rng),
        ];
        let mut box_head = SharedMlp::new(&[64, 7], NormMode::None, false, rng);
        init_box_prior(&mut box_head);
        FPointNet {
            input_points: 128,
            masked_points: 32,
            seg_sa,
            seg_fp,
            seg_head,
            tnet,
            tnet_head,
            box_sa,
            box_head,
        }
    }

    /// Indices of the `masked_points` points to crop for the T-Net and box
    /// network: foreground (label > 0) points, resampled with repetition to
    /// the fixed size; falls back to all points when no label is foreground.
    pub fn mask_indices(&self, cloud: &PointCloud) -> Vec<usize> {
        Self::mask_indices_for(self.masked_points, cloud)
    }

    fn mask_indices_for(masked_points: usize, cloud: &PointCloud) -> Vec<usize> {
        let mut out = Vec::new();
        Self::mask_indices_into(masked_points, cloud, &mut out);
        out
    }

    /// [`FPointNet::mask_indices_for`] writing into reusable storage. The
    /// foreground pool is accumulated directly in `out` and then resampled
    /// with repetition by reading `out`'s own earlier entries (which *are*
    /// the pool), so a warm buffer derives the mask with zero allocations.
    fn mask_indices_into(masked_points: usize, cloud: &PointCloud, out: &mut Vec<usize>) {
        out.clear();
        if let Some(labels) = cloud.labels() {
            out.extend((0..cloud.len()).filter(|&i| labels[i] > 0));
        }
        if out.is_empty() {
            out.extend(0..cloud.len());
        }
        let pool_len = out.len();
        if pool_len >= masked_points {
            out.truncate(masked_points);
        } else {
            for i in pool_len..masked_points {
                let repeat = out[i % pool_len];
                out.push(repeat);
            }
        }
    }

    /// The masked, recentered crop the T-Net and box network consume — a
    /// pure function of the sample cloud, which is what lets the inference
    /// plan re-derive it per sample.
    fn masked_centered(masked_points: usize, cloud: &PointCloud) -> PointCloud {
        let mut out = PointCloud::new();
        Self::masked_centered_into(masked_points, cloud, &mut Vec::new(), &mut out);
        out
    }

    /// [`FPointNet::masked_centered`] writing into caller-owned buffers —
    /// the streaming engine's per-frame derivation, allocation-free once
    /// `mask` and `out` are warm. Identical operation order to the
    /// allocating form (select, centroid, recenter), so the two derive
    /// bit-identical crops.
    fn masked_centered_into(
        masked_points: usize,
        cloud: &PointCloud,
        mask: &mut Vec<usize>,
        out: &mut PointCloud,
    ) {
        Self::mask_indices_into(masked_points, cloud, mask);
        cloud.select_into(mask, out);
        let centroid = out.centroid();
        for p in out.points_mut() {
            *p -= centroid;
        }
    }

    /// Runs the complete detection pipeline.
    pub fn forward_detection(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> DetectionForward {
        let mut trace = NetworkTrace::new("F-PointNet", strategy);

        // --- instance segmentation over the frustum -----------------------
        let mut states: Vec<ModuleState> = vec![ModuleState::from_cloud(g, cloud)];
        for (i, module) in self.seg_sa.iter().enumerate() {
            let out = runner::run_module(
                g,
                module,
                states.last().expect("non-empty"),
                strategy,
                seed.wrapping_add(i as u64),
            );
            trace.modules.push(out.trace);
            states.push(out.state);
        }
        let levels = states.len();
        let mut current = states[levels - 1].clone();
        for (j, fp_mlp) in self.seg_fp.iter().enumerate() {
            let fine = &states[levels - 2 - j];
            let (state, fp_trace) = runner::run_feature_propagation(
                g,
                fp_mlp,
                &current,
                &fine.positions,
                Some(fine.features),
                &format!("seg-fp{}", self.seg_fp.len() - j),
            );
            trace.modules.push(fp_trace);
            current = state;
        }
        let (seg_logits, head_trace) =
            runner::run_head(g, &self.seg_head, current.features, "seg-head");
        trace.modules.push(head_trace);

        // --- mask & recenter ----------------------------------------------
        let masked_points = self.masked_points;
        let centered = Self::masked_centered(masked_points, cloud);
        // The derivation owns its mask scratch (one per compiled plan);
        // warm streamed frames re-derive the crop without allocating.
        let mask_scratch = std::sync::Mutex::new(Vec::new());
        let masked_state = ModuleState::from_cloud_derived_into(
            g,
            &centered,
            std::sync::Arc::new(move |c: &PointCloud, out: &mut PointCloud| {
                let mut mask =
                    mask_scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                Self::masked_centered_into(masked_points, c, &mut mask, out);
            }),
        );

        // --- T-Net ----------------------------------------------------------
        let tnet_out =
            runner::run_module(g, &self.tnet, &masked_state, strategy, seed.wrapping_add(100));
        trace.modules.push(tnet_out.trace);
        let (center, tnet_head_trace) =
            runner::run_head(g, &self.tnet_head, tnet_out.state.features, "tnet-head");
        trace.modules.push(tnet_head_trace);

        // --- box estimation --------------------------------------------------
        let mut box_state = masked_state;
        for (i, module) in self.box_sa.iter().enumerate() {
            let out = runner::run_module(
                g,
                module,
                &box_state,
                strategy,
                seed.wrapping_add(200 + i as u64),
            );
            trace.modules.push(out.trace);
            box_state = out.state;
        }
        let (box_params, box_head_trace) =
            runner::run_head(g, &self.box_head, box_state.features, "box-head");
        trace.modules.push(box_head_trace);

        DetectionForward { seg_logits, center, box_params, trace }
    }
}

impl PointCloudNetwork for FPointNet {
    fn name(&self) -> &str {
        "F-PointNet"
    }

    fn input_points(&self) -> usize {
        self.input_points
    }

    fn domain(&self) -> crate::Domain {
        crate::Domain::Detection
    }

    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
        Box::new(self.clone())
    }

    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward {
        let det = self.forward_detection(g, cloud, strategy, seed);
        NetForward { logits: det.seg_logits, trace: det.trace }
    }

    /// Detection sessions keep both pipeline heads: `[seg_logits,
    /// box_params]`, the order [`crate::session::Boxes3D`] expects.
    fn session_outputs(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> Vec<VarId> {
        let det = self.forward_detection(g, cloud, strategy, seed);
        vec![det.seg_logits, det.box_params]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for m in &mut self.seg_sa {
            params.extend(m.mlp.params_mut());
        }
        for fp in &mut self.seg_fp {
            params.extend(fp.params_mut());
        }
        params.extend(self.seg_head.params_mut());
        params.extend(self.tnet.mlp.params_mut());
        params.extend(self.tnet_head.params_mut());
        for m in &mut self.box_sa {
            params.extend(m.mlp.params_mut());
        }
        params.extend(self.box_head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::{Point3, PointCloud};

    /// A labelled synthetic frustum: background plane + a box of object
    /// points labelled 1.
    fn toy_frustum(n: usize, seed: u64) -> PointCloud {
        use rand::Rng;
        let mut rng = mesorasi_pointcloud::seeded_rng(seed);
        let mut cloud = PointCloud::new();
        for i in 0..n {
            if i % 3 == 0 {
                // object points in a tight box
                cloud.push_labelled(
                    Point3::new(
                        0.3 + rng.gen_range(-0.1f32..0.1),
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                    ),
                    1,
                );
            } else {
                cloud.push_labelled(
                    Point3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), -0.5),
                    0,
                );
            }
        }
        cloud
    }

    #[test]
    fn detection_pipeline_shapes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = FPointNet::small(&mut rng);
        let cloud = toy_frustum(128, 1);
        let mut g = Graph::new();
        let det = net.forward_detection(&mut g, &cloud, Strategy::Delayed, 3);
        assert_eq!(g.value(det.seg_logits).shape(), (128, 2));
        assert_eq!(g.value(det.center).shape(), (1, 3));
        assert_eq!(g.value(det.box_params).shape(), (1, 7));
    }

    #[test]
    fn mask_prefers_foreground_points() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = FPointNet::small(&mut rng);
        let cloud = toy_frustum(128, 2);
        let mask = net.mask_indices(&cloud);
        assert_eq!(mask.len(), 32);
        let labels = cloud.labels().unwrap();
        assert!(mask.iter().all(|&i| labels[i] == 1));
    }

    #[test]
    fn mask_falls_back_without_labels() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = FPointNet::small(&mut rng);
        let cloud = PointCloud::from_points(vec![Point3::ORIGIN; 40]);
        let mask = net.mask_indices(&cloud);
        assert_eq!(mask.len(), 32);
    }

    #[test]
    fn mask_into_matches_reference_resampling() {
        // Fewer foreground points than the mask size: the in-place
        // resampling-with-repetition must match `pool[i % pool.len()]`.
        let mut cloud = PointCloud::new();
        for i in 0..40u32 {
            cloud.push_labelled(Point3::new(i as f32, 0.0, 0.0), u32::from(i % 7 == 0));
        }
        let pool: Vec<usize> = (0..40).filter(|i| i % 7 == 0).collect();
        let want: Vec<usize> = (0..32).map(|i| pool[i % pool.len()]).collect();
        assert_eq!(FPointNet::mask_indices_for(32, &cloud), want);
        // The warm buffer reproduces the mask without growing.
        let mut buf = Vec::new();
        FPointNet::mask_indices_into(32, &cloud, &mut buf);
        assert_eq!(buf, want);
        let cap = buf.capacity();
        FPointNet::mask_indices_into(32, &cloud, &mut buf);
        assert_eq!(buf, want);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn masked_centered_into_matches_allocating_form() {
        let cloud = toy_frustum(128, 8);
        let want = FPointNet::masked_centered(32, &cloud);
        let mut mask = Vec::new();
        let mut out = PointCloud::new();
        FPointNet::masked_centered_into(32, &cloud, &mut mask, &mut out);
        assert!(out.content_eq(&want), "in-place crop must be bit-identical");
    }

    #[test]
    fn trace_covers_all_three_subnets() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = FPointNet::small(&mut rng);
        let cloud = toy_frustum(128, 3);
        let mut g = Graph::new();
        let det = net.forward_detection(&mut g, &cloud, Strategy::Original, 3);
        let names: Vec<&str> = det.trace.modules.iter().map(|m| m.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("seg-sa")));
        assert!(names.iter().any(|n| n.starts_with("tnet")));
        assert!(names.iter().any(|n| n.starts_with("box-")));
    }

    #[test]
    fn gradients_reach_box_head_and_seg_net() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = FPointNet::small(&mut rng);
        let cloud = toy_frustum(128, 4);
        let mut g = Graph::new();
        let det = net.forward_detection(&mut g, &cloud, Strategy::Delayed, 3);
        let labels: Vec<u32> = cloud.labels().unwrap().iter().map(|&l| l.min(1)).collect();
        let seg_loss = g.softmax_cross_entropy(det.seg_logits, labels);
        let target = g.input(mesorasi_tensor::Matrix::zeros(1, 7));
        let box_loss = g.mse(det.box_params, target);
        let total = g.add(seg_loss, box_loss);
        g.backward(total);
        assert!(g.param_grad(net.seg_sa[0].mlp.first_layer().weight.id()).is_some());
        assert!(g.param_grad(net.box_head.first_layer().weight.id()).is_some());
    }
}
