//! Conventional CNN baselines for the MAC comparison of Fig. 7.
//!
//! The paper compares the feature-computation MAC counts of point-cloud
//! networks on a 130 K-point frame against three classic CNNs on inputs
//! with "nearly 130 K pixels" (a ≈ 360×360 frame). These are layer-table
//! models — no weights, just arithmetic — because only the MAC counts
//! enter the figure.

use mesorasi_core::cost::conv2d_macs;

/// A convolutional layer description sufficient for MAC counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Output height = width (square feature maps assumed).
    pub out_hw: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// How many times this layer repeats (for ResNet blocks).
    pub repeat: usize,
}

impl ConvLayer {
    const fn new(out_hw: usize, c_in: usize, c_out: usize, kernel: usize, repeat: usize) -> Self {
        ConvLayer { out_hw, c_in, c_out, kernel, repeat }
    }

    /// MACs of this layer including repeats.
    pub fn macs(&self) -> u64 {
        conv2d_macs(self.out_hw, self.out_hw, self.c_in, self.c_out, self.kernel)
            * self.repeat as u64
    }
}

/// A CNN as a list of conv layers plus dense-layer MACs.
#[derive(Debug, Clone)]
pub struct CnnModel {
    /// Display name.
    pub name: &'static str,
    /// Convolutional layers.
    pub layers: Vec<ConvLayer>,
    /// Fully-connected MACs (AlexNet's classifier dominates its total).
    pub fc_macs: u64,
}

impl CnnModel {
    /// Total multiply-accumulate operations for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum::<u64>() + self.fc_macs
    }
}

/// AlexNet at 227×227 (≈0.7 GMACs + 59 M dense MACs).
pub fn alexnet() -> CnnModel {
    CnnModel {
        name: "AlexNet",
        layers: vec![
            ConvLayer::new(55, 3, 96, 11, 1),
            // conv2/4/5 are 2-group convolutions: effective c_in is halved.
            ConvLayer::new(27, 48, 256, 5, 1),
            ConvLayer::new(13, 256, 384, 3, 1),
            ConvLayer::new(13, 192, 384, 3, 1),
            ConvLayer::new(13, 192, 256, 3, 1),
        ],
        fc_macs: 9216 * 4096 + 4096 * 4096 + 4096 * 1000,
    }
}

/// ResNet-50 at 224×224 (≈4.1 GMACs).
pub fn resnet50() -> CnnModel {
    // Bottleneck stages; each block is 1×1 → 3×3 → 1×1 (+ a projection on
    // the first block of each stage, folded into repeats of the 1×1s).
    CnnModel {
        name: "ResNet-50",
        layers: vec![
            ConvLayer::new(112, 3, 64, 7, 1),
            // conv2_x: 3 blocks at 56×56, 64-64-256.
            ConvLayer::new(56, 64, 64, 1, 3),
            ConvLayer::new(56, 64, 64, 3, 3),
            ConvLayer::new(56, 64, 256, 1, 3),
            ConvLayer::new(56, 256, 64, 1, 2), // input projections of blocks 2-3
            // conv3_x: 4 blocks at 28×28, 128-128-512.
            ConvLayer::new(28, 256, 128, 1, 1),
            ConvLayer::new(28, 512, 128, 1, 3),
            ConvLayer::new(28, 128, 128, 3, 4),
            ConvLayer::new(28, 128, 512, 1, 4),
            // conv4_x: 6 blocks at 14×14, 256-256-1024.
            ConvLayer::new(14, 512, 256, 1, 1),
            ConvLayer::new(14, 1024, 256, 1, 5),
            ConvLayer::new(14, 256, 256, 3, 6),
            ConvLayer::new(14, 256, 1024, 1, 6),
            // conv5_x: 3 blocks at 7×7, 512-512-2048.
            ConvLayer::new(7, 1024, 512, 1, 1),
            ConvLayer::new(7, 2048, 512, 1, 2),
            ConvLayer::new(7, 512, 512, 3, 3),
            ConvLayer::new(7, 512, 2048, 1, 3),
        ],
        fc_macs: 2048 * 1000,
    }
}

/// YOLOv2 at 416×416 (≈17 GMACs) — the largest of the three baselines.
pub fn yolov2() -> CnnModel {
    CnnModel {
        name: "YOLOv2",
        layers: vec![
            ConvLayer::new(416, 3, 32, 3, 1),
            ConvLayer::new(208, 32, 64, 3, 1),
            ConvLayer::new(104, 64, 128, 3, 1),
            ConvLayer::new(104, 128, 64, 1, 1),
            ConvLayer::new(104, 64, 128, 3, 1),
            ConvLayer::new(52, 128, 256, 3, 1),
            ConvLayer::new(52, 256, 128, 1, 1),
            ConvLayer::new(52, 128, 256, 3, 1),
            ConvLayer::new(26, 256, 512, 3, 1),
            ConvLayer::new(26, 512, 256, 1, 1),
            ConvLayer::new(26, 256, 512, 3, 1),
            ConvLayer::new(26, 512, 256, 1, 1),
            ConvLayer::new(26, 256, 512, 3, 1),
            ConvLayer::new(13, 512, 1024, 3, 1),
            ConvLayer::new(13, 1024, 512, 1, 1),
            ConvLayer::new(13, 512, 1024, 3, 1),
            ConvLayer::new(13, 1024, 512, 1, 1),
            ConvLayer::new(13, 512, 1024, 3, 1),
            ConvLayer::new(13, 1024, 1024, 3, 2),
            ConvLayer::new(13, 3072, 1024, 3, 1), // after passthrough concat
            ConvLayer::new(13, 1024, 425, 1, 1),
        ],
        fc_macs: 0,
    }
}

/// The three baselines of Fig. 7.
pub fn fig7_baselines() -> Vec<CnnModel> {
    vec![yolov2(), alexnet(), resnet50()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_macs_in_published_range() {
        let g = alexnet().total_macs() as f64 / 1e9;
        assert!((0.6..0.9).contains(&g), "AlexNet ≈ 0.7 GMACs, got {g}");
    }

    #[test]
    fn resnet50_macs_in_published_range() {
        let g = resnet50().total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&g), "ResNet-50 ≈ 4.1 GMACs, got {g}");
    }

    #[test]
    fn yolov2_macs_in_published_range() {
        let g = yolov2().total_macs() as f64 / 1e9;
        assert!((14.0..22.0).contains(&g), "YOLOv2 ≈ 17 GMACs, got {g}");
    }

    #[test]
    fn ordering_matches_fig7() {
        // YOLOv2 > ResNet-50 > AlexNet.
        let y = yolov2().total_macs();
        let r = resnet50().total_macs();
        let a = alexnet().total_macs();
        assert!(y > r && r > a);
    }
}
