//! LDGCNN \[65\]: linked dynamic graph CNN.
//!
//! LDGCNN is DGCNN with hierarchical skip links: the input of EdgeConv
//! module `i` is the concatenation of the raw coordinates and *all*
//! previous module outputs, and the final fuse MLP sees the same full
//! concatenation. All EdgeConv MLPs are single-layer — which is why the
//! paper finds Mesorasi ≈ Ltd-Mesorasi on LDGCNN (§VII-C).

use crate::{NetForward, PointCloudNetwork};
use mesorasi_core::module::{Module, ModuleConfig};
use mesorasi_core::runner::{self, ModuleState};
use mesorasi_core::trace::ReduceOp;
use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::layers::{NormMode, SharedMlp};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;
use rand::rngs::StdRng;

/// The LDGCNN classification network.
#[derive(Debug, Clone)]
pub struct Ldgcnn {
    input_points: usize,
    /// EdgeConv modules; module `i`'s input width is `3 + Σ_{j<i} out_j`.
    edges: Vec<Module>,
    fuse: SharedMlp,
    head: SharedMlp,
}

impl Ldgcnn {
    /// Paper-scale network: 1024 points, K = 20, EdgeConvs
    /// `[64, 64, 64, 128]` over linked inputs, fuse to 1024, 40-way head.
    pub fn paper(rng: &mut StdRng) -> Self {
        let k = 20;
        let n = 1024;
        // Linked input widths: 3, 3+64, 3+128, 3+192.
        let edges = vec![
            Module::new(ModuleConfig::edge("lec1", n, k, vec![3, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("lec2", n, k, vec![67, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("lec3", n, k, vec![131, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("lec4", n, k, vec![195, 128]), NormMode::None, rng),
        ];
        let fuse = SharedMlp::new(&[3 + 64 + 64 + 64 + 128, 1024], NormMode::None, true, rng);
        let head = SharedMlp::new(&[1024, 512, 256, 40], NormMode::None, false, rng);
        Ldgcnn { input_points: n, edges, fuse, head }
    }

    /// Small trainable instance.
    pub fn small(classes: usize, rng: &mut StdRng) -> Self {
        let k = 8;
        let n = 128;
        let edges = vec![
            Module::new(ModuleConfig::edge("lec1", n, k, vec![3, 16]), NormMode::Feature, rng),
            Module::new(ModuleConfig::edge("lec2", n, k, vec![19, 24]), NormMode::Feature, rng),
        ];
        let fuse = SharedMlp::new(&[3 + 16 + 24, 64], NormMode::Feature, true, rng);
        let head = SharedMlp::new(&[64, 32, classes], NormMode::None, false, rng);
        Ldgcnn { input_points: n, edges, fuse, head }
    }
}

impl PointCloudNetwork for Ldgcnn {
    fn name(&self) -> &str {
        "LDGCNN"
    }

    fn input_points(&self) -> usize {
        self.input_points
    }

    fn domain(&self) -> crate::Domain {
        crate::Domain::Classification
    }

    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
        Box::new(self.clone())
    }

    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward {
        let mut trace = NetworkTrace::new("LDGCNN", strategy);
        let initial = ModuleState::from_cloud(g, cloud);
        // The linked input so far: raw coordinates, then growing concat.
        let mut linked: VarId = initial.features;
        for (i, module) in self.edges.iter().enumerate() {
            let state = initial.with_features(linked);
            let out = runner::run_module(g, module, &state, strategy, seed.wrapping_add(i as u64));
            trace.modules.push(out.trace);
            linked = g.hstack(linked, out.state.features);
        }

        let (fused, mut fuse_trace) = runner::run_head(g, &self.fuse, linked, "fuse");
        let rows = g.value(fused).rows();
        let width = g.value(fused).cols();
        let global = g.global_max(fused);
        fuse_trace.reduce = Some(ReduceOp { groups: 1, k: rows, width });
        trace.modules.push(fuse_trace);

        let (logits, head_trace) = runner::run_head(g, &self.head, global, "cls-head");
        trace.modules.push(head_trace);
        NetForward { logits, trace }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for m in &mut self.edges {
            params.extend(m.mlp.params_mut());
        }
        params.extend(self.fuse.params_mut());
        params.extend(self.head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn small_instance_forward_shapes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Ldgcnn::small(10, &mut rng);
        let cloud = sample_shape(ShapeClass::Piano, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Original, 3);
        assert_eq!(g.value(out.logits).shape(), (1, 10));
        assert_eq!(out.trace.modules.len(), 4); // 2 edges + fuse + head
    }

    #[test]
    fn linked_inputs_grow_search_dimension() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Ldgcnn::small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Radio, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Delayed, 3);
        let dims: Vec<usize> =
            out.trace.modules.iter().filter_map(|m| m.search.as_ref().map(|s| s.dim)).collect();
        // Module 2 searches in the 3+16 = 19-wide linked feature space.
        assert_eq!(dims, vec![3, 19]);
    }

    #[test]
    fn single_layer_modules_make_delayed_near_exact() {
        // Norm-free instance: FeatureNorm statistics differ between the
        // two orders (batch rows differ), which is exactly the batch-norm
        // perturbation §VII-B describes — so exactness holds only without it.
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Ldgcnn {
            input_points: 128,
            edges: vec![
                Module::new(
                    ModuleConfig::edge("lec1", 128, 8, vec![3, 16]),
                    NormMode::None,
                    &mut rng,
                ),
                Module::new(
                    ModuleConfig::edge("lec2", 128, 8, vec![19, 24]),
                    NormMode::None,
                    &mut rng,
                ),
            ],
            fuse: SharedMlp::new(&[43, 64], NormMode::None, true, &mut rng),
            head: SharedMlp::new(&[64, 32, 4], NormMode::None, false, &mut rng),
        };
        let cloud = sample_shape(ShapeClass::Sphere, 128, 2);
        let mut g1 = Graph::new();
        let a = net.forward(&mut g1, &cloud, Strategy::Original, 5);
        let mut g2 = Graph::new();
        let b = net.forward(&mut g2, &cloud, Strategy::Delayed, 5);
        let diff = mesorasi_tensor::ops::sub(g1.value(a.logits), g2.value(b.logits)).max_abs();
        assert!(diff < 1e-3, "LDGCNN delayed should be near-exact, diff {diff}");
    }

    #[test]
    fn paper_scale_linked_widths_are_consistent() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Ldgcnn::paper(&mut rng);
        assert_eq!(net.edges[1].config.m_in(), 67);
        assert_eq!(net.edges[3].config.m_in(), 195);
    }
}
