//! DensePoint \[34\]: densely-connected point convolutions.
//!
//! DensePoint stacks narrow single-layer "PConv" modules whose inputs are
//! the concatenation of all previous outputs within a stage (DenseNet-style
//! growth), with pooling modules reducing the point count between stages.
//! All module MLPs are single-layer — the third network for which the paper
//! observes Mesorasi ≈ Ltd-Mesorasi (§VII-C). The stage/growth parameters
//! here follow the paper's L = 6, growth-rate-24 flavour at reduced depth;
//! `DESIGN.md` records this as an approximation.

use crate::{NetForward, PointCloudNetwork};
use mesorasi_core::module::{Module, ModuleConfig, NeighborMode};
use mesorasi_core::runner::{self, ModuleState};
use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::layers::{NormMode, SharedMlp};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;
use rand::rngs::StdRng;

/// One dense stage: pooling module then densely-connected blocks at fixed
/// point count.
#[derive(Debug, Clone)]
struct Stage {
    /// Pooling module (reduces the point count, like a strided conv).
    pool: Module,
    /// Dense blocks; block `i` consumes the concat of the pool output and
    /// all previous block outputs.
    blocks: Vec<Module>,
}

/// The DensePoint classification network.
#[derive(Debug, Clone)]
pub struct DensePoint {
    input_points: usize,
    stages: Vec<Stage>,
    global: Module,
    head: SharedMlp,
}

fn pool_module(
    name: &str,
    n_out: usize,
    k: usize,
    radius: f32,
    widths: Vec<usize>,
    rng: &mut StdRng,
) -> Module {
    pool_module_norm(name, n_out, k, radius, widths, NormMode::None, rng)
}

fn pool_module_norm(
    name: &str,
    n_out: usize,
    k: usize,
    radius: f32,
    widths: Vec<usize>,
    norm: NormMode,
    rng: &mut StdRng,
) -> Module {
    // DensePoint's PConv keeps the centroid feature alongside the neighbor
    // offsets (edge-style aggregation) and searches by ball query.
    Module::new(
        ModuleConfig::edge_with(name, n_out, k, NeighborMode::CoordBall { radius }, widths),
        norm,
        rng,
    )
}

impl DensePoint {
    /// Paper-scale network: 1024 points, ball query K = 16, growth rate 24.
    pub fn paper(rng: &mut StdRng) -> Self {
        let growth = 24;
        let stage = |name: &str,
                     n_out: usize,
                     radius: f32,
                     in_w: usize,
                     pool_w: usize,
                     blocks: usize,
                     rng: &mut StdRng| {
            let pool = pool_module(name, n_out, 16, radius, vec![in_w, pool_w], rng);
            let blocks = (0..blocks)
                .map(|i| {
                    pool_module(
                        &format!("{name}-b{}", i + 1),
                        n_out,
                        16,
                        radius * 1.25,
                        vec![pool_w + i * growth, growth],
                        rng,
                    )
                })
                .collect();
            Stage { pool, blocks }
        };
        let stages = vec![
            stage("p1", 512, 0.25, 3, 48, 3, rng),
            stage("p2", 128, 0.4, 48 + 3 * 24, 120, 3, rng),
        ];
        let global = Module::new(
            ModuleConfig::global("gpool", vec![120 + 3 * 24, 512]),
            NormMode::None,
            rng,
        );
        let head = SharedMlp::new(&[512, 256, 40], NormMode::None, false, rng);
        DensePoint { input_points: 1024, stages, global, head }
    }

    /// Small trainable instance.
    pub fn small(classes: usize, rng: &mut StdRng) -> Self {
        let stages = vec![Stage {
            pool: pool_module_norm("p1", 48, 8, 0.35, vec![3, 24], NormMode::Feature, rng),
            blocks: vec![
                pool_module_norm("p1-b1", 48, 8, 0.45, vec![24, 12], NormMode::Feature, rng),
                pool_module_norm("p1-b2", 48, 8, 0.45, vec![36, 12], NormMode::Feature, rng),
            ],
        }];
        let global =
            Module::new(ModuleConfig::global("gpool", vec![48, 96]), NormMode::Feature, rng);
        let head = SharedMlp::new(&[96, 48, classes], NormMode::None, false, rng);
        DensePoint { input_points: 128, stages, global, head }
    }
}

impl PointCloudNetwork for DensePoint {
    fn name(&self) -> &str {
        "DensePoint"
    }

    fn input_points(&self) -> usize {
        self.input_points
    }

    fn domain(&self) -> crate::Domain {
        crate::Domain::Classification
    }

    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
        Box::new(self.clone())
    }

    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward {
        let mut trace = NetworkTrace::new("DensePoint", strategy);
        let mut state = ModuleState::from_cloud(g, cloud);
        let mut salt = 0u64;
        for stage in &self.stages {
            let out = runner::run_module(g, &stage.pool, &state, strategy, seed.wrapping_add(salt));
            salt += 1;
            trace.modules.push(out.trace);
            state = out.state;
            // Dense blocks: grow the feature concat at fixed positions.
            let mut concat: VarId = state.features;
            for block in &stage.blocks {
                let block_state = state.with_features(concat);
                let out =
                    runner::run_module(g, block, &block_state, strategy, seed.wrapping_add(salt));
                salt += 1;
                trace.modules.push(out.trace);
                concat = g.hstack(concat, out.state.features);
            }
            state = state.with_features(concat);
        }
        let out = runner::run_module(g, &self.global, &state, strategy, seed.wrapping_add(salt));
        trace.modules.push(out.trace);
        let (logits, head_trace) = runner::run_head(g, &self.head, out.state.features, "cls-head");
        trace.modules.push(head_trace);
        NetForward { logits, trace }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for stage in &mut self.stages {
            params.extend(stage.pool.mlp.params_mut());
            for b in &mut stage.blocks {
                params.extend(b.mlp.params_mut());
            }
        }
        params.extend(self.global.mlp.params_mut());
        params.extend(self.head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn small_instance_forward_shapes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = DensePoint::small(10, &mut rng);
        let cloud = sample_shape(ShapeClass::Bowl, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Original, 3);
        assert_eq!(g.value(out.logits).shape(), (1, 10));
        // pool + 2 blocks + global + head.
        assert_eq!(out.trace.modules.len(), 5);
    }

    #[test]
    fn dense_blocks_share_positions_but_grow_features() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = DensePoint::small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Tent, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Delayed, 3);
        // All dense-stage modules keep n = 48 outputs; the global module
        // sees the 16+8+8 = 32-wide concat.
        let m_ins: Vec<usize> =
            out.trace.modules.iter().filter_map(|m| m.search.as_ref().map(|s| s.queries)).collect();
        assert_eq!(m_ins, vec![48, 48, 48]);
        assert_eq!(g.value(out.logits).shape(), (1, 4));
    }

    #[test]
    fn all_module_mlps_are_single_layer() {
        // The property that makes Mesorasi ≈ Ltd-Mesorasi on DensePoint.
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = DensePoint::paper(&mut rng);
        for stage in &net.stages {
            assert_eq!(stage.pool.config.depth(), 1);
            for b in &stage.blocks {
                assert_eq!(b.config.depth(), 1);
            }
        }
    }

    #[test]
    fn paper_scale_stage_widths_chain() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = DensePoint::paper(&mut rng);
        // Stage-2 pool consumes stage-1's 48 + 3·24 = 120-wide concat.
        assert_eq!(net.stages[1].pool.config.m_in(), 120);
        assert_eq!(net.global.config.m_in(), 192);
    }
}
