//! Task datasets assembled from the synthetic generators: train/test splits
//! for classification (ModelNet40 stand-in), part segmentation (ShapeNet
//! stand-in) and frustum detection (KITTI stand-in).

use mesorasi_pointcloud::lidar::{self, LidarConfig};
use mesorasi_pointcloud::parts::{self, Category};
use mesorasi_pointcloud::sampling;
use mesorasi_pointcloud::shapes::{self, ShapeClass};
use mesorasi_pointcloud::{transform, PointCloud};

/// One labelled example.
#[derive(Debug, Clone)]
pub struct Example {
    /// The input cloud (per-point labels populated for segmentation and
    /// detection examples).
    pub cloud: PointCloud,
    /// Task label: class id for classification; category id for
    /// segmentation (per-point labels live on the cloud); object class for
    /// detection.
    pub label: u32,
}

/// A train/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training examples.
    pub train: Vec<Example>,
    /// Held-out test examples.
    pub test: Vec<Example>,
}

impl Dataset {
    /// Applies light training augmentation (jitter + mild scaling) to a
    /// clone of training example `i` — fresh randomness per `epoch`.
    ///
    /// The paper's training uses full rotation augmentation over ~10⁵
    /// steps; the reduced-scale Fig. 16 experiment trains for minutes, so
    /// full rotations would leave the small models underfit (they collapse
    /// to uniform predictions). Light augmentation preserves the
    /// regularization role without that failure mode; use
    /// [`mesorasi_pointcloud::transform::augment_for_training`] directly
    /// for the full recipe.
    pub fn augmented_train_cloud(&self, i: usize, epoch: u64) -> PointCloud {
        let mut cloud = self.train[i].cloud.clone();
        let seed = ((i as u64) * 1_000_003) ^ epoch;
        transform::random_scale(&mut cloud, 0.9, 1.1, seed.wrapping_mul(5));
        transform::jitter(&mut cloud, 0.01, 0.05, seed.wrapping_mul(7));
        cloud
    }
}

/// Classification dataset over the first `classes` shape classes, with
/// `per_class_train`/`per_class_test` instances of `points` points each.
///
/// # Panics
///
/// Panics if `classes` is zero or exceeds the 40-class label space.
pub fn classification(
    classes: usize,
    points: usize,
    per_class_train: usize,
    per_class_test: usize,
    seed: u64,
) -> Dataset {
    assert!(classes > 0 && classes <= ShapeClass::ALL.len(), "classes out of range");
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (c, &class) in ShapeClass::ALL.iter().take(classes).enumerate() {
        for i in 0..per_class_train {
            let s = seed ^ ((c as u64) << 32) ^ (i as u64);
            train.push(Example { cloud: shapes::sample_shape(class, points, s), label: c as u32 });
        }
        for i in 0..per_class_test {
            let s = seed ^ ((c as u64) << 32) ^ 0xdead_0000 ^ (i as u64);
            test.push(Example { cloud: shapes::sample_shape(class, points, s), label: c as u32 });
        }
    }
    Dataset { train, test }
}

/// Part-segmentation dataset over the synthetic categories (per-point part
/// labels on each cloud).
pub fn segmentation(
    categories_used: usize,
    points: usize,
    per_cat_train: usize,
    per_cat_test: usize,
    seed: u64,
) -> (Dataset, Vec<Category>, u32) {
    let cats = parts::categories();
    assert!(categories_used > 0 && categories_used <= cats.len(), "categories out of range");
    let used: Vec<Category> = cats.into_iter().take(categories_used).collect();
    let total_parts: u32 = used.iter().map(|c| c.part_offset + c.part_count).max().unwrap_or(0);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (c, cat) in used.iter().enumerate() {
        for i in 0..per_cat_train {
            let s = seed ^ ((c as u64) << 24) ^ (i as u64);
            train.push(Example { cloud: parts::sample_labelled(*cat, points, s), label: c as u32 });
        }
        for i in 0..per_cat_test {
            let s = seed ^ ((c as u64) << 24) ^ 0xbeef_0000 ^ (i as u64);
            test.push(Example { cloud: parts::sample_labelled(*cat, points, s), label: c as u32 });
        }
    }
    (Dataset { train, test }, used, total_parts)
}

/// A detection example: a frustum crop around one object, with per-point
/// object/background labels (collapsed to 0/1) and the ground-truth
/// birds-eye-view box.
#[derive(Debug, Clone)]
pub struct FrustumExample {
    /// The frustum cloud, labels collapsed to 1 = target object, 0 = rest.
    pub cloud: PointCloud,
    /// Object class (0 car, 1 pedestrian, 2 cyclist).
    pub class: u32,
    /// Ground-truth BEV box `(cx, cy, w, h)` in the frustum frame.
    pub bev_box: (f32, f32, f32, f32),
}

/// Fewest LiDAR returns the target object must have for its frustum to
/// become an example. Below this the ground-truth mask degenerates (the
/// crop centroid collapses to the whole-frustum centroid, metres away
/// from the object) and no detector — however trained — can anchor a
/// box; such frustums made the BEV IoU metric identically zero at small
/// scene scales.
const MIN_OBJECT_RETURNS: usize = 6;

/// Generates frustum detection examples by ray-casting scenes and cropping
/// a frustum per object with enough LiDAR returns
/// (`MIN_OBJECT_RETURNS`). Resampling to `points_per_frustum` is
/// stratified by label so the object's returns survive it.
pub fn frustums(scenes: usize, points_per_frustum: usize, seed: u64) -> Vec<FrustumExample> {
    let config = LidarConfig::small();
    let mut out = Vec::new();
    for s in 0..scenes {
        let scene = lidar::generate_scene(&config, 5, seed ^ (s as u64) << 8);
        let labels = scene.cloud.labels().expect("scene clouds are labelled");
        for (i, obj) in scene.objects.iter().enumerate() {
            let tag = i as u32 + 1;
            if !labels.contains(&tag) {
                continue; // occluded or out of range: no returns
            }
            let frustum = scene.frustum(i, 0.15);
            if frustum.len() < 8 {
                continue;
            }
            // Collapse labels to binary and recenter on the frustum median.
            let binary: Vec<u32> =
                frustum.labels().expect("labelled").iter().map(|&l| u32::from(l == tag)).collect();
            if binary.iter().filter(|&&l| l == 1).count() < MIN_OBJECT_RETURNS {
                continue; // too sparse to anchor a box
            }
            let mut cloud = PointCloud::from_labelled_points(frustum.points().to_vec(), binary);
            let centroid = cloud.centroid();
            for p in cloud.points_mut() {
                *p -= centroid;
            }
            let cloud = resample_stratified(&cloud, points_per_frustum, seed ^ (i as u64));
            let (hx, hy, _) = obj.class.half_extents();
            // Axis-aligned BEV footprint of the yawed box.
            let (sy, cy_) = obj.yaw.sin_cos();
            let w = 2.0 * (hx * cy_.abs() + hy * sy.abs());
            let h = 2.0 * (hx * sy.abs() + hy * cy_.abs());
            out.push(FrustumExample {
                cloud,
                class: obj.class.label(),
                bev_box: (obj.center.x - centroid.x, obj.center.y - centroid.y, w, h),
            });
        }
    }
    out
}

/// Resamples a binary-labelled frustum to `count` points, keeping
/// foreground and background in proportion but never fewer than
/// [`MIN_OBJECT_RETURNS`] foreground points (uniform resampling routinely
/// diluted a handful of object returns to zero, which is what made the
/// example's BEV IoU degenerate).
fn resample_stratified(cloud: &PointCloud, count: usize, seed: u64) -> PointCloud {
    let labels = cloud.labels().expect("frustum clouds are labelled");
    let fg: Vec<usize> = (0..cloud.len()).filter(|&i| labels[i] == 1).collect();
    let bg: Vec<usize> = (0..cloud.len()).filter(|&i| labels[i] == 0).collect();
    debug_assert!(!fg.is_empty());
    let proportional = (count * fg.len()).div_ceil(cloud.len());
    let fg_keep = proportional.max(MIN_OBJECT_RETURNS).min(count);
    let bg_keep = count - fg_keep;
    let fg_cloud = sampling::resample(&cloud.select(&fg), fg_keep, seed ^ 0xf9);
    if bg.is_empty() || bg_keep == 0 {
        return sampling::resample(&fg_cloud, count, seed ^ 0x81);
    }
    let bg_cloud = sampling::resample(&cloud.select(&bg), bg_keep, seed ^ 0xb9);
    let mut points = fg_cloud.points().to_vec();
    points.extend_from_slice(bg_cloud.points());
    let mut labels = fg_cloud.labels().expect("labelled").to_vec();
    labels.extend_from_slice(bg_cloud.labels().expect("labelled"));
    PointCloud::from_labelled_points(points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_split_sizes() {
        let ds = classification(4, 64, 3, 2, 1);
        assert_eq!(ds.train.len(), 12);
        assert_eq!(ds.test.len(), 8);
        assert!(ds.train.iter().all(|e| e.cloud.len() == 64));
        assert!(ds.train.iter().all(|e| e.label < 4));
    }

    #[test]
    fn classification_train_and_test_differ() {
        let ds = classification(2, 64, 1, 1, 1);
        assert_ne!(ds.train[0].cloud, ds.test[0].cloud);
    }

    #[test]
    fn augmentation_changes_but_preserves_count() {
        let ds = classification(1, 64, 1, 0, 2);
        let aug = ds.augmented_train_cloud(0, 5);
        assert_eq!(aug.len(), 64);
        assert_ne!(aug, ds.train[0].cloud);
    }

    #[test]
    fn segmentation_labels_in_range() {
        let (ds, cats, total) = segmentation(3, 96, 2, 1, 3);
        assert_eq!(cats.len(), 3);
        for e in ds.train.iter().chain(&ds.test) {
            for &l in e.cloud.labels().expect("labelled") {
                assert!(l < total);
            }
        }
    }

    #[test]
    fn frustums_have_binary_labels_and_fixed_size() {
        let fr = frustums(2, 96, 7);
        assert!(!fr.is_empty(), "some objects must receive returns");
        for f in &fr {
            assert_eq!(f.cloud.len(), 96);
            assert!(f.cloud.labels().unwrap().iter().all(|&l| l <= 1));
            assert!(f.bev_box.2 > 0.0 && f.bev_box.3 > 0.0);
            assert!(f.class <= 2);
        }
        // At least one frustum should actually contain object points.
        assert!(fr.iter().any(|f| f.cloud.labels().unwrap().contains(&1)));
    }
}
