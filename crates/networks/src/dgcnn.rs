//! DGCNN \[53\]: dynamic graph CNN, classification and segmentation.
//!
//! Every EdgeConv module rebuilds its neighbor graph by KNN *in the feature
//! space of the previous module* (Fig. 1b), which is why DGCNN's neighbor
//! search cost dominates (Fig. 5) and grows with feature width. Edge
//! features are `[x_i | x_j − x_i]`; module outputs are concatenated, fused
//! by a point-wise MLP, globally max-pooled, and classified. The
//! segmentation variant broadcasts the global feature back to every point.

use crate::{NetForward, PointCloudNetwork};
use mesorasi_core::module::{Module, ModuleConfig};
use mesorasi_core::runner::{self, ModuleState};
use mesorasi_core::trace::ReduceOp;
use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::layers::{NormMode, SharedMlp};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;
use rand::rngs::StdRng;

/// DGCNN in either variant.
#[derive(Debug, Clone)]
pub struct Dgcnn {
    name: String,
    input_points: usize,
    /// EdgeConv modules (feature-space KNN, edge-concat MLPs).
    edges: Vec<Module>,
    /// Point-wise MLP fusing the concatenated module outputs.
    fuse: SharedMlp,
    /// Classification head or per-point segmentation head.
    head: SharedMlp,
    segmentation: bool,
}

impl Dgcnn {
    /// Paper-scale classification: 1024 points, K = 20, four single-layer
    /// EdgeConvs `[64, 64, 128, 256]`, fuse to 1024, 40-way head — the
    /// architecture of \[53\] §5.1.
    pub fn classification_paper(rng: &mut StdRng) -> Self {
        let k = 20;
        let n = 1024;
        let edges = vec![
            Module::new(ModuleConfig::edge("ec1", n, k, vec![3, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("ec2", n, k, vec![64, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("ec3", n, k, vec![64, 128]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("ec4", n, k, vec![128, 256]), NormMode::None, rng),
        ];
        let fuse = SharedMlp::new(&[64 + 64 + 128 + 256, 1024], NormMode::None, true, rng);
        let head = SharedMlp::new(&[1024, 512, 256, 40], NormMode::None, false, rng);
        Dgcnn { name: "DGCNN (c)".into(), input_points: n, edges, fuse, head, segmentation: false }
    }

    /// Small trainable classification instance.
    pub fn classification_small(classes: usize, rng: &mut StdRng) -> Self {
        let k = 8;
        let n = 128;
        let edges = vec![
            Module::new(ModuleConfig::edge("ec1", n, k, vec![3, 24]), NormMode::Feature, rng),
            Module::new(ModuleConfig::edge("ec2", n, k, vec![24, 32]), NormMode::Feature, rng),
        ];
        let fuse = SharedMlp::new(&[24 + 32, 96], NormMode::Feature, true, rng);
        let head = SharedMlp::new(&[96, 48, classes], NormMode::None, false, rng);
        Dgcnn { name: "DGCNN (c)".into(), input_points: n, edges, fuse, head, segmentation: false }
    }

    /// Paper-scale segmentation: 2048 points, K = 40, deeper EdgeConvs with
    /// two-layer MLPs (where full delayed-aggregation differs from
    /// Ltd-Mesorasi), per-point head.
    pub fn segmentation_paper(parts: usize, rng: &mut StdRng) -> Self {
        let k = 40;
        let n = 2048;
        let edges = vec![
            Module::new(ModuleConfig::edge("ec1", n, k, vec![3, 64, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("ec2", n, k, vec![64, 64, 64]), NormMode::None, rng),
            Module::new(ModuleConfig::edge("ec3", n, k, vec![64, 64]), NormMode::None, rng),
        ];
        let fuse = SharedMlp::new(&[64 + 64 + 64, 1024], NormMode::None, true, rng);
        // Per-point head input: global (1024) + concatenated locals (192).
        let head = SharedMlp::new(&[1024 + 192, 256, 256, 128, parts], NormMode::None, false, rng);
        Dgcnn { name: "DGCNN (s)".into(), input_points: n, edges, fuse, head, segmentation: true }
    }

    /// Small trainable segmentation instance.
    pub fn segmentation_small(parts: usize, rng: &mut StdRng) -> Self {
        let k = 8;
        let n = 128;
        let edges = vec![
            Module::new(ModuleConfig::edge("ec1", n, k, vec![3, 24, 24]), NormMode::Feature, rng),
            Module::new(ModuleConfig::edge("ec2", n, k, vec![24, 32]), NormMode::Feature, rng),
        ];
        let fuse = SharedMlp::new(&[24 + 32, 64], NormMode::Feature, true, rng);
        let head = SharedMlp::new(&[64 + 56, 48, parts], NormMode::None, false, rng);
        Dgcnn { name: "DGCNN (s)".into(), input_points: n, edges, fuse, head, segmentation: true }
    }

    /// The EdgeConv modules.
    pub fn edge_modules(&self) -> &[Module] {
        &self.edges
    }
}

impl PointCloudNetwork for Dgcnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_points(&self) -> usize {
        self.input_points
    }

    fn domain(&self) -> crate::Domain {
        if self.segmentation {
            crate::Domain::Segmentation
        } else {
            crate::Domain::Classification
        }
    }

    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
        Box::new(self.clone())
    }

    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward {
        let mut trace = NetworkTrace::new(&self.name, strategy);
        let mut state = ModuleState::from_cloud(g, cloud);
        let mut locals: Vec<VarId> = Vec::with_capacity(self.edges.len());
        for (i, module) in self.edges.iter().enumerate() {
            let out = runner::run_module(g, module, &state, strategy, seed.wrapping_add(i as u64));
            trace.modules.push(out.trace);
            state = out.state;
            locals.push(state.features);
        }

        // Concatenate all module outputs (the "+" in Fig. 1b) and fuse.
        let mut concat = locals[0];
        for &f in &locals[1..] {
            concat = g.hstack(concat, f);
        }
        let (fused, mut fuse_trace) = runner::run_head(g, &self.fuse, concat, "fuse");
        let n = g.value(fused).rows();
        let fused_width = g.value(fused).cols();
        let global = g.global_max(fused);
        fuse_trace.reduce = Some(ReduceOp { groups: 1, k: n, width: fused_width });
        trace.modules.push(fuse_trace);

        let logits = if self.segmentation {
            // Broadcast the global feature to every point and concatenate
            // with the per-point local features.
            let broadcast = g.gather(global, vec![0; n]);
            let per_point = g.hstack(broadcast, concat);
            let (out, head_trace) = runner::run_head(g, &self.head, per_point, "seg-head");
            trace.modules.push(head_trace);
            out
        } else {
            let (out, head_trace) = runner::run_head(g, &self.head, global, "cls-head");
            trace.modules.push(head_trace);
            out
        };
        NetForward { logits, trace }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for m in &mut self.edges {
            params.extend(m.mlp.params_mut());
        }
        params.extend(self.fuse.params_mut());
        params.extend(self.head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn classification_small_shapes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Dgcnn::classification_small(10, &mut rng);
        let cloud = sample_shape(ShapeClass::Guitar, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Original, 3);
        assert_eq!(g.value(out.logits).shape(), (1, 10));
        // 2 EdgeConvs + fuse + head.
        assert_eq!(out.trace.modules.len(), 4);
    }

    #[test]
    fn segmentation_small_shapes() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Dgcnn::segmentation_small(6, &mut rng);
        let cloud = sample_shape(ShapeClass::Airplane, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Delayed, 3);
        assert_eq!(g.value(out.logits).shape(), (128, 6));
    }

    #[test]
    fn every_edge_module_searches_in_feature_space() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Dgcnn::classification_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Cup, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Original, 3);
        // First module searches in 3-D, second in the 24-wide feature space.
        let dims: Vec<usize> =
            out.trace.modules.iter().filter_map(|m| m.search.as_ref().map(|s| s.dim)).collect();
        assert_eq!(dims, vec![3, 24]);
    }

    #[test]
    fn single_layer_edge_delayed_matches_original_logits() {
        // With single-layer EdgeConv MLPs the delayed transform is exact,
        // so whole-network outputs agree (the DGCNN (c) observation that
        // Mesorasi ≈ Ltd-Mesorasi in §VII-C).
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let k = 8;
        let n = 64;
        let edges = vec![
            Module::new(ModuleConfig::edge("ec1", n, k, vec![3, 16]), NormMode::None, &mut rng),
            Module::new(ModuleConfig::edge("ec2", n, k, vec![16, 16]), NormMode::None, &mut rng),
        ];
        let fuse = SharedMlp::new(&[32, 32], NormMode::None, true, &mut rng);
        let head = SharedMlp::new(&[32, 4], NormMode::None, false, &mut rng);
        let net =
            Dgcnn { name: "test".into(), input_points: n, edges, fuse, head, segmentation: false };
        let cloud = sample_shape(ShapeClass::Sphere, 64, 2);
        let mut g1 = Graph::new();
        let a = net.forward(&mut g1, &cloud, Strategy::Original, 5);
        let mut g2 = Graph::new();
        let b = net.forward(&mut g2, &cloud, Strategy::Delayed, 5);
        let diff = mesorasi_tensor::ops::sub(g1.value(a.logits), g2.value(b.logits)).max_abs();
        assert!(diff < 1e-3, "single-layer DGCNN delayed must be near-exact, diff {diff}");
    }

    #[test]
    fn delayed_saves_macs_on_paper_scale_config() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = Dgcnn::classification_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Sofa, 128, 2);
        let mut g1 = Graph::new();
        let orig = net.forward(&mut g1, &cloud, Strategy::Original, 5);
        let mut g2 = Graph::new();
        let del = net.forward(&mut g2, &cloud, Strategy::Delayed, 5);
        assert!(del.trace.mlp_macs() < orig.trace.mlp_macs());
    }
}
