//! Planned (grad-free, arena-backed) inference over any
//! [`PointCloudNetwork`].
//!
//! A [`PlannedNetwork`] wraps a frozen network with a
//! [`mesorasi_core::engine::PlanEngine`]: the first forward records the
//! network's op sequence into an immutable plan; every later forward
//! replays the plan against a reusable buffer arena, re-deriving only the
//! per-sample neighbor structure (cached per sample — the NIT cache).
//! Outputs are bit-identical to [`PointCloudNetwork::forward`] on the
//! autograd tape at every thread count.
//!
//! Use the tape when you need gradients or one-off forwards; use the plan
//! for eval loops and serving, where the tape's per-op allocation and
//! autograd bookkeeping are pure overhead.
//!
//! ```
//! use mesorasi_core::Strategy;
//! use mesorasi_networks::planned::PlannedNetwork;
//! use mesorasi_networks::pointnetpp::PointNetPP;
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//!
//! let mut rng = mesorasi_pointcloud::seeded_rng(0);
//! let net = PointNetPP::classification_small(10, &mut rng);
//! let mut planned = PlannedNetwork::new(&net, Strategy::Delayed, 7);
//! let cloud = sample_shape(ShapeClass::Chair, 128, 1);
//! let logits = planned.logits(&cloud);
//! assert_eq!(logits.shape(), (1, 10));
//! ```

use crate::fpointnet::FPointNet;
use crate::PointCloudNetwork;
use mesorasi_core::engine::PlanEngine;
use mesorasi_core::Strategy;
use mesorasi_nn::plan::ArenaStats;
use mesorasi_nn::Graph;
use mesorasi_pointcloud::PointCloud;
use mesorasi_tensor::Matrix;

/// Plan-based inference session for one frozen `(network, strategy, seed)`.
///
/// The wrapped network's parameters must not change while the session
/// lives: plans snapshot weights at compile time (taking `&` rather than
/// `&mut` on the network is deliberate — optimizer steps need `&mut`).
pub struct PlannedNetwork<'n> {
    net: &'n dyn PointCloudNetwork,
    strategy: Strategy,
    seed: u64,
    engine: PlanEngine,
}

impl<'n> PlannedNetwork<'n> {
    /// A session over `net` with the given strategy and sampling seed.
    pub fn new(net: &'n dyn PointCloudNetwork, strategy: Strategy, seed: u64) -> Self {
        PlannedNetwork { net, strategy, seed, engine: PlanEngine::new() }
    }

    /// Planned forward: task logits for `cloud` (classification `1 × C`,
    /// segmentation `N × parts`), bit-identical to the tape forward.
    pub fn logits(&mut self, cloud: &PointCloud) -> &Matrix {
        let (net, strategy, seed) = (self.net, self.strategy, self.seed);
        let record =
            move |g: &mut Graph, c: &PointCloud| vec![net.forward(g, c, strategy, seed).logits];
        self.engine.run(cloud, &record).get(0)
    }

    /// Arena statistics of the plan compiled for `n_points` inputs.
    pub fn stats(&self, n_points: usize) -> Option<ArenaStats> {
        self.engine.stats(n_points)
    }
}

/// Plan-based inference over the full F-PointNet detection pipeline,
/// exposing both the per-point segmentation logits and the regressed box.
pub struct PlannedDetector<'n> {
    net: &'n FPointNet,
    strategy: Strategy,
    seed: u64,
    engine: PlanEngine,
}

impl<'n> PlannedDetector<'n> {
    /// A detection session over `net`.
    pub fn new(net: &'n FPointNet, strategy: Strategy, seed: u64) -> Self {
        PlannedDetector { net, strategy, seed, engine: PlanEngine::new() }
    }

    /// Planned detection forward: `(seg_logits, box_params)`.
    pub fn run(&mut self, cloud: &PointCloud) -> (&Matrix, &Matrix) {
        let (net, strategy, seed) = (self.net, self.strategy, self.seed);
        let record = move |g: &mut Graph, c: &PointCloud| {
            let det = net.forward_detection(g, c, strategy, seed);
            vec![det.seg_logits, det.box_params]
        };
        let out = self.engine.run(cloud, &record);
        debug_assert_eq!(out.len(), 2);
        (out.get(0), out.get(1))
    }

    /// Arena statistics of the plan compiled for `n_points` inputs.
    pub fn stats(&self, n_points: usize) -> Option<ArenaStats> {
        self.engine.stats(n_points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::NetworkKind;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn planned_logits_match_tape_for_classification_and_segmentation() {
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        for kind in [NetworkKind::PointNetPPClassification, NetworkKind::DgcnnSegmentation] {
            let net = kind.build_small(6, &mut rng);
            let mut planned = PlannedNetwork::new(net.as_ref(), Strategy::Delayed, 9);
            for cloud_seed in [1, 2] {
                let cloud = sample_shape(ShapeClass::Guitar, net.input_points(), cloud_seed);
                let mut g = Graph::new();
                let expected = net.forward(&mut g, &cloud, Strategy::Delayed, 9);
                let planned_logits = planned.logits(&cloud);
                assert_eq!(
                    planned_logits,
                    g.value(expected.logits),
                    "{} cloud {cloud_seed}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn planned_detector_matches_tape_outputs() {
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        let net = FPointNet::small(&mut rng);
        let frustums = crate::datasets::frustums(2, 128, 5);
        let mut planned = PlannedDetector::new(&net, Strategy::Original, 11);
        for ex in frustums.iter().take(3) {
            let mut g = Graph::new();
            let det = net.forward_detection(&mut g, &ex.cloud, Strategy::Original, 11);
            let (seg, bx) = planned.run(&ex.cloud);
            assert_eq!(seg, g.value(det.seg_logits));
            assert_eq!(bx, g.value(det.box_params));
        }
    }
}
