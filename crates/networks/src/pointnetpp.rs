//! PointNet++ \[43\], classification (SSG) and segmentation variants.
//!
//! The classification network is the paper's running example (Fig. 3 /
//! Fig. 8): three set-abstraction modules — two sampled ball-query modules
//! and one group-all module — followed by fully-connected layers. The
//! segmentation variant adds feature-propagation (3-NN interpolation)
//! layers back up to full resolution and a per-point head.

use crate::{NetForward, PointCloudNetwork};
use mesorasi_core::module::{Module, ModuleConfig, NeighborMode};
use mesorasi_core::runner::{self, ModuleState};
use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::layers::{NormMode, SharedMlp};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;
use rand::rngs::StdRng;

/// PointNet++ in either variant.
#[derive(Debug, Clone)]
pub struct PointNetPP {
    name: String,
    input_points: usize,
    /// Set-abstraction modules, ending with the group-all module.
    sa: Vec<Module>,
    /// Feature-propagation MLPs, coarse-to-fine; empty for classification.
    fp: Vec<SharedMlp>,
    /// Classification head (`1 × …`) or per-point segmentation head.
    head: SharedMlp,
    segmentation: bool,
}

impl PointNetPP {
    /// The paper-scale classification network: 1024 points, ModelNet40-style
    /// 40-way output (SSG configuration of \[43\]).
    pub fn classification_paper(rng: &mut StdRng) -> Self {
        let sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "sa1",
                    512,
                    32,
                    NeighborMode::CoordBall { radius: 0.2 },
                    vec![3, 64, 64, 128],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::offset(
                    "sa2",
                    128,
                    64,
                    NeighborMode::CoordBall { radius: 0.4 },
                    vec![128, 128, 128, 256],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::global("sa3", vec![256, 256, 512, 1024]),
                NormMode::None,
                rng,
            ),
        ];
        let head = SharedMlp::new(&[1024, 512, 256, 40], NormMode::None, false, rng);
        PointNetPP {
            name: "PointNet++ (c)".into(),
            input_points: 1024,
            sa,
            fp: Vec::new(),
            head,
            segmentation: false,
        }
    }

    /// A small trainable classification instance (128 points).
    pub fn classification_small(classes: usize, rng: &mut StdRng) -> Self {
        let sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "sa1",
                    48,
                    8,
                    NeighborMode::CoordBall { radius: 0.35 },
                    vec![3, 24, 32],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(
                ModuleConfig::offset(
                    "sa2",
                    16,
                    8,
                    NeighborMode::CoordBall { radius: 0.7 },
                    vec![32, 48, 64],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(ModuleConfig::global("sa3", vec![64, 96, 128]), NormMode::Feature, rng),
        ];
        let head = SharedMlp::new(&[128, 64, classes], NormMode::None, false, rng);
        PointNetPP {
            name: "PointNet++ (c)".into(),
            input_points: 128,
            sa,
            fp: Vec::new(),
            head,
            segmentation: false,
        }
    }

    /// The paper-scale segmentation network: 2048 points, `parts`-way
    /// per-point output.
    pub fn segmentation_paper(parts: usize, rng: &mut StdRng) -> Self {
        let sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "sa1",
                    512,
                    32,
                    NeighborMode::CoordBall { radius: 0.2 },
                    vec![3, 64, 64, 128],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::offset(
                    "sa2",
                    128,
                    64,
                    NeighborMode::CoordBall { radius: 0.4 },
                    vec![128, 128, 128, 256],
                ),
                NormMode::None,
                rng,
            ),
            Module::new(
                ModuleConfig::global("sa3", vec![256, 256, 512, 1024]),
                NormMode::None,
                rng,
            ),
        ];
        // FP widths: input = coarse output width + skip width at that level.
        let fp = vec![
            SharedMlp::new(&[1024 + 256, 256, 256], NormMode::None, true, rng),
            SharedMlp::new(&[256 + 128, 256, 128], NormMode::None, true, rng),
            SharedMlp::new(&[128 + 3, 128, 128, 128], NormMode::None, true, rng),
        ];
        let head = SharedMlp::new(&[128, 128, parts], NormMode::None, false, rng);
        PointNetPP {
            name: "PointNet++ (s)".into(),
            input_points: 2048,
            sa,
            fp,
            head,
            segmentation: true,
        }
    }

    /// A small trainable segmentation instance (192 points).
    pub fn segmentation_small(parts: usize, rng: &mut StdRng) -> Self {
        let sa = vec![
            Module::new(
                ModuleConfig::offset(
                    "sa1",
                    64,
                    8,
                    NeighborMode::CoordBall { radius: 0.35 },
                    vec![3, 24, 32],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(
                ModuleConfig::offset(
                    "sa2",
                    16,
                    8,
                    NeighborMode::CoordBall { radius: 0.7 },
                    vec![32, 48, 64],
                ),
                NormMode::Feature,
                rng,
            ),
            Module::new(ModuleConfig::global("sa3", vec![64, 128]), NormMode::Feature, rng),
        ];
        let fp = vec![
            SharedMlp::new(&[128 + 64, 64], NormMode::Feature, true, rng),
            SharedMlp::new(&[64 + 32, 48], NormMode::Feature, true, rng),
            SharedMlp::new(&[48 + 3, 48], NormMode::Feature, true, rng),
        ];
        let head = SharedMlp::new(&[48, 32, parts], NormMode::None, false, rng);
        PointNetPP {
            name: "PointNet++ (s)".into(),
            input_points: 192,
            sa,
            fp,
            head,
            segmentation: true,
        }
    }

    /// The set-abstraction modules (exposed for per-module experiments).
    pub fn sa_modules(&self) -> &[Module] {
        &self.sa
    }
}

impl PointCloudNetwork for PointNetPP {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_points(&self) -> usize {
        self.input_points
    }

    fn domain(&self) -> crate::Domain {
        if self.segmentation {
            crate::Domain::Segmentation
        } else {
            crate::Domain::Classification
        }
    }

    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork> {
        Box::new(self.clone())
    }

    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward {
        let mut trace = NetworkTrace::new(&self.name, strategy);
        let mut states: Vec<ModuleState> = vec![ModuleState::from_cloud(g, cloud)];
        for (i, module) in self.sa.iter().enumerate() {
            let out = runner::run_module(
                g,
                module,
                states.last().expect("states never empty"),
                strategy,
                seed.wrapping_add(i as u64),
            );
            trace.modules.push(out.trace);
            states.push(out.state);
        }

        let logits: VarId = if self.segmentation {
            // Walk back up: fp[j] lifts level (L − j) onto level (L − j − 1).
            let levels = states.len();
            let mut current = states[levels - 1].clone();
            for (j, fp_mlp) in self.fp.iter().enumerate() {
                let fine = &states[levels - 2 - j];
                let (state, fp_trace) = runner::run_feature_propagation(
                    g,
                    fp_mlp,
                    &current,
                    &fine.positions,
                    Some(fine.features),
                    &format!("fp{}", self.fp.len() - j),
                );
                trace.modules.push(fp_trace);
                current = state;
            }
            let (out, head_trace) = runner::run_head(g, &self.head, current.features, "seg-head");
            trace.modules.push(head_trace);
            out
        } else {
            let global = states.last().expect("states never empty").features;
            let (out, head_trace) = runner::run_head(g, &self.head, global, "cls-head");
            trace.modules.push(head_trace);
            out
        };
        NetForward { logits, trace }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for m in &mut self.sa {
            params.extend(m.mlp.params_mut());
        }
        for fp in &mut self.fp {
            params.extend(fp.params_mut());
        }
        params.extend(self.head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn classification_small_produces_class_logits() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::classification_small(10, &mut rng);
        let cloud = sample_shape(ShapeClass::Chair, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Original, 3);
        assert_eq!(g.value(out.logits).shape(), (1, 10));
        // 3 SA modules + head.
        assert_eq!(out.trace.modules.len(), 4);
    }

    #[test]
    fn segmentation_small_produces_per_point_logits() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::segmentation_small(6, &mut rng);
        let cloud = sample_shape(ShapeClass::Table, 192, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Delayed, 3);
        assert_eq!(g.value(out.logits).shape(), (192, 6));
        // 3 SA + 3 FP + head.
        assert_eq!(out.trace.modules.len(), 7);
    }

    #[test]
    fn strategies_share_module_structure() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::classification_small(5, &mut rng);
        let cloud = sample_shape(ShapeClass::Lamp, 128, 1);
        for strategy in Strategy::ALL {
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, 3);
            assert_eq!(out.trace.modules.len(), 4, "{strategy}");
            assert_eq!(g.value(out.logits).shape(), (1, 5));
        }
    }

    #[test]
    fn delayed_uses_fewer_macs_than_original() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::classification_small(5, &mut rng);
        let cloud = sample_shape(ShapeClass::Vase, 128, 1);
        let mut g1 = Graph::new();
        let orig = net.forward(&mut g1, &cloud, Strategy::Original, 3);
        let mut g2 = Graph::new();
        let del = net.forward(&mut g2, &cloud, Strategy::Delayed, 3);
        assert!(del.trace.mlp_macs() < orig.trace.mlp_macs());
    }

    #[test]
    fn gradients_reach_first_module() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::classification_small(4, &mut rng);
        let cloud = sample_shape(ShapeClass::Cone, 128, 1);
        let mut g = Graph::new();
        let out = net.forward(&mut g, &cloud, Strategy::Delayed, 3);
        let loss = g.softmax_cross_entropy(out.logits, vec![2]);
        g.backward(loss);
        let w = &net.sa[0].mlp.first_layer().weight;
        assert!(g.param_grad(w.id()).is_some());
    }

    #[test]
    fn paper_scale_dimensions() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let net = PointNetPP::classification_paper(&mut rng);
        assert_eq!(net.input_points(), 1024);
        assert_eq!(net.sa_modules()[0].config.n_out, 512);
        assert_eq!(net.sa_modules()[0].config.k, 32);
        assert_eq!(net.sa_modules()[0].config.m_out(), 128);
    }
}
