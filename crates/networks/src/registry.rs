//! The benchmark registry (paper Table I).

use crate::{densepoint, dgcnn, fpointnet, ldgcnn, pointnetpp, PointCloudNetwork};
use rand::rngs::StdRng;

/// Application domain of a benchmark network (Table I, first column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Object classification (ModelNet40 / 40-class synthetic shapes).
    Classification,
    /// Part segmentation (ShapeNet / labelled synthetic shapes).
    Segmentation,
    /// Object detection (KITTI / synthetic LiDAR frustums).
    Detection,
}

impl Domain {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Classification => "Classification",
            Domain::Segmentation => "Segmentation",
            Domain::Detection => "Detection",
        }
    }
}

/// One of the seven evaluated networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the benchmark names
pub enum NetworkKind {
    PointNetPPClassification,
    PointNetPPSegmentation,
    DgcnnClassification,
    DgcnnSegmentation,
    FPointNet,
    Ldgcnn,
    DensePoint,
}

impl NetworkKind {
    /// All seven benchmarks in the paper's reporting order (Figs. 16–18).
    pub const ALL: [NetworkKind; 7] = [
        NetworkKind::PointNetPPClassification,
        NetworkKind::PointNetPPSegmentation,
        NetworkKind::DgcnnClassification,
        NetworkKind::DgcnnSegmentation,
        NetworkKind::FPointNet,
        NetworkKind::Ldgcnn,
        NetworkKind::DensePoint,
    ];

    /// The five networks profiled in the motivation study (Figs. 4–12).
    pub const PROFILED: [NetworkKind; 5] = [
        NetworkKind::PointNetPPClassification,
        NetworkKind::PointNetPPSegmentation,
        NetworkKind::DgcnnClassification,
        NetworkKind::DgcnnSegmentation,
        NetworkKind::FPointNet,
    ];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::PointNetPPClassification => "PointNet++ (c)",
            NetworkKind::PointNetPPSegmentation => "PointNet++ (s)",
            NetworkKind::DgcnnClassification => "DGCNN (c)",
            NetworkKind::DgcnnSegmentation => "DGCNN (s)",
            NetworkKind::FPointNet => "F-PointNet",
            NetworkKind::Ldgcnn => "LDGCNN",
            NetworkKind::DensePoint => "DensePoint",
        }
    }

    /// Short, shell-safe identifier for CLI flags and config files
    /// (`mesorasi-serve --network pointnetpp-cls`).
    pub fn cli_name(self) -> &'static str {
        match self {
            NetworkKind::PointNetPPClassification => "pointnetpp-cls",
            NetworkKind::PointNetPPSegmentation => "pointnetpp-seg",
            NetworkKind::DgcnnClassification => "dgcnn-cls",
            NetworkKind::DgcnnSegmentation => "dgcnn-seg",
            NetworkKind::FPointNet => "fpointnet",
            NetworkKind::Ldgcnn => "ldgcnn",
            NetworkKind::DensePoint => "densepoint",
        }
    }

    /// Parses a [`NetworkKind::cli_name`] (case-insensitive, surrounding
    /// whitespace ignored); `None` for unknown names.
    pub fn from_cli_name(name: &str) -> Option<NetworkKind> {
        let want = name.trim().to_ascii_lowercase();
        NetworkKind::ALL.into_iter().find(|k| k.cli_name() == want)
    }

    /// Application domain (Table I).
    pub fn domain(self) -> Domain {
        match self {
            NetworkKind::PointNetPPClassification
            | NetworkKind::DgcnnClassification
            | NetworkKind::Ldgcnn
            | NetworkKind::DensePoint => Domain::Classification,
            NetworkKind::PointNetPPSegmentation | NetworkKind::DgcnnSegmentation => {
                Domain::Segmentation
            }
            NetworkKind::FPointNet => Domain::Detection,
        }
    }

    /// Dataset the paper evaluates on (Table I); this reproduction uses the
    /// synthetic stand-ins documented in `DESIGN.md`.
    pub fn dataset(self) -> &'static str {
        match self.domain() {
            Domain::Classification => "ModelNet40",
            Domain::Segmentation => "ShapeNet",
            Domain::Detection => "KITTI",
        }
    }

    /// Publication year (Table I).
    pub fn year(self) -> u32 {
        match self {
            NetworkKind::PointNetPPClassification | NetworkKind::PointNetPPSegmentation => 2017,
            NetworkKind::FPointNet => 2018,
            NetworkKind::DgcnnClassification
            | NetworkKind::DgcnnSegmentation
            | NetworkKind::Ldgcnn
            | NetworkKind::DensePoint => 2019,
        }
    }

    /// Paper-reported baseline accuracy (Fig. 16, "Original" bars), in
    /// percent. Classification: overall accuracy; segmentation: mIoU;
    /// detection: geometric-mean BEV IoU.
    pub fn paper_accuracy_original(self) -> f64 {
        match self {
            NetworkKind::PointNetPPClassification => 90.8,
            NetworkKind::PointNetPPSegmentation => 84.0,
            NetworkKind::DgcnnClassification => 91.5,
            NetworkKind::DgcnnSegmentation => 84.9,
            NetworkKind::FPointNet => 71.3,
            NetworkKind::Ldgcnn => 92.9,
            NetworkKind::DensePoint => 92.6,
        }
    }

    /// Paper-reported Mesorasi accuracy (Fig. 16, "Mesorasi" bars).
    pub fn paper_accuracy_mesorasi(self) -> f64 {
        match self {
            NetworkKind::PointNetPPClassification => 89.9,
            NetworkKind::PointNetPPSegmentation => 84.0,
            NetworkKind::DgcnnClassification => 91.5,
            NetworkKind::DgcnnSegmentation => 84.2,
            NetworkKind::FPointNet => 72.5,
            NetworkKind::Ldgcnn => 92.3,
            NetworkKind::DensePoint => 93.2,
        }
    }

    /// Paper-measured GPU latency on TX2 (Fig. 4), milliseconds; `None`
    /// for the two networks not profiled there.
    pub fn paper_gpu_latency_ms(self) -> Option<f64> {
        match self {
            NetworkKind::PointNetPPClassification => Some(71.1),
            NetworkKind::PointNetPPSegmentation => Some(132.9),
            NetworkKind::DgcnnClassification => Some(744.8),
            NetworkKind::DgcnnSegmentation => Some(5200.8),
            NetworkKind::FPointNet => Some(141.4),
            _ => None,
        }
    }

    /// Builds the paper-scale instance of this network.
    pub fn build_paper(self, rng: &mut StdRng) -> Box<dyn PointCloudNetwork> {
        match self {
            NetworkKind::PointNetPPClassification => {
                Box::new(pointnetpp::PointNetPP::classification_paper(rng))
            }
            NetworkKind::PointNetPPSegmentation => {
                Box::new(pointnetpp::PointNetPP::segmentation_paper(50, rng))
            }
            NetworkKind::DgcnnClassification => Box::new(dgcnn::Dgcnn::classification_paper(rng)),
            NetworkKind::DgcnnSegmentation => Box::new(dgcnn::Dgcnn::segmentation_paper(50, rng)),
            NetworkKind::FPointNet => Box::new(fpointnet::FPointNet::paper(rng)),
            NetworkKind::Ldgcnn => Box::new(ldgcnn::Ldgcnn::paper(rng)),
            NetworkKind::DensePoint => Box::new(densepoint::DensePoint::paper(rng)),
        }
    }

    /// Builds a small trainable instance (for the Fig. 16 experiment and
    /// the test suite). `classes` is the label-space size of the task.
    pub fn build_small(self, classes: usize, rng: &mut StdRng) -> Box<dyn PointCloudNetwork> {
        match self {
            NetworkKind::PointNetPPClassification => {
                Box::new(pointnetpp::PointNetPP::classification_small(classes, rng))
            }
            NetworkKind::PointNetPPSegmentation => {
                Box::new(pointnetpp::PointNetPP::segmentation_small(classes, rng))
            }
            NetworkKind::DgcnnClassification => {
                Box::new(dgcnn::Dgcnn::classification_small(classes, rng))
            }
            NetworkKind::DgcnnSegmentation => {
                Box::new(dgcnn::Dgcnn::segmentation_small(classes, rng))
            }
            NetworkKind::FPointNet => Box::new(fpointnet::FPointNet::small(rng)),
            NetworkKind::Ldgcnn => Box::new(ldgcnn::Ldgcnn::small(classes, rng)),
            NetworkKind::DensePoint => Box::new(densepoint::DensePoint::small(classes, rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(NetworkKind::ALL.len(), 7);
        assert_eq!(NetworkKind::PointNetPPClassification.dataset(), "ModelNet40");
        assert_eq!(NetworkKind::DgcnnSegmentation.dataset(), "ShapeNet");
        assert_eq!(NetworkKind::FPointNet.dataset(), "KITTI");
        assert_eq!(NetworkKind::FPointNet.year(), 2018);
        assert_eq!(NetworkKind::Ldgcnn.year(), 2019);
    }

    #[test]
    fn cli_names_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in NetworkKind::ALL {
            assert!(seen.insert(kind.cli_name()), "duplicate cli name {}", kind.cli_name());
            assert_eq!(NetworkKind::from_cli_name(kind.cli_name()), Some(kind));
            assert_eq!(NetworkKind::from_cli_name(&kind.cli_name().to_uppercase()), Some(kind));
        }
        assert_eq!(NetworkKind::from_cli_name("pointnet5000"), None);
    }

    #[test]
    fn paper_accuracy_deltas_are_within_reported_band() {
        // Fig. 16: −0.9 % worst loss, +1.2 % best gain.
        for kind in NetworkKind::ALL {
            let delta = kind.paper_accuracy_mesorasi() - kind.paper_accuracy_original();
            assert!((-0.95..=1.25).contains(&delta), "{}: {delta}", kind.name());
        }
    }

    #[test]
    fn profiled_networks_have_fig4_latencies() {
        for kind in NetworkKind::PROFILED {
            assert!(kind.paper_gpu_latency_ms().is_some());
        }
        assert!(NetworkKind::Ldgcnn.paper_gpu_latency_ms().is_none());
    }
}
