//! The seven point-cloud networks the paper evaluates (Table I), plus the
//! CNN baselines of Fig. 7.
//!
//! | network | domain | module style | here |
//! |---|---|---|---|
//! | PointNet++ (c) | classification | offset (ball query) | [`pointnetpp`] |
//! | PointNet++ (s) | segmentation | offset + feature propagation | [`pointnetpp`] |
//! | DGCNN (c) | classification | edge (dynamic feature-space graph) | [`dgcnn`] |
//! | DGCNN (s) | segmentation | edge, deeper | [`dgcnn`] |
//! | LDGCNN | classification | edge with hierarchical skip links | [`ldgcnn`] |
//! | DensePoint | classification | offset, dense connectivity, 1-layer MLPs | [`densepoint`] |
//! | F-PointNet | detection | frustum pipeline (seg + T-Net + box) | [`fpointnet`] |
//!
//! Every network implements [`PointCloudNetwork`]: a functional forward
//! pass (trainable through `mesorasi-nn`) that simultaneously records the
//! [`NetworkTrace`] the hardware simulator replays. Paper-scale and small
//! (trainable in seconds) configurations are provided for each.

#![forbid(unsafe_code)]

pub mod cnn;
pub mod datasets;
pub mod densepoint;
pub mod dgcnn;
pub mod fpointnet;
pub mod ldgcnn;
pub mod pointnetpp;
pub mod registry;
pub mod session;

use mesorasi_core::{NetworkTrace, Strategy};
use mesorasi_nn::{Graph, Param, VarId};
use mesorasi_pointcloud::PointCloud;

pub use registry::{Domain, NetworkKind};
pub use session::{
    Boxes3D, CheckoutError, FrameStream, Inference, Logits, PerPointLabels, Session,
    SessionBuilder, DEFAULT_TILE_BUDGET,
};

/// Result of a network forward pass: task output plus the recorded
/// workload.
#[derive(Debug)]
pub struct NetForward {
    /// Task logits: `1 × classes` for classification, `N × parts` for
    /// segmentation, `1 × 7` box parameters for detection.
    pub logits: VarId,
    /// The recorded workload trace.
    pub trace: NetworkTrace,
}

/// Common interface over the seven evaluated networks.
///
/// `Send + Sync` are supertraits so an owned network can move into a
/// [`Session`] and be shared across threads (forward passes take `&self`;
/// all implementations are plain data).
pub trait PointCloudNetwork: Send + Sync {
    /// Display name matching the paper's tables (e.g. "PointNet++ (c)").
    fn name(&self) -> &str;

    /// Expected input point count.
    fn input_points(&self) -> usize;

    /// The task this instance solves, which decides the [`Inference`]
    /// variant a [`Session`] returns for it.
    fn domain(&self) -> Domain;

    /// Runs the network on `cloud` under `strategy`, recording the trace.
    ///
    /// `seed` controls centroid sampling so strategies can be compared on
    /// identical neighbor structures.
    fn forward(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> NetForward;

    /// The output vars a [`Session`] keeps from one forward pass, in the
    /// domain's canonical order. The default keeps the task logits;
    /// detection pipelines override this to expose the box head as well
    /// (`[seg_logits, box_params]`).
    fn session_outputs(
        &self,
        g: &mut Graph,
        cloud: &PointCloud,
        strategy: Strategy,
        seed: u64,
    ) -> Vec<VarId> {
        vec![self.forward(g, cloud, strategy, seed).logits]
    }

    /// An owned copy of this network behind the trait object — how a
    /// [`SessionBuilder`] takes a snapshot of weights it only borrows.
    fn boxed_clone(&self) -> Box<dyn PointCloudNetwork>;

    /// All trainable parameters, for optimizer steps.
    fn params_mut(&mut self) -> Vec<&mut Param>;
}
