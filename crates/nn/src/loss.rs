//! Loss helpers built on the graph's primitive losses.

use crate::graph::{Graph, VarId};
use mesorasi_tensor::{ops, Matrix};

/// Computes classification logits' predicted labels (row-wise argmax).
pub fn predictions(logits: &Matrix) -> Vec<u32> {
    ops::argmax_rows(logits).into_iter().map(|i| i as u32).collect()
}

/// Cross-entropy with label smoothing `ε`: the target distribution is
/// `(1 − ε)` on the true class and `ε / (C − 1)` elsewhere. `ε = 0` reduces
/// to plain cross-entropy. Returns a `1×1` loss node.
///
/// Implemented as a weighted sum of per-class cross-entropies expressed with
/// existing graph ops so gradients are exact.
///
/// # Panics
///
/// Panics if `eps ∉ [0, 1)` or labels are out of range.
pub fn smoothed_cross_entropy(g: &mut Graph, logits: VarId, labels: &[u32], eps: f32) -> VarId {
    assert!((0.0..1.0).contains(&eps), "smoothing must be in [0, 1)");
    if eps == 0.0 {
        return g.softmax_cross_entropy(logits, labels.to_vec());
    }
    let classes = g.value(logits).cols();
    assert!(classes > 1, "smoothing needs at least two classes");
    // loss = (1−ε)·CE(labels) + ε/(C−1)·Σ_{c≠label} CE(c)
    //      = (1−ε−ε/(C−1))·CE(labels) + ε/(C−1)·Σ_all_c CE(c)
    let all_term_weight = eps / (classes as f32 - 1.0);
    let main = g.softmax_cross_entropy(logits, labels.to_vec());
    let main = g.scale(main, 1.0 - eps - all_term_weight);
    let mut total = main;
    // Σ over all classes of CE with constant label c, averaged later by the
    // per-term mean that softmax_cross_entropy already applies.
    for c in 0..classes {
        let term = g.softmax_cross_entropy(logits, vec![c as u32; labels.len()]);
        let term = g.scale(term, all_term_weight);
        total = g.add(total, term);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_are_argmax() {
        let logits = Matrix::from_rows(&[&[0.1, 0.9], &[2.0, -1.0]]);
        assert_eq!(predictions(&logits), vec![1, 0]);
    }

    #[test]
    fn zero_smoothing_equals_plain_ce() {
        let logits_val = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, -1.0, 1.5]]);
        let labels = vec![1u32, 2];
        let mut g1 = Graph::new();
        let l1 = g1.input(logits_val.clone());
        let a = smoothed_cross_entropy(&mut g1, l1, &labels, 0.0);
        let mut g2 = Graph::new();
        let l2 = g2.input(logits_val);
        let b = g2.softmax_cross_entropy(l2, labels);
        assert!((g1.value(a)[(0, 0)] - g2.value(b)[(0, 0)]).abs() < 1e-6);
    }

    #[test]
    fn smoothing_increases_loss_for_confident_correct_predictions() {
        let logits_val = Matrix::from_rows(&[&[10.0, -10.0]]);
        let labels = vec![0u32];
        let mut g1 = Graph::new();
        let l1 = g1.input(logits_val.clone());
        let plain = smoothed_cross_entropy(&mut g1, l1, &labels, 0.0);
        let mut g2 = Graph::new();
        let l2 = g2.input(logits_val);
        let smooth = smoothed_cross_entropy(&mut g2, l2, &labels, 0.1);
        assert!(g2.value(smooth)[(0, 0)] > g1.value(plain)[(0, 0)]);
    }

    #[test]
    fn smoothed_gradient_flows() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_rows(&[&[0.5, -0.5]]));
        let loss = smoothed_cross_entropy(&mut g, logits, &[0], 0.2);
        g.backward(loss);
        assert!(g.grad(logits).is_some());
    }
}
