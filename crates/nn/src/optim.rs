//! Optimizers.

use crate::graph::Graph;
use crate::param::Param;
use mesorasi_tensor::Matrix;

/// A gradient-descent optimizer. After `Graph::backward`, call
/// [`Optimizer::step`] with the model's parameters; gradients are looked up
/// on the graph by parameter id, and parameters that did not participate in
/// the pass are left untouched.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut [&mut Param], graph: &Graph);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum ∉ [0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param], graph: &Graph) {
        for p in params {
            let Some(grad) = graph.param_grad(p.id()) else {
                continue;
            };
            if self.momentum == 0.0 {
                for (v, &g) in p.value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *v -= self.lr * g;
                }
            } else {
                let grad = grad.clone();
                let vel = p.moment1.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                for ((m, &g), v) in
                    vel.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(p.value.as_mut_slice())
                {
                    *m = self.momentum * *m + g;
                    *v -= self.lr * *m;
                }
            }
        }
    }
}

/// Adam (Kingma & Ba), the optimizer the paper's networks train with.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param], graph: &Graph) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let Some(grad) = graph.param_grad(p.id()) else {
                continue;
            };
            let grad = grad.clone();
            let (rows, cols) = grad.shape();
            let m = p.moment1.get_or_insert_with(|| Matrix::zeros(rows, cols));
            let v = p.moment2.get_or_insert_with(|| Matrix::zeros(rows, cols));
            for i in 0..grad.len() {
                let g = grad.as_slice()[i];
                let mi = &mut m.as_mut_slice()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                let vi = &mut v.as_mut_slice()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                p.value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes f(w) = mean((x·w − t)²) and returns the final loss.
    fn fit(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut w = Param::new(Matrix::from_rows(&[&[5.0], &[-5.0]]));
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let t = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let mut last = f32::INFINITY;
        for _ in 0..iters {
            let mut g = Graph::new();
            let wv = g.param(&w);
            let xv = g.input(x.clone());
            let y = g.matmul(xv, wv);
            let tv = g.input(t.clone());
            let loss = g.mse(y, tv);
            last = g.value(loss)[(0, 0)];
            g.backward(loss);
            opt.step(&mut [&mut w], &g);
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.2, 0.0);
        assert!(fit(&mut opt, 200) < 1e-4);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let plain = fit(&mut Sgd::new(0.05, 0.0), 40);
        let momentum = fit(&mut Sgd::new(0.05, 0.9), 40);
        assert!(momentum < plain, "momentum {momentum} should beat plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(fit(&mut opt, 300) < 1e-3);
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn unused_params_are_untouched() {
        let mut used = Param::new(Matrix::from_rows(&[&[1.0]]));
        let mut unused = Param::new(Matrix::from_rows(&[&[42.0]]));
        let mut g = Graph::new();
        let w = g.param(&used);
        let x = g.input(Matrix::from_rows(&[&[2.0]]));
        let y = g.matmul(x, w);
        let t = g.input(Matrix::zeros(1, 1));
        let loss = g.mse(y, t);
        g.backward(loss);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut used, &mut unused], &g);
        assert_eq!(unused.value[(0, 0)], 42.0);
        assert_ne!(used.value[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
