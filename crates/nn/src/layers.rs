//! Trainable layers.
//!
//! Point-cloud networks are built almost entirely from *shared* MLPs: the
//! same `Linear` weights applied to every row of a batched matrix (paper
//! Fig. 3: "the same MLP is shared across all the row vectors"). A
//! [`SharedMlp`] is therefore just a stack of [`Linear`] + normalization +
//! ReLU applied to an `N × M` matrix.

use crate::graph::{Graph, VarId};
use crate::init;
use crate::param::Param;
use mesorasi_tensor::Matrix;
use rand::rngs::StdRng;

/// A fully-connected layer `y = x · W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in × out`.
    pub weight: Param,
    /// Bias row, `1 × out`.
    pub bias: Param,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: Param::new(init::xavier_uniform(in_dim, out_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Applies the layer to every row of `x`.
    pub fn forward(&self, g: &mut Graph, x: VarId) -> VarId {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        let y = g.matmul(x, w);
        g.add_bias(y, b)
    }

    /// Applies only the matrix-vector product, *without bias* — used by the
    /// limited delayed-aggregation baseline (Ltd-Mesorasi), which may hoist
    /// only the linear part of the first layer ahead of aggregation because
    /// only that part distributes exactly over subtraction.
    pub fn forward_linear_only(&self, g: &mut Graph, x: VarId) -> VarId {
        let w = g.param(&self.weight);
        g.matmul(x, w)
    }

    /// Adds this layer's bias to `x` (completes [`Self::forward_linear_only`]).
    pub fn forward_bias_only(&self, g: &mut Graph, x: VarId) -> VarId {
        let b = g.param(&self.bias);
        g.add_bias(x, b)
    }

    /// Collects the layer's parameters for an optimizer step.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Trainable per-column scale and shift applied after detached
/// standardization — the simplified batch normalization used throughout
/// (see [`Graph::standardize`] for why the statistics are detached; the
/// paper §VII-B notes batch normalization "perturbs the distributive
/// property ... more than ReLU", which Fig. 16's retraining recovers).
#[derive(Debug, Clone)]
pub struct FeatureNorm {
    /// Per-column scale, `1 × dim`, initialized to 1.
    pub gamma: Param,
    /// Per-column shift, `1 × dim`, initialized to 0.
    pub beta: Param,
}

impl FeatureNorm {
    /// Creates a norm over `dim` features.
    pub fn new(dim: usize) -> Self {
        FeatureNorm {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
        }
    }

    /// Standardizes columns (detached stats), then applies `γ · x + β`.
    pub fn forward(&self, g: &mut Graph, x: VarId) -> VarId {
        let standardized = g.standardize(x);
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        // scale by broadcasting gamma: implemented as hstack-free per-column
        // multiply using a constant-shaped trick: y = standardized ⊙ γ_rows.
        let rows = g.value(standardized).rows();
        let gamma_rows = g.gather(gamma, vec![0; rows]);
        let scaled = g.hadamard(standardized, gamma_rows);
        let beta_rows = g.gather(beta, vec![0; rows]);
        g.add(scaled, beta_rows)
    }

    /// Collects parameters for an optimizer step.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Where a [`SharedMlp`] applies normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormMode {
    /// No normalization (pure Linear + ReLU). Distributivity holds best.
    None,
    /// [`FeatureNorm`] between the linear map and the ReLU.
    Feature,
}

/// A stack of shared fully-connected layers with ReLU between them — the
/// `F` operator of a point-cloud module (an MLP applied to batched rows).
#[derive(Debug, Clone)]
pub struct SharedMlp {
    layers: Vec<Linear>,
    norms: Vec<Option<FeatureNorm>>,
    /// Apply ReLU after the last layer too (point-cloud modules do; final
    /// classifier heads don't).
    relu_last: bool,
}

impl SharedMlp {
    /// Builds an MLP with the given layer widths, e.g. `[3, 64, 64, 128]`
    /// builds three layers (3→64→64→128) — the first PointNet++ module's
    /// MLP in Fig. 3.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], norm: NormMode, relu_last: bool, rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        let mut layers = Vec::with_capacity(widths.len() - 1);
        let mut norms = Vec::with_capacity(widths.len() - 1);
        for w in widths.windows(2) {
            layers.push(Linear::new(w[0], w[1], rng));
            norms.push(match norm {
                NormMode::None => None,
                NormMode::Feature => Some(FeatureNorm::new(w[1])),
            });
        }
        SharedMlp { layers, norms, relu_last }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layer widths, `[in, hidden..., out]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.layers.iter().map(Linear::in_dim).collect();
        w.push(self.layers.last().expect("at least one layer").out_dim());
        w
    }

    /// The first layer (the one Ltd-Mesorasi hoists).
    pub fn first_layer(&self) -> &Linear {
        &self.layers[0]
    }

    /// Mutable access to the final layer (e.g. to seed output priors).
    pub fn last_layer_mut(&mut self) -> &mut Linear {
        self.layers.last_mut().expect("at least one layer")
    }

    /// Full forward pass over every row of `x`.
    pub fn forward(&self, g: &mut Graph, x: VarId) -> VarId {
        let mut h = x;
        let n = self.layers.len();
        for (i, (layer, norm)) in self.layers.iter().zip(&self.norms).enumerate() {
            h = layer.forward(g, h);
            if let Some(norm) = norm {
                h = norm.forward(g, h);
            }
            if i + 1 < n || self.relu_last {
                h = g.relu(h);
            }
        }
        h
    }

    /// Forward pass skipping the first layer's linear part — the tail used
    /// by Ltd-Mesorasi after it hoisted `x · W₁` before aggregation. The
    /// input here is the already-multiplied (and aggregated) activation.
    pub fn forward_after_first_linear(&self, g: &mut Graph, x_w1: VarId) -> VarId {
        let n = self.layers.len();
        let mut h = self.layers[0].forward_bias_only(g, x_w1);
        if let Some(norm) = &self.norms[0] {
            h = norm.forward(g, h);
        }
        if n > 1 || self.relu_last {
            h = g.relu(h);
        }
        for (i, (layer, norm)) in self.layers.iter().zip(&self.norms).enumerate().skip(1) {
            h = layer.forward(g, h);
            if let Some(norm) = norm {
                h = norm.forward(g, h);
            }
            if i + 1 < n || self.relu_last {
                h = g.relu(h);
            }
        }
        h
    }

    /// Collects all parameters for an optimizer step.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for (layer, norm) in self.layers.iter_mut().zip(&mut self.norms) {
            out.extend(layer.params_mut());
            if let Some(norm) = norm {
                out.extend(norm.params_mut());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn linear_forward_shape_and_value() {
        let mut rng = mesorasi_pointcloud::seeded_rng(0);
        let layer = Linear::new(3, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(5, 3));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 2));
        // zero input → output equals bias (zero)
        assert_eq!(g.value(y).max_abs(), 0.0);
    }

    #[test]
    fn hadamard_value_and_gradient_match_product_rule() {
        let a0 = Matrix::from_rows(&[&[2.0, -3.0]]);
        let b0 = Matrix::from_rows(&[&[5.0, 7.0]]);
        let mut g = Graph::new();
        let a = g.input(a0.clone());
        let b = g.input(b0.clone());
        let y = g.hadamard(a, b);
        assert_eq!(g.value(y), &Matrix::from_rows(&[&[10.0, -21.0]]));
        let t = g.input(Matrix::zeros(1, 2));
        let loss = g.mse(y, t);
        g.backward(loss);
        // dL/dy = 2y/n = y; dL/da = y ⊙ b, dL/db = y ⊙ a (n = 2)
        let gy = g.grad(y).unwrap().clone();
        let ga = g.grad(a).unwrap().clone();
        let gb = g.grad(b).unwrap().clone();
        for c in 0..2 {
            assert!((ga[(0, c)] - gy[(0, c)] * b0[(0, c)]).abs() < 1e-5);
            assert!((gb[(0, c)] - gy[(0, c)] * a0[(0, c)]).abs() < 1e-5);
        }
    }

    #[test]
    fn shared_mlp_widths_round_trip() {
        let mut rng = mesorasi_pointcloud::seeded_rng(1);
        let mlp = SharedMlp::new(&[3, 64, 64, 128], NormMode::None, true, &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.widths(), vec![3, 64, 64, 128]);
    }

    #[test]
    fn relu_last_controls_output_sign() {
        let mut rng = mesorasi_pointcloud::seeded_rng(2);
        let mlp = SharedMlp::new(&[4, 8], NormMode::None, true, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(16, 4, |r, c| ((r * c) as f32).sin()));
        let y = mlp.forward(&mut g, x);
        assert!(g.value(y).as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn ltd_split_equals_full_forward() {
        // forward == first_linear_only → tail, exactly (no aggregation in
        // between here, so the split must be lossless).
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        let mlp = SharedMlp::new(&[3, 8, 5], NormMode::None, true, &mut rng);
        let x0 = Matrix::from_fn(10, 3, |r, c| ((r + c) as f32 * 0.7).cos());

        let mut g1 = Graph::new();
        let x1 = g1.input(x0.clone());
        let full = mlp.forward(&mut g1, x1);

        let mut g2 = Graph::new();
        let x2 = g2.input(x0);
        let lin = mlp.first_layer().forward_linear_only(&mut g2, x2);
        let split = mlp.forward_after_first_linear(&mut g2, lin);

        let diff = mesorasi_tensor::ops::sub(g1.value(full), g2.value(split)).max_abs();
        assert!(diff < 1e-5);
    }

    #[test]
    fn feature_norm_learns_scale() {
        // One FeatureNorm should be able to fit y = 3·standardize(x) + 1.
        let mut norm = FeatureNorm::new(2);
        let mut opt = Sgd::new(0.5, 0.0);
        let x0 = Matrix::from_fn(32, 2, |r, c| (r as f32 * 0.37 + c as f32).sin());
        for _ in 0..200 {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let std = g.standardize(x);
            let target_val = {
                let mut t = g.value(std).clone();
                t.map_inplace(|v| 3.0 * v + 1.0);
                t
            };
            let y = norm.forward(&mut g, x);
            let t = g.input(target_val);
            let loss = g.mse(y, t);
            g.backward(loss);
            opt.step(&mut norm.params_mut(), &g);
        }
        assert!((norm.gamma.value[(0, 0)] - 3.0).abs() < 0.05);
        assert!((norm.beta.value[(0, 0)] - 1.0).abs() < 0.05);
    }

    #[test]
    fn mlp_trains_on_xor_like_task() {
        let mut rng = mesorasi_pointcloud::seeded_rng(4);
        let mut mlp = SharedMlp::new(&[2, 16, 2], NormMode::None, false, &mut rng);
        let x0 = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = vec![0u32, 1, 1, 0];
        let mut opt = Sgd::new(0.3, 0.9);
        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let logits = mlp.forward(&mut g, x);
            let loss = g.softmax_cross_entropy(logits, labels.clone());
            final_loss = g.value(loss)[(0, 0)];
            g.backward(loss);
            opt.step(&mut mlp.params_mut(), &g);
        }
        assert!(final_loss < 0.1, "XOR should be learnable, loss = {final_loss}");
    }
}
