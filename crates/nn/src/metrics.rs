//! Evaluation metrics matching the paper's reporting (§VI "Software Setup"):
//! overall accuracy for classification (ModelNet40), mean
//! Intersection-over-Union for segmentation (ShapeNet), and IoU for
//! detection boxes.

/// Fraction of predictions equal to their label — "the standard overall
/// accuracy metric".
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "one prediction per label");
    assert!(!labels.is_empty(), "accuracy of empty set");
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// A streaming confusion matrix over `classes` classes.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[actual][predicted]`, row-major.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records a batch of predictions.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any id is out of range.
    pub fn record(&mut self, predictions: &[u32], labels: &[u32]) {
        assert_eq!(predictions.len(), labels.len(), "one prediction per label");
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!((p as usize) < self.classes && (l as usize) < self.classes);
            self.counts[l as usize * self.classes + p as usize] += 1;
        }
    }

    /// Count of `(actual, predicted)` pairs.
    pub fn count(&self, actual: u32, predicted: u32) -> u64 {
        self.counts[actual as usize * self.classes + predicted as usize]
    }

    /// Overall accuracy from the recorded counts.
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c as u32, c as u32)).sum();
        diag as f64 / total as f64
    }

    /// Per-class IoU: `tp / (tp + fp + fn)`. Classes never seen (no true or
    /// predicted instances) yield `None`.
    pub fn per_class_iou(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|c| {
                let c32 = c as u32;
                let tp = self.count(c32, c32);
                let fp: u64 =
                    (0..self.classes).filter(|&a| a != c).map(|a| self.count(a as u32, c32)).sum();
                let fn_: u64 =
                    (0..self.classes).filter(|&p| p != c).map(|p| self.count(c32, p as u32)).sum();
                let denom = tp + fp + fn_;
                if denom == 0 {
                    None
                } else {
                    Some(tp as f64 / denom as f64)
                }
            })
            .collect()
    }

    /// Mean IoU over the classes that were seen — the ShapeNet metric.
    pub fn mean_iou(&self) -> f64 {
        let ious: Vec<f64> = self.per_class_iou().into_iter().flatten().collect();
        if ious.is_empty() {
            return 0.0;
        }
        ious.iter().sum::<f64>() / ious.len() as f64
    }
}

/// Axis-aligned 2-D IoU between two birds-eye-view boxes
/// `(cx, cy, w, h)` — the BEV detection metric used for F-PointNet.
pub fn bev_iou(a: (f32, f32, f32, f32), b: (f32, f32, f32, f32)) -> f64 {
    let half = |b: (f32, f32, f32, f32)| {
        (b.0 - b.2 / 2.0, b.1 - b.3 / 2.0, b.0 + b.2 / 2.0, b.1 + b.3 / 2.0)
    };
    let (ax0, ay0, ax1, ay1) = half(a);
    let (bx0, by0, bx1, by1) = half(b);
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0) as f64;
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0) as f64;
    let inter = ix * iy;
    let union = (a.2 as f64 * a.3 as f64) + (b.2 as f64 * b.3 as f64) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Geometric mean of per-class values — the paper reports "the geometric
/// mean of the IoU metric (BEV) across its classes" for F-PointNet.
///
/// # Panics
///
/// Panics if `values` is empty or any value is negative.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty set");
    assert!(values.iter().all(|&v| v >= 0.0), "values must be non-negative");
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_accuracy_matches_direct() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(&[0, 1, 2, 1], &[0, 1, 1, 1]);
        assert_eq!(cm.accuracy(), 0.75);
        assert_eq!(cm.count(1, 2), 1);
    }

    #[test]
    fn perfect_prediction_has_miou_one() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(&[0, 1, 0, 1], &[0, 1, 0, 1]);
        assert_eq!(cm.mean_iou(), 1.0);
    }

    #[test]
    fn iou_counts_fp_and_fn() {
        let mut cm = ConfusionMatrix::new(2);
        // class 0: tp=1, fn=1 (one 0 predicted as 1), fp=0 → IoU 0.5
        // class 1: tp=1, fp=1, fn=0 → IoU 0.5
        cm.record(&[0, 1, 1], &[0, 0, 1]);
        let ious = cm.per_class_iou();
        assert_eq!(ious[0], Some(0.5));
        assert_eq!(ious[1], Some(0.5));
        assert_eq!(cm.mean_iou(), 0.5);
    }

    #[test]
    fn unseen_classes_are_excluded_from_miou() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(&[0, 0], &[0, 0]);
        assert_eq!(cm.per_class_iou()[2], None);
        assert_eq!(cm.mean_iou(), 1.0);
    }

    #[test]
    fn bev_iou_identical_and_disjoint() {
        let a = (0.0, 0.0, 2.0, 2.0);
        assert!((bev_iou(a, a) - 1.0).abs() < 1e-9);
        let far = (10.0, 10.0, 2.0, 2.0);
        assert_eq!(bev_iou(a, far), 0.0);
        // half-overlap: boxes shifted by half a width
        let shifted = (1.0, 0.0, 2.0, 2.0);
        let iou = bev_iou(a, shifted);
        assert!((iou - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-9);
    }
}
