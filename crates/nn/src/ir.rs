//! The shared operator IR.
//!
//! A forward pass is a straight-line, single-assignment sequence of [`Op`]s
//! over [`VarId`] values. Two engines consume the same IR:
//!
//! * the [`crate::Graph`] tape records it define-by-run and keeps enough
//!   per-node metadata (argmax winners, detached statistics, cached
//!   probabilities) to differentiate it in reverse — the training engine;
//! * the [`crate::plan`] module compiles a recorded sequence into an
//!   immutable `Plan` with a liveness-assigned buffer arena and replays it
//!   grad-free — the inference engine.
//!
//! Everything an op needs to *recompute its value* lives in the `Op` itself
//! (operand ids plus structural constants); everything only the backward
//! pass needs lives in the tape, not here. That split is what makes the
//! sequence replayable on fresh data.

use mesorasi_tensor::Matrix;

/// Handle to a value in an op sequence (its position in the sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The node index this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a node index (for engines that iterate a
    /// recorded sequence positionally).
    #[inline]
    pub fn from_index(i: usize) -> VarId {
        VarId(i)
    }
}

/// One operation of the shared IR.
///
/// Index lists stored inline (`Gather::indices`, `GatherMax::groups`,
/// `WeightedGather`) are the values observed at record time; a plan may
/// override them per sample through its dynamic bindings when they derive
/// from a neighbor search.
#[derive(Debug, Clone)]
pub enum Op {
    /// Leaf: external input or constant. No gradient flows out.
    Input,
    /// Leaf: trainable parameter, identified by its stable param id.
    Param {
        /// The [`crate::Param`] id this node mirrors.
        pid: u64,
    },
    /// `a · b`.
    MatMul {
        /// Left operand.
        a: VarId,
        /// Right operand.
        b: VarId,
    },
    /// `x + bias` with `bias` broadcast across rows.
    AddBias {
        /// The batched input.
        x: VarId,
        /// The `1 × cols` bias row.
        bias: VarId,
    },
    /// `a + b` elementwise.
    Add {
        /// Left operand.
        a: VarId,
        /// Right operand.
        b: VarId,
    },
    /// `a - b` elementwise.
    Sub {
        /// Left operand.
        a: VarId,
        /// Right operand.
        b: VarId,
    },
    /// `max(x, 0)` elementwise.
    Relu {
        /// The input.
        x: VarId,
    },
    /// `a ⊙ b` elementwise, both operands on the graph.
    Hadamard {
        /// Left operand.
        a: VarId,
        /// Right operand.
        b: VarId,
    },
    /// `x ⊙ mask` with a constant mask (dropout, detached scaling). The
    /// mask is a true constant of the computation, so it is part of the IR.
    MulConst {
        /// The input.
        x: VarId,
        /// The constant mask, same shape as `x`.
        mask: Matrix,
    },
    /// `x * s`.
    Scale {
        /// The input.
        x: VarId,
        /// The scalar factor.
        s: f32,
    },
    /// Row gather: `out[i] = x[indices[i]]`.
    Gather {
        /// The source rows.
        x: VarId,
        /// One source row index per output row (repeats allowed).
        indices: Vec<usize>,
    },
    /// `grouped[i] -= centroids[i / k]` (aggregation normalization).
    SubCentroid {
        /// The gathered `(n·k) × m` neighbor rows.
        grouped: VarId,
        /// The `n × m` centroid rows.
        centroids: VarId,
        /// Rows per group.
        k: usize,
    },
    /// Column-wise max over groups of `k` consecutive rows.
    GroupMax {
        /// The grouped input.
        x: VarId,
        /// Rows per group.
        k: usize,
    },
    /// Fused gather + grouped max over NIT entries (delayed aggregation).
    GatherMax {
        /// The Point Feature Table rows.
        x: VarId,
        /// Flattened `n × k` row-index groups into `x`.
        groups: Vec<usize>,
        /// Neighbors per group.
        k: usize,
    },
    /// `out[g] = Σ_j w[g·k+j] · x[idx[g·k+j]]` (3-NN feature interpolation).
    WeightedGather {
        /// The source feature rows.
        x: VarId,
        /// Flattened `n × k` source row indices.
        indices: Vec<usize>,
        /// One (detached) weight per index.
        weights: Vec<f32>,
        /// Stencil size.
        k: usize,
    },
    /// Column concatenation `[a | b]`.
    HStack {
        /// Left block.
        a: VarId,
        /// Right block.
        b: VarId,
    },
    /// Per-column standardization with statistics recomputed from the
    /// input (and detached from the gradient).
    Standardize {
        /// The input.
        x: VarId,
    },
    /// Mean squared error against a target; value is `1×1`.
    Mse {
        /// Predictions.
        pred: VarId,
        /// Targets, same shape.
        target: VarId,
    },
    /// Mean softmax cross-entropy; value is `1×1`.
    SoftmaxCrossEntropy {
        /// The `n × classes` logits.
        logits: VarId,
        /// One label per logits row.
        labels: Vec<u32>,
    },
}

impl Op {
    /// Visits every operand (upstream value) of this op, in a fixed order.
    pub fn for_each_operand(&self, mut f: impl FnMut(VarId)) {
        match self {
            Op::Input | Op::Param { .. } => {}
            Op::Relu { x }
            | Op::MulConst { x, .. }
            | Op::Scale { x, .. }
            | Op::Gather { x, .. }
            | Op::GroupMax { x, .. }
            | Op::GatherMax { x, .. }
            | Op::WeightedGather { x, .. }
            | Op::Standardize { x } => f(*x),
            Op::MatMul { a, b }
            | Op::Add { a, b }
            | Op::Sub { a, b }
            | Op::Hadamard { a, b }
            | Op::HStack { a, b } => {
                f(*a);
                f(*b);
            }
            Op::AddBias { x, bias } => {
                f(*x);
                f(*bias);
            }
            Op::SubCentroid { grouped, centroids, .. } => {
                f(*grouped);
                f(*centroids);
            }
            Op::Mse { pred, target } => {
                f(*pred);
                f(*target);
            }
            Op::SoftmaxCrossEntropy { logits, .. } => f(*logits),
        }
    }

    /// True for leaves (inputs and parameters).
    pub fn is_leaf(&self) -> bool {
        matches!(self, Op::Input | Op::Param { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_visit_order_is_stable() {
        let op = Op::SubCentroid { grouped: VarId(3), centroids: VarId(1), k: 4 };
        let mut seen = Vec::new();
        op.for_each_operand(|v| seen.push(v.index()));
        assert_eq!(seen, vec![3, 1]);
        assert!(!op.is_leaf());
        assert!(Op::Input.is_leaf());
    }
}
