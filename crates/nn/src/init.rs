//! Weight initializers.

use mesorasi_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for linear layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan sizes must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Kaiming/He uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / fan_in)`, suited to ReLU stacks.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan sizes must be positive");
    let a = (6.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_bounded_and_centered() {
        let mut rng = mesorasi_pointcloud::seeded_rng(1);
        let w = xavier_uniform(64, 128, &mut rng);
        let a = (6.0f32 / 192.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        let mean: f32 = w.as_slice().iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean} should be near zero");
    }

    #[test]
    fn kaiming_bound_depends_on_fan_in_only() {
        let mut rng = mesorasi_pointcloud::seeded_rng(2);
        let w = kaiming_uniform(6, 1000, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v.abs() <= 1.0));
        assert!(w.max_abs() > 0.5, "samples should reach near the bound");
    }

    #[test]
    fn deterministic_per_rng_seed() {
        let mut a = mesorasi_pointcloud::seeded_rng(3);
        let mut b = mesorasi_pointcloud::seeded_rng(3);
        assert_eq!(xavier_uniform(4, 4, &mut a), xavier_uniform(4, 4, &mut b));
    }
}
