//! Learning-rate schedules and dropout masks — the remaining training
//! utilities the paper's recipes use (PointNet++ trains with step decay and
//! dropout in its classifier head).

use mesorasi_tensor::Matrix;
use rand::Rng;

/// A learning-rate schedule mapping the epoch to a rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch`.
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Constant rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Step decay: `base · gamma^(epoch / step)` with a floor — PointNet++'s
/// recipe (decay 0.7 every 20 epochs, floored at 1e-5).
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f32,
    /// Multiplier applied every `step` epochs.
    pub gamma: f32,
    /// Epochs between decays.
    pub step: usize,
    /// Lower bound on the rate.
    pub floor: f32,
}

impl StepDecay {
    /// PointNet++'s published schedule scaled to a `base` rate.
    pub fn pointnetpp(base: f32) -> Self {
        StepDecay { base, gamma: 0.7, step: 20, floor: 1e-5 }
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        let decays = (epoch / self.step.max(1)) as i32;
        (self.base * self.gamma.powi(decays)).max(self.floor)
    }
}

/// Generates an inverted-dropout mask: each element is `0` with probability
/// `p` and `1/(1−p)` otherwise, so activations keep their expectation and
/// inference needs no rescaling. Feed to `Graph::mul_const`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1)`.
pub fn dropout_mask<R: Rng>(rows: usize, cols: usize, p: f32, rng: &mut R) -> Matrix {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
    let keep = 1.0 / (1.0 - p);
    Matrix::from_fn(rows, cols, |_, _| if rng.gen::<f32>() < p { 0.0 } else { keep })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_constant() {
        let s = ConstantLr(0.01);
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(1000), 0.01);
    }

    #[test]
    fn step_decay_follows_the_recipe() {
        let s = StepDecay::pointnetpp(1e-3);
        assert_eq!(s.lr_at(0), 1e-3);
        assert_eq!(s.lr_at(19), 1e-3);
        assert!((s.lr_at(20) - 7e-4).abs() < 1e-9);
        assert!((s.lr_at(40) - 4.9e-4).abs() < 1e-9);
        // Floors out eventually.
        assert_eq!(s.lr_at(100_000), 1e-5);
    }

    #[test]
    fn dropout_mask_preserves_expectation() {
        let mut rng = mesorasi_pointcloud::seeded_rng(1);
        let mask = dropout_mask(200, 50, 0.3, &mut rng);
        let mean: f32 = mask.as_slice().iter().sum::<f32>() / mask.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean} should be ~1");
        // Values are exactly 0 or 1/(1-p).
        let keep = 1.0 / 0.7;
        assert!(mask.as_slice().iter().all(|&v| v == 0.0 || (v - keep).abs() < 1e-6));
    }

    #[test]
    fn dropout_zero_probability_is_identity_mask() {
        let mut rng = mesorasi_pointcloud::seeded_rng(2);
        let mask = dropout_mask(8, 8, 0.0, &mut rng);
        assert!(mask.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dropout_one_panics() {
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        let _ = dropout_mask(2, 2, 1.0, &mut rng);
    }
}
