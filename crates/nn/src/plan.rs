//! Plan-and-execute inference: compile a recorded op sequence into an
//! immutable [`Plan`] whose intermediates live in a reusable [`Arena`].
//!
//! The autograd tape re-allocates every intermediate on every forward pass
//! — the right trade for training (values must outlive the pass for the
//! backward walk), pure waste for inference. A `Plan` is built *once* per
//! (network, strategy, input shape) from a recorded [`Graph`]:
//!
//! 1. dead code is eliminated (ops the requested outputs never read, e.g.
//!    the detection heads when only segmentation logits are wanted);
//! 2. a liveness analysis finds each value's last use;
//! 3. every live value is assigned a slot in the arena, slots being reused
//!    as soon as their previous occupant dies — two simultaneously-live
//!    values never alias, and an op's output never aliases its inputs.
//!
//! Steady-state execution then performs **zero heap allocation**: every op
//! writes into its preassigned slot through the `_into` kernels of
//! `mesorasi-tensor`, which are the same kernels the tape calls, so planned
//! values are bit-identical to tape values at every thread count.
//!
//! Per-sample variability (input matrices, neighbor-search index lists,
//! interpolation stencils) enters through [`Bindings`], produced by the
//! engine layer in `mesorasi-core` — this module knows nothing about point
//! clouds, only that some index operands are dynamic.

use crate::graph::Graph;
use crate::ir::{Op, VarId};
use mesorasi_tensor::{group, ops, ops64, Matrix, Matrix64};
use std::collections::HashMap;

/// Marks ops of a recorded graph whose index operands are per-sample
/// values (derived from neighbor searches) rather than network structure.
/// Produced by the recording layer, consumed by [`Plan::from_graph`].
#[derive(Debug, Default, Clone)]
pub struct DynMarks {
    /// Node index → index-binding id ([`Op::Gather`] indices or
    /// [`Op::GatherMax`] groups).
    pub indices: HashMap<usize, usize>,
    /// Node index → stencil-binding id ([`Op::WeightedGather`] indices and
    /// weights).
    pub stencils: HashMap<usize, usize>,
    /// Total number of index bindings allocated by the recorder.
    pub n_index: usize,
    /// Total number of stencil bindings allocated by the recorder.
    pub n_stencil: usize,
}

/// Per-sample dynamic values for one plan execution. Reused across samples
/// (the vectors keep their capacity), and cacheable per sample so repeated
/// inference on the same input re-derives nothing.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    /// One matrix per live [`Op::Input`] node, in plan input order.
    pub inputs: Vec<Matrix>,
    /// Index vectors, addressed by index-binding id.
    pub indices: Vec<Vec<usize>>,
    /// `(indices, weights)` stencils, addressed by stencil-binding id.
    pub stencils: Vec<(Vec<usize>, Vec<f32>)>,
}

impl Bindings {
    /// Empty bindings sized for `plan`.
    pub fn for_plan(plan: &Plan) -> Bindings {
        Bindings {
            inputs: vec![Matrix::zeros(0, 0); plan.n_inputs],
            indices: vec![Vec::new(); plan.n_index_bindings],
            stencils: vec![(Vec::new(), Vec::new()); plan.n_stencil_bindings],
        }
    }
}

/// Where a node's value lives during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// An arena slot (per-sample data, recomputed every run).
    Slot(usize),
    /// A plan constant (parameter snapshot, copied once at compile time).
    Const(usize),
    /// Eliminated: the requested outputs never read this value.
    Dead,
}

/// Per-node compile results.
#[derive(Debug, Clone)]
struct NodePlan {
    loc: Loc,
    rows: usize,
    cols: usize,
    /// For live `Input` nodes: position in [`Bindings::inputs`].
    input_idx: Option<usize>,
    /// Dynamic index binding, if the recorder marked one.
    index_bid: Option<usize>,
    /// Dynamic stencil binding, if the recorder marked one.
    stencil_bid: Option<usize>,
}

/// Usage statistics of a plan + arena pair, for the bench report.
#[derive(Debug, Clone, Copy)]
pub struct ArenaStats {
    /// Number of physical buffers backing all intermediates.
    pub slots: usize,
    /// Number of live values that were assigned to those buffers.
    pub values: usize,
    /// Total bytes the arena holds (sum of slot capacities).
    pub peak_bytes: usize,
    /// `values / slots` — how many intermediates share one buffer on
    /// average (1.0 means no reuse).
    pub reuse_ratio: f64,
    /// Times a slot had to grow beyond its planned capacity during
    /// execution — 0 in steady state.
    pub grow_events: usize,
}

/// The reusable execution state for one plan: one buffer per slot plus a
/// scratch vector for statistics. Create with [`Plan::arena`]; after the
/// first execution it stops allocating.
#[derive(Debug)]
pub struct Arena {
    slots: Vec<Matrix>,
    scratch: Vec<f32>,
    grow_events: usize,
}

impl Arena {
    /// Times any slot grew beyond its planned capacity (0 in steady state).
    pub fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Total bytes currently reserved by the arena.
    pub fn peak_bytes(&self) -> usize {
        let elems: usize =
            self.slots.iter().map(Matrix::capacity).sum::<usize>() + self.scratch.capacity();
        elems * std::mem::size_of::<f32>()
    }
}

/// The compile-time f64 half of a plan's shadow-precision tier: every
/// constant payload of the plan (parameter snapshots, [`Op::MulConst`]
/// masks, static [`Op::WeightedGather`] weights) widened to f64 exactly
/// once. Create with [`Plan::shadow`]; execute with [`Plan::run_f64`].
///
/// The shadow executor replays the *same* plan — same schedule, same slot
/// assignment, same per-sample [`Bindings`] — through the sequential
/// [`ops64`] kernels on [`Matrix64`] values. Per-sample data crosses the
/// f32 → f64 boundary at [`Op::Input`] nodes and at dynamic stencil
/// weights; everything downstream accumulates in f64.
#[derive(Debug)]
pub struct ShadowPlan {
    consts: Vec<Matrix64>,
    /// Live [`Op::MulConst`] node index → widened mask.
    masks: HashMap<usize, Matrix64>,
    /// Live [`Op::WeightedGather`] node index → widened weights, for
    /// stencils that are network structure rather than per-sample values.
    weights: HashMap<usize, Vec<f64>>,
}

/// The reusable f64 execution state for one plan — the [`Arena`] of the
/// shadow tier. Create with [`Plan::arena64`]; after the first execution
/// it stops allocating.
#[derive(Debug)]
pub struct Arena64 {
    slots: Vec<Matrix64>,
    scratch: Vec<f64>,
    /// Reused widening buffer for per-sample stencil weights.
    wscratch: Vec<f64>,
    grow_events: usize,
}

impl Arena64 {
    /// Times any slot grew beyond its planned capacity (0 in steady state).
    pub fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Total bytes currently reserved by the arena.
    pub fn peak_bytes(&self) -> usize {
        let elems: usize = self.slots.iter().map(Matrix64::capacity).sum::<usize>()
            + self.scratch.capacity()
            + self.wscratch.capacity();
        elems * std::mem::size_of::<f64>()
    }
}

/// An immutable, liveness-planned execution schedule for one recorded
/// forward pass. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct Plan {
    ops: Vec<Op>,
    nodes: Vec<NodePlan>,
    consts: Vec<Matrix>,
    /// Planned element capacity per slot.
    slot_elems: Vec<usize>,
    outputs: Vec<usize>,
    n_inputs: usize,
    n_index_bindings: usize,
    n_stencil_bindings: usize,
    /// Live values assigned to slots (numerator of the reuse ratio).
    slot_values: usize,
}

impl Plan {
    /// Compiles the recorded graph into a plan producing `outputs`.
    /// `marks` names the ops whose index operands are per-sample dynamic.
    ///
    /// # Panics
    ///
    /// Panics when `outputs` is empty or references a node the graph does
    /// not have.
    pub fn from_graph(g: &Graph, outputs: &[VarId], marks: &DynMarks) -> Plan {
        let n = g.len();
        assert!(!outputs.is_empty(), "a plan needs at least one output");
        for o in outputs {
            assert!(o.index() < n, "output {} out of range ({n} nodes)", o.index());
        }

        // Dead-code elimination: walk backwards from the outputs.
        let mut live = vec![false; n];
        for o in outputs {
            live[o.index()] = true;
        }
        for i in (0..n).rev() {
            if live[i] {
                g.op_at(i).for_each_operand(|v| live[v.index()] = true);
            }
        }

        // Liveness: last op index that reads each value.
        let mut last_use = vec![0usize; n];
        for (i, lu) in last_use.iter_mut().enumerate() {
            *lu = i;
        }
        for (i, &is_live) in live.iter().enumerate() {
            if is_live {
                g.op_at(i).for_each_operand(|v| last_use[v.index()] = i);
            }
        }
        for o in outputs {
            last_use[o.index()] = usize::MAX;
        }

        // Slot assignment: a free-list scan over the SSA sequence. Operand
        // slots are released only *after* the defining op claimed its own
        // slot, so an op never writes over a value it is still reading.
        let mut consts: Vec<Matrix> = Vec::new();
        let mut slot_elems: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut nodes: Vec<NodePlan> = Vec::with_capacity(n);
        let mut n_inputs = 0usize;
        let mut slot_values = 0usize;
        for (i, &is_live) in live.iter().enumerate() {
            let op = g.op_at(i);
            let (rows, cols) = g.value_at(i).shape();
            let mut input_idx = None;
            let loc = if !is_live {
                Loc::Dead
            } else if let Op::Param { .. } = op {
                consts.push(g.value_at(i).clone());
                Loc::Const(consts.len() - 1)
            } else {
                if matches!(op, Op::Input) {
                    input_idx = Some(n_inputs);
                    n_inputs += 1;
                }
                let elems = rows * cols;
                let slot = match free.pop() {
                    Some(s) => {
                        slot_elems[s] = slot_elems[s].max(elems);
                        s
                    }
                    None => {
                        slot_elems.push(elems);
                        slot_elems.len() - 1
                    }
                };
                slot_values += 1;
                Loc::Slot(slot)
            };
            nodes.push(NodePlan {
                loc,
                rows,
                cols,
                input_idx,
                index_bid: marks.indices.get(&i).copied(),
                stencil_bid: marks.stencils.get(&i).copied(),
            });
            if is_live {
                op.for_each_operand(|v| {
                    let vi = v.index();
                    if last_use[vi] == i {
                        if let Loc::Slot(s) = nodes[vi].loc {
                            // A value may be read several times by one op
                            // (e.g. `hadamard(x, x)`): free its slot once.
                            if !free.contains(&s) {
                                free.push(s);
                            }
                        }
                    }
                });
            }
        }

        Plan {
            // Dead nodes are never executed or operand-walked, so a cheap
            // placeholder replaces them — an eliminated branch's index
            // vectors and constant masks would otherwise be retained for
            // the plan's whole lifetime.
            ops: live
                .iter()
                .enumerate()
                .map(|(i, &is_live)| if is_live { g.op_at(i).clone() } else { Op::Input })
                .collect(),
            nodes,
            consts,
            slot_elems,
            outputs: outputs.iter().map(|o| o.index()).collect(),
            n_inputs,
            n_index_bindings: marks.n_index,
            n_stencil_bindings: marks.n_stencil,
            slot_values,
        }
    }

    /// Number of nodes (live and dead) in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a plan with no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of live input nodes (the length [`Bindings::inputs`] must
    /// have).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Position of node `i` in [`Bindings::inputs`], when it is a live
    /// input.
    pub fn input_position(&self, i: usize) -> Option<usize> {
        self.nodes[i].input_idx
    }

    /// True when node `i` survived dead-code elimination.
    pub fn is_live(&self, i: usize) -> bool {
        !matches!(self.nodes[i].loc, Loc::Dead)
    }

    /// The recorded shape of node `i`.
    pub fn shape(&self, i: usize) -> (usize, usize) {
        (self.nodes[i].rows, self.nodes[i].cols)
    }

    /// A fresh arena sized for this plan.
    pub fn arena(&self) -> Arena {
        Arena {
            slots: self.slot_elems.iter().map(|&e| Matrix::with_capacity(e)).collect(),
            scratch: Vec::new(),
            grow_events: 0,
        }
    }

    /// Usage statistics for the bench report.
    pub fn stats(&self, arena: &Arena) -> ArenaStats {
        ArenaStats {
            slots: self.slot_elems.len(),
            values: self.slot_values,
            peak_bytes: arena.peak_bytes(),
            reuse_ratio: if self.slot_elems.is_empty() {
                1.0
            } else {
                self.slot_values as f64 / self.slot_elems.len() as f64
            },
            grow_events: arena.grow_events,
        }
    }

    /// The value of `v` after execution reached past its definition.
    ///
    /// # Panics
    ///
    /// Panics when `v` was eliminated as dead code.
    pub fn value<'a>(&'a self, arena: &'a Arena, v: VarId) -> &'a Matrix {
        match self.nodes[v.index()].loc {
            Loc::Slot(s) => &arena.slots[s],
            Loc::Const(c) => &self.consts[c],
            Loc::Dead => panic!("node {} was eliminated as dead code", v.index()),
        }
    }

    /// The `idx`-th requested output.
    pub fn output<'a>(&'a self, arena: &'a Arena, idx: usize) -> &'a Matrix {
        self.value(arena, VarId::from_index(self.outputs[idx]))
    }

    /// Number of requested outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Executes the whole plan against `arena` with `bindings`.
    pub fn run(&self, arena: &mut Arena, bindings: &Bindings) {
        self.run_range(arena, bindings, 0, self.ops.len());
    }

    /// Executes nodes `lo..hi` — the engine layer interleaves these ranges
    /// with its dynamic (search) steps.
    ///
    /// # Panics
    ///
    /// Panics when bindings disagree with the recorded shapes.
    pub fn run_range(&self, arena: &mut Arena, bindings: &Bindings, lo: usize, hi: usize) {
        for i in lo..hi {
            self.exec_node(i, arena, bindings);
        }
    }

    fn exec_node(&self, i: usize, arena: &mut Arena, bind: &Bindings) {
        let node = &self.nodes[i];
        let out_slot = match node.loc {
            Loc::Slot(s) => s,
            // Params were materialized at compile time; dead code never runs.
            Loc::Const(_) | Loc::Dead => return,
        };
        let mut out = std::mem::take(&mut arena.slots[out_slot]);
        let cap_before = out.capacity();
        match &self.ops[i] {
            Op::Param { .. } => unreachable!("params are consts"),
            Op::Input => {
                let src = &bind.inputs[node.input_idx.expect("live inputs are indexed")];
                assert_eq!(
                    src.shape(),
                    (node.rows, node.cols),
                    "input {i} shape changed since the plan was recorded"
                );
                out.reset_shape(node.rows, node.cols);
                out.as_mut_slice().copy_from_slice(src.as_slice());
            }
            Op::MatMul { a, b } => {
                ops::matmul_into(self.value(arena, *a), self.value(arena, *b), &mut out);
            }
            Op::AddBias { x, bias } => {
                ops::add_bias_row_into(self.value(arena, *x), self.value(arena, *bias), &mut out);
            }
            Op::Add { a, b } => {
                ops::add_into(self.value(arena, *a), self.value(arena, *b), &mut out);
            }
            Op::Sub { a, b } => {
                ops::sub_into(self.value(arena, *a), self.value(arena, *b), &mut out);
            }
            Op::Relu { x } => ops::relu_into(self.value(arena, *x), &mut out),
            Op::Hadamard { a, b } => {
                ops::hadamard_into(self.value(arena, *a), self.value(arena, *b), &mut out);
            }
            Op::MulConst { x, mask } => {
                ops::hadamard_into(self.value(arena, *x), mask, &mut out);
            }
            Op::Scale { x, s } => ops::scale_into(self.value(arena, *x), *s, &mut out),
            Op::Gather { x, indices } => {
                let idx = node.index_bid.map_or(&indices[..], |bid| &bind.indices[bid]);
                debug_assert_eq!(idx.len(), indices.len(), "dynamic gather length changed");
                group::gather_rows_into(self.value(arena, *x), idx, &mut out);
            }
            Op::SubCentroid { grouped, centroids, k } => {
                group::subtract_centroid_per_group_into(
                    self.value(arena, *grouped),
                    self.value(arena, *centroids),
                    *k,
                    &mut out,
                );
            }
            Op::GroupMax { x, k } => group::group_max_into(self.value(arena, *x), *k, &mut out),
            Op::GatherMax { x, groups, k } => {
                let idx = node.index_bid.map_or(&groups[..], |bid| &bind.indices[bid]);
                debug_assert_eq!(idx.len(), groups.len(), "dynamic group length changed");
                group::gather_max_into(self.value(arena, *x), idx, *k, &mut out);
            }
            Op::WeightedGather { x, indices, weights, k } => {
                let (idx, w) = match node.stencil_bid {
                    Some(bid) => {
                        let (i, w) = &bind.stencils[bid];
                        (&i[..], &w[..])
                    }
                    None => (&indices[..], &weights[..]),
                };
                debug_assert_eq!(idx.len(), indices.len(), "dynamic stencil length changed");
                group::weighted_gather_into(self.value(arena, *x), idx, w, *k, &mut out);
            }
            Op::HStack { a, b } => {
                self.value(arena, *a).hstack_into(self.value(arena, *b), &mut out);
            }
            Op::Standardize { x } => {
                let mut scratch = std::mem::take(&mut arena.scratch);
                ops::standardize_into(self.value(arena, *x), &mut scratch, &mut out);
                arena.scratch = scratch;
            }
            // Losses are replayed for completeness (a plan may be asked for
            // a recorded loss); the arithmetic mirrors the tape's exactly.
            Op::Mse { pred, target } => {
                let (p, t) = (self.value(arena, *pred), self.value(arena, *target));
                assert_eq!(p.shape(), t.shape(), "mse shape mismatch");
                let n = p.len() as f32;
                let loss = p
                    .as_slice()
                    .iter()
                    .zip(t.as_slice())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>()
                    / n;
                out.reset_shape(1, 1);
                out[(0, 0)] = loss;
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let l = self.value(arena, *logits);
                assert_eq!(labels.len(), l.rows(), "one label per row");
                let mut loss = 0.0f64;
                for (r, &label) in labels.iter().enumerate() {
                    let row = l.row(r);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    // Same exp/accumulate order as `ops::softmax_rows`, so
                    // the probability of the labelled class is bit-identical.
                    let mut sum = 0.0f32;
                    let mut p_label = 0.0f32;
                    for (c, &v) in row.iter().enumerate() {
                        let e = (v - max).exp();
                        sum += e;
                        if c == label as usize {
                            p_label = e;
                        }
                    }
                    loss -= f64::from((p_label / sum).max(1e-12)).ln();
                }
                out.reset_shape(1, 1);
                out[(0, 0)] = (loss / labels.len() as f64) as f32;
            }
        }
        debug_assert_eq!(
            out.shape(),
            (node.rows, node.cols),
            "node {i} produced a shape differing from the recording"
        );
        if out.capacity() > cap_before {
            arena.grow_events += 1;
        }
        arena.slots[out_slot] = out;
    }

    /// Verifies the slot assignment against the liveness intervals: no two
    /// values whose live ranges overlap may share a slot, and no op's
    /// output slot may equal one of its input slots. Used by tests; cheap
    /// enough to run on any plan.
    pub fn check_no_aliasing(&self) {
        let n = self.ops.len();
        let mut last_use = vec![0usize; n];
        for (i, lu) in last_use.iter_mut().enumerate() {
            *lu = i;
        }
        for (i, op) in self.ops.iter().enumerate() {
            if self.is_live(i) {
                op.for_each_operand(|v| last_use[v.index()] = i);
            }
        }
        for &o in &self.outputs {
            last_use[o] = usize::MAX;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let Loc::Slot(si) = node.loc else { continue };
            // Output/input aliasing within one op.
            self.ops[i].for_each_operand(|v| {
                if let Loc::Slot(sv) = self.nodes[v.index()].loc {
                    assert_ne!(si, sv, "op {i} writes slot {si} while reading it");
                }
            });
            // Pairwise interval overlap on the same slot.
            for j in i + 1..n {
                let Loc::Slot(sj) = self.nodes[j].loc else { continue };
                if si == sj {
                    assert!(
                        last_use[i] <= j,
                        "values {i} (live to {}) and {j} share slot {si} while both live",
                        last_use[i]
                    );
                }
            }
        }
    }

    /// Widens every constant payload of this plan to f64 — the one-time
    /// compile step of the shadow-precision tier.
    pub fn shadow(&self) -> ShadowPlan {
        let mut masks = HashMap::new();
        let mut weights = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.loc, Loc::Dead) {
                continue;
            }
            match &self.ops[i] {
                Op::MulConst { mask, .. } => {
                    masks.insert(i, Matrix64::widened(mask));
                }
                Op::WeightedGather { weights: w, .. } if node.stencil_bid.is_none() => {
                    weights.insert(i, w.iter().map(|&v| f64::from(v)).collect::<Vec<f64>>());
                }
                _ => {}
            }
        }
        ShadowPlan { consts: self.consts.iter().map(Matrix64::widened).collect(), masks, weights }
    }

    /// A fresh f64 arena sized for this plan — same slot layout as
    /// [`Plan::arena`].
    pub fn arena64(&self) -> Arena64 {
        Arena64 {
            slots: self.slot_elems.iter().map(|&e| Matrix64::with_capacity(e)).collect(),
            scratch: Vec::new(),
            wscratch: Vec::new(),
            grow_events: 0,
        }
    }

    /// The f64 value of `v` after shadow execution reached past its
    /// definition.
    ///
    /// # Panics
    ///
    /// Panics when `v` was eliminated as dead code.
    pub fn value64<'a>(
        &self,
        shadow: &'a ShadowPlan,
        arena: &'a Arena64,
        v: VarId,
    ) -> &'a Matrix64 {
        match self.nodes[v.index()].loc {
            Loc::Slot(s) => &arena.slots[s],
            Loc::Const(c) => &shadow.consts[c],
            Loc::Dead => panic!("node {} was eliminated as dead code", v.index()),
        }
    }

    /// The `idx`-th requested output of the shadow execution.
    pub fn output64<'a>(
        &self,
        shadow: &'a ShadowPlan,
        arena: &'a Arena64,
        idx: usize,
    ) -> &'a Matrix64 {
        self.value64(shadow, arena, VarId::from_index(self.outputs[idx]))
    }

    /// Executes the whole plan in f64 against `arena` with the same
    /// per-sample `bindings` an f32 execution would take. Inputs are
    /// widened at the boundary; every kernel then runs sequentially in
    /// f64 ([`ops64`]), so the result is deterministic at any thread
    /// count by construction.
    pub fn run_f64(&self, shadow: &ShadowPlan, arena: &mut Arena64, bindings: &Bindings) {
        self.run_range_f64(shadow, arena, bindings, 0, self.ops.len());
    }

    /// Shadow-executes nodes `lo..hi` — the f64 sibling of
    /// [`Plan::run_range`].
    ///
    /// # Panics
    ///
    /// Panics when bindings disagree with the recorded shapes.
    pub fn run_range_f64(
        &self,
        shadow: &ShadowPlan,
        arena: &mut Arena64,
        bindings: &Bindings,
        lo: usize,
        hi: usize,
    ) {
        for i in lo..hi {
            self.exec_node_f64(i, shadow, arena, bindings);
        }
    }

    fn exec_node_f64(&self, i: usize, shadow: &ShadowPlan, arena: &mut Arena64, bind: &Bindings) {
        let node = &self.nodes[i];
        let out_slot = match node.loc {
            Loc::Slot(s) => s,
            // Params were widened at shadow-compile time; dead code never
            // runs.
            Loc::Const(_) | Loc::Dead => return,
        };
        let mut out = std::mem::take(&mut arena.slots[out_slot]);
        let cap_before = out.capacity();
        match &self.ops[i] {
            Op::Param { .. } => unreachable!("params are consts"),
            Op::Input => {
                let src = &bind.inputs[node.input_idx.expect("live inputs are indexed")];
                assert_eq!(
                    src.shape(),
                    (node.rows, node.cols),
                    "input {i} shape changed since the plan was recorded"
                );
                out.copy_widened(src);
            }
            Op::MatMul { a, b } => {
                ops64::matmul_into(
                    self.value64(shadow, arena, *a),
                    self.value64(shadow, arena, *b),
                    &mut out,
                );
            }
            Op::AddBias { x, bias } => {
                ops64::add_bias_row_into(
                    self.value64(shadow, arena, *x),
                    self.value64(shadow, arena, *bias),
                    &mut out,
                );
            }
            Op::Add { a, b } => {
                ops64::add_into(
                    self.value64(shadow, arena, *a),
                    self.value64(shadow, arena, *b),
                    &mut out,
                );
            }
            Op::Sub { a, b } => {
                ops64::sub_into(
                    self.value64(shadow, arena, *a),
                    self.value64(shadow, arena, *b),
                    &mut out,
                );
            }
            Op::Relu { x } => ops64::relu_into(self.value64(shadow, arena, *x), &mut out),
            Op::Hadamard { a, b } => {
                ops64::hadamard_into(
                    self.value64(shadow, arena, *a),
                    self.value64(shadow, arena, *b),
                    &mut out,
                );
            }
            Op::MulConst { x, .. } => {
                ops64::hadamard_into(self.value64(shadow, arena, *x), &shadow.masks[&i], &mut out);
            }
            Op::Scale { x, s } => {
                ops64::scale_into(self.value64(shadow, arena, *x), f64::from(*s), &mut out);
            }
            Op::Gather { x, indices } => {
                let idx = node.index_bid.map_or(&indices[..], |bid| &bind.indices[bid]);
                debug_assert_eq!(idx.len(), indices.len(), "dynamic gather length changed");
                ops64::gather_rows_into(self.value64(shadow, arena, *x), idx, &mut out);
            }
            Op::SubCentroid { grouped, centroids, k } => {
                ops64::subtract_centroid_per_group_into(
                    self.value64(shadow, arena, *grouped),
                    self.value64(shadow, arena, *centroids),
                    *k,
                    &mut out,
                );
            }
            Op::GroupMax { x, k } => {
                ops64::group_max_into(self.value64(shadow, arena, *x), *k, &mut out);
            }
            Op::GatherMax { x, groups, k } => {
                let idx = node.index_bid.map_or(&groups[..], |bid| &bind.indices[bid]);
                debug_assert_eq!(idx.len(), groups.len(), "dynamic group length changed");
                ops64::gather_max_into(self.value64(shadow, arena, *x), idx, *k, &mut out);
            }
            Op::WeightedGather { x, indices, weights: _, k } => match node.stencil_bid {
                Some(bid) => {
                    let (idx, w32) = &bind.stencils[bid];
                    debug_assert_eq!(idx.len(), indices.len(), "dynamic stencil length changed");
                    // Widen the per-sample weights into the reusable
                    // buffer — the only other f32 → f64 boundary besides
                    // inputs.
                    let mut w = std::mem::take(&mut arena.wscratch);
                    w.clear();
                    w.extend(w32.iter().map(|&v| f64::from(v)));
                    ops64::weighted_gather_into(
                        self.value64(shadow, arena, *x),
                        idx,
                        &w,
                        *k,
                        &mut out,
                    );
                    arena.wscratch = w;
                }
                None => {
                    ops64::weighted_gather_into(
                        self.value64(shadow, arena, *x),
                        indices,
                        &shadow.weights[&i],
                        *k,
                        &mut out,
                    );
                }
            },
            Op::HStack { a, b } => {
                self.value64(shadow, arena, *a)
                    .hstack_into(self.value64(shadow, arena, *b), &mut out);
            }
            Op::Standardize { x } => {
                let mut scratch = std::mem::take(&mut arena.scratch);
                ops64::standardize_into(self.value64(shadow, arena, *x), &mut scratch, &mut out);
                arena.scratch = scratch;
            }
            // Losses mirror the f32 executor's arithmetic, carried in f64
            // end to end.
            Op::Mse { pred, target } => {
                let (p, t) =
                    (self.value64(shadow, arena, *pred), self.value64(shadow, arena, *target));
                assert_eq!(p.shape(), t.shape(), "mse shape mismatch");
                let n = p.len() as f64;
                let loss = p
                    .as_slice()
                    .iter()
                    .zip(t.as_slice())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / n;
                out.reset_shape(1, 1);
                out[(0, 0)] = loss;
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let l = self.value64(shadow, arena, *logits);
                assert_eq!(labels.len(), l.rows(), "one label per row");
                let mut loss = 0.0f64;
                for (r, &label) in labels.iter().enumerate() {
                    let row = l.row(r);
                    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let mut sum = 0.0f64;
                    let mut p_label = 0.0f64;
                    for (c, &v) in row.iter().enumerate() {
                        let e = (v - max).exp();
                        sum += e;
                        if c == label as usize {
                            p_label = e;
                        }
                    }
                    loss -= (p_label / sum).max(1e-12).ln();
                }
                out.reset_shape(1, 1);
                out[(0, 0)] = loss / labels.len() as f64;
            }
        }
        debug_assert_eq!(
            out.shape(),
            (node.rows, node.cols),
            "node {i} produced a shape differing from the recording"
        );
        if out.capacity() > cap_before {
            arena.grow_events += 1;
        }
        arena.slots[out_slot] = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{NormMode, SharedMlp};

    /// Records a small MLP forward over `x` and returns (graph, out).
    fn record_mlp(x: &Matrix) -> (Graph, VarId, SharedMlp) {
        let mut rng = mesorasi_pointcloud::seeded_rng(7);
        let mlp = SharedMlp::new(&[4, 8, 3], NormMode::Feature, true, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = mlp.forward(&mut g, xv);
        (g, y, mlp)
    }

    fn input_bindings(plan: &Plan, x: &Matrix) -> Bindings {
        let mut b = Bindings::for_plan(plan);
        b.inputs[0] = x.clone();
        b
    }

    #[test]
    fn replay_matches_tape_bitwise() {
        let x = Matrix::from_fn(10, 4, |r, c| ((r * 5 + c) as f32 * 0.37).sin());
        let (g, y, _mlp) = record_mlp(&x);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        plan.check_no_aliasing();
        let mut arena = plan.arena();
        let b = input_bindings(&plan, &x);
        plan.run(&mut arena, &b);
        assert_eq!(plan.output(&arena, 0), g.value(y), "planned values must be bit-identical");
    }

    #[test]
    fn replay_on_fresh_data_matches_fresh_tape() {
        let x0 = Matrix::from_fn(10, 4, |r, c| ((r + c) as f32 * 0.21).cos());
        let (g, y, mlp) = record_mlp(&x0);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        let mut arena = plan.arena();

        // A different sample through the same plan must equal a fresh tape.
        let x1 = Matrix::from_fn(10, 4, |r, c| ((r * 3 + c) as f32 * 0.11).sin());
        let b = input_bindings(&plan, &x1);
        plan.run(&mut arena, &b);
        let mut g2 = Graph::new();
        let xv = g2.input(x1.clone());
        let y2 = mlp.forward(&mut g2, xv);
        assert_eq!(plan.output(&arena, 0), g2.value(y2));
    }

    #[test]
    fn steady_state_never_grows_slots() {
        let x = Matrix::from_fn(16, 4, |r, c| (r as f32 - c as f32) * 0.09);
        let (g, y, _mlp) = record_mlp(&x);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        let mut arena = plan.arena();
        let b = input_bindings(&plan, &x);
        for _ in 0..3 {
            plan.run(&mut arena, &b);
        }
        assert_eq!(arena.grow_events(), 0, "planned capacities must cover execution");
        let stats = plan.stats(&arena);
        assert!(stats.reuse_ratio > 1.0, "a deep chain must reuse slots, got {stats:?}");
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn dead_code_is_eliminated_and_skipped() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(4, 4, |r, c| (r + c) as f32));
        let used = g.relu(x);
        let dead = g.scale(x, 2.0);
        let dead2 = g.relu(dead);
        let plan = Plan::from_graph(&g, &[used], &DynMarks::default());
        assert!(plan.is_live(used.index()));
        assert!(!plan.is_live(dead.index()) && !plan.is_live(dead2.index()));
        let mut arena = plan.arena();
        let b = input_bindings(&plan, g.value(x));
        plan.run(&mut arena, &b);
        assert_eq!(plan.output(&arena, 0), g.value(used));
    }

    #[test]
    fn dynamic_index_binding_overrides_recorded_indices() {
        let src = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let mut g = Graph::new();
        let x = g.input(src.clone());
        let gathered = g.gather(x, vec![0, 1, 2]);
        let marks = DynMarks {
            indices: HashMap::from([(gathered.index(), 0)]),
            stencils: HashMap::new(),
            n_index: 1,
            n_stencil: 0,
        };
        let plan = Plan::from_graph(&g, &[gathered], &marks);
        let mut arena = plan.arena();
        let mut b = input_bindings(&plan, &src);
        b.indices[0] = vec![5, 4, 3];
        plan.run(&mut arena, &b);
        assert_eq!(plan.output(&arena, 0), &group::gather_rows(&src, &[5, 4, 3]));
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_drift_is_rejected() {
        let x = Matrix::from_fn(10, 4, |r, c| (r + c) as f32);
        let (g, y, _mlp) = record_mlp(&x);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        let mut arena = plan.arena();
        let b = input_bindings(&plan, &Matrix::zeros(11, 4));
        plan.run(&mut arena, &b);
    }

    #[test]
    fn shadow_replay_tracks_f32_closely_and_never_allocates_warm() {
        let x = Matrix::from_fn(10, 4, |r, c| ((r * 5 + c) as f32 * 0.37).sin());
        let (g, y, _mlp) = record_mlp(&x);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        let mut arena = plan.arena();
        let b = input_bindings(&plan, &x);
        plan.run(&mut arena, &b);

        let shadow = plan.shadow();
        let mut arena64 = plan.arena64();
        for _ in 0..3 {
            plan.run_f64(&shadow, &mut arena64, &b);
        }
        assert_eq!(arena64.grow_events(), 0, "shadow capacities must cover execution");

        let f32_out = plan.output(&arena, 0);
        let f64_out = plan.output64(&shadow, &arena64, 0);
        assert_eq!(f32_out.shape(), f64_out.shape());
        for r in 0..f32_out.rows() {
            for (a, &b) in f32_out.row(r).iter().zip(f64_out.row(r)) {
                assert!((f64::from(*a) - b).abs() < 1e-4, "f32 {a} drifted from f64 {b}");
            }
        }
    }

    #[test]
    fn shadow_replay_is_deterministic() {
        let x = Matrix::from_fn(12, 4, |r, c| ((r * 7 + c) as f32 * 0.19).cos());
        let (g, y, _mlp) = record_mlp(&x);
        let plan = Plan::from_graph(&g, &[y], &DynMarks::default());
        let shadow = plan.shadow();
        let b = input_bindings(&plan, &x);
        let mut a1 = plan.arena64();
        let mut a2 = plan.arena64();
        plan.run_f64(&shadow, &mut a1, &b);
        plan.run_f64(&shadow, &mut a2, &b);
        assert_eq!(
            plan.output64(&shadow, &a1, 0).as_slice(),
            plan.output64(&shadow, &a2, 0).as_slice()
        );
    }

    #[test]
    fn shadow_honors_dynamic_index_bindings() {
        let src = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let mut g = Graph::new();
        let x = g.input(src.clone());
        let gathered = g.gather(x, vec![0, 1, 2]);
        let marks = DynMarks {
            indices: HashMap::from([(gathered.index(), 0)]),
            stencils: HashMap::new(),
            n_index: 1,
            n_stencil: 0,
        };
        let plan = Plan::from_graph(&g, &[gathered], &marks);
        let shadow = plan.shadow();
        let mut arena64 = plan.arena64();
        let mut b = input_bindings(&plan, &src);
        b.indices[0] = vec![5, 4, 3];
        plan.run_f64(&shadow, &mut arena64, &b);
        let got = plan.output64(&shadow, &arena64, 0);
        let want = group::gather_rows(&src, &[5, 4, 3]);
        for r in 0..want.rows() {
            for (w, &v) in want.row(r).iter().zip(got.row(r)) {
                assert_eq!(f64::from(*w), v);
            }
        }
    }

    #[test]
    fn losses_replay_identically() {
        let x = Matrix::from_fn(5, 4, |r, c| ((r * 7 + c) as f32 * 0.3).sin());
        let mut rng = mesorasi_pointcloud::seeded_rng(3);
        let mlp = SharedMlp::new(&[4, 6, 3], NormMode::None, false, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let logits = mlp.forward(&mut g, xv);
        let loss = g.softmax_cross_entropy(logits, vec![0, 2, 1, 1, 0]);
        let plan = Plan::from_graph(&g, &[loss], &DynMarks::default());
        let mut arena = plan.arena();
        let b = input_bindings(&plan, &x);
        plan.run(&mut arena, &b);
        assert_eq!(plan.output(&arena, 0), g.value(loss));
    }
}
