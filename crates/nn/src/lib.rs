//! Hand-rolled DNN substrate: reverse-mode autograd, layers, optimizers.
//!
//! The accuracy experiment (paper Fig. 16) requires *training* the evaluated
//! networks in both formulations — original and delayed-aggregation — and
//! showing the approximation loss is recovered by training. No mainstream
//! Rust DNN stack is available in this environment, so this crate implements
//! the minimum complete training substrate:
//!
//! * [`graph`] — a define-by-run autograd tape over `mesorasi-tensor`
//!   matrices, with the irregular ops point-cloud networks need (row gather,
//!   grouped max with argmax routing, centroid subtraction, weighted
//!   interpolation) as first-class differentiable operations,
//! * [`param`] / [`layers`] — trainable parameters, `Linear`, `SharedMlp`
//!   and a feature-standardization layer,
//! * [`optim`] — SGD with momentum and Adam,
//! * [`loss`] — softmax cross-entropy,
//! * [`metrics`] — classification accuracy and mean IoU (the paper's
//!   segmentation metric),
//! * [`init`] — Xavier/Kaiming initializers.
//!
//! # Example: fitting a linear map
//!
//! ```
//! use mesorasi_nn::{graph::Graph, layers::Linear, optim::{Sgd, Optimizer}};
//! use mesorasi_tensor::Matrix;
//!
//! let mut rng = mesorasi_pointcloud::seeded_rng(0);
//! let mut layer = Linear::new(2, 1, &mut rng);
//! let mut opt = Sgd::new(0.1, 0.0);
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let target = Matrix::from_rows(&[&[2.0], &[3.0], &[5.0]]);
//! for _ in 0..500 {
//!     let mut g = Graph::new();
//!     let xv = g.input(x.clone());
//!     let y = layer.forward(&mut g, xv);
//!     let t = g.input(target.clone());
//!     let loss = g.mse(y, t);
//!     g.backward(loss);
//!     opt.step(&mut [&mut layer.weight, &mut layer.bias], &g);
//! }
//! // weight should approach [[2], [3]]
//! assert!((layer.weight.value[(0, 0)] - 2.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]

pub mod graph;
pub mod init;
pub mod ir;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
pub mod plan;
pub mod schedule;

pub use graph::{Graph, VarId};
pub use param::Param;
