//! Trainable parameters.

use mesorasi_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// A trainable tensor with a process-unique identity.
///
/// Layers own their `Param`s; each forward pass registers the current value
/// on the [`crate::Graph`] under the param's id, and optimizers look
/// gradients up by the same id after `backward`. Identity — not storage
/// location — links the two, so models can be moved freely between passes.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value. Mutated by optimizers only.
    pub value: Matrix,
    /// Unique id used to match gradients to this parameter.
    id: u64,
    /// First Adam/momentum moment, lazily sized.
    pub(crate) moment1: Option<Matrix>,
    /// Second Adam moment, lazily sized.
    pub(crate) moment2: Option<Matrix>,
}

impl Param {
    /// Wraps `value` as a fresh parameter with a new unique id.
    pub fn new(value: Matrix) -> Self {
        Param {
            value,
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            moment1: None,
            moment2: None,
        }
    }

    /// The parameter's unique id.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets optimizer state (used when reusing weights across phases,
    /// e.g. fine-tuning the delayed-aggregation model from original
    /// weights as §VII-B describes).
    pub fn reset_optimizer_state(&mut self) {
        self.moment1 = None;
        self.moment2 = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Param::new(Matrix::zeros(1, 1));
        let b = Param::new(Matrix::zeros(1, 1));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clone_preserves_id() {
        // Cloning a model must keep the id so a cloned-then-trained model
        // still matches its own gradients.
        let a = Param::new(Matrix::zeros(2, 2));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn reset_clears_moments() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.moment1 = Some(Matrix::zeros(1, 1));
        p.moment2 = Some(Matrix::zeros(1, 1));
        p.reset_optimizer_state();
        assert!(p.moment1.is_none() && p.moment2.is_none());
    }
}
