//! The autograd tape.
//!
//! A [`Graph`] records a forward computation as a sequence of nodes
//! (define-by-run); [`Graph::backward`] then walks the tape in reverse,
//! accumulating gradients. The op set is exactly what the seven evaluated
//! point-cloud networks need — including the irregular gather / grouped-max
//! operators that make both aggregation orders (original and delayed,
//! paper Equ. 1 vs Equ. 2) expressible and trainable.

use crate::Param;
use mesorasi_tensor::{group, ops, Matrix};
use std::collections::HashMap;

pub use crate::ir::{Op, VarId};

/// Backward-only caches a node keeps next to its [`Op`] — metadata the
/// shared IR deliberately excludes because replaying the op on fresh data
/// recomputes it (argmax winners, detached statistics, probabilities).
#[derive(Debug)]
enum Aux {
    /// Nothing cached.
    None,
    /// Winning source row per output element of a max reduction.
    Arg(Vec<usize>),
    /// Detached `1 × cols` inverse standard deviations of a standardize.
    InvStd(Matrix),
    /// Cached softmax probabilities for the closed-form `(p − onehot)/n`.
    Probs(Matrix),
}

struct Node {
    op: Op,
    value: Matrix,
    aux: Aux,
}

/// A define-by-run autograd tape. Build one per forward pass.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    param_vars: HashMap<u64, VarId>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> VarId {
        self.push_aux(op, value, Aux::None)
    }

    fn push_aux(&mut self, op: Op, value: Matrix, aux: Aux) -> VarId {
        debug_assert!(value.is_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { op, value, aux });
        self.grads.push(None);
        VarId::from_index(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.index()].value
    }

    /// The recorded op of node `i` — the IR view the plan compiler walks.
    pub fn op_at(&self, i: usize) -> &Op {
        &self.nodes[i].op
    }

    /// The recorded value of node `i` (shape source for the plan compiler).
    pub fn value_at(&self, i: usize) -> &Matrix {
        &self.nodes[i].value
    }

    /// The accumulated gradient of `v`, if any flowed during `backward`.
    pub fn grad(&self, v: VarId) -> Option<&Matrix> {
        self.grads[v.index()].as_ref()
    }

    /// The gradient of a parameter registered this pass, by param id.
    pub fn param_grad(&self, pid: u64) -> Option<&Matrix> {
        self.param_vars.get(&pid).and_then(|&v| self.grad(v))
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaves ---------------------------------------------------------

    /// Registers a constant/input value (no gradient).
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Input, value)
    }

    /// Registers a parameter's current value. Repeated registration of the
    /// same parameter in one pass returns the same node, so weight sharing
    /// (the paper's shared MLPs) accumulates gradients correctly.
    pub fn param(&mut self, p: &Param) -> VarId {
        if let Some(&v) = self.param_vars.get(&p.id()) {
            return v;
        }
        let v = self.push(Op::Param { pid: p.id() }, p.value.clone());
        self.param_vars.insert(p.id(), v);
        v
    }

    // ---- dense ops ------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = ops::matmul(self.value(a), self.value(b));
        self.push(Op::MatMul { a, b }, value)
    }

    /// Adds a `1 × cols` bias row to every row.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> VarId {
        let value = ops::add_bias_row(self.value(x), self.value(bias));
        self.push(Op::AddBias { x, bias }, value)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = ops::add(self.value(a), self.value(b));
        self.push(Op::Add { a, b }, value)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let value = ops::sub(self.value(a), self.value(b));
        self.push(Op::Sub { a, b }, value)
    }

    /// ReLU.
    pub fn relu(&mut self, x: VarId) -> VarId {
        let value = ops::relu(self.value(x));
        self.push(Op::Relu { x }, value)
    }

    /// Multiplies by a constant mask (dropout etc.).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn mul_const(&mut self, x: VarId, mask: Matrix) -> VarId {
        let value = ops::hadamard(self.value(x), &mask);
        self.push(Op::MulConst { x, mask }, value)
    }

    /// Scalar scaling.
    pub fn scale(&mut self, x: VarId, s: f32) -> VarId {
        let value = ops::scale(self.value(x), s);
        self.push(Op::Scale { x, s }, value)
    }

    /// Elementwise product of two tape values (both receive gradients via
    /// the product rule: `dy/da = b`, `dy/db = a`).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> VarId {
        let value = ops::hadamard(self.value(a), self.value(b));
        self.push(Op::Hadamard { a, b }, value)
    }

    /// Column concatenation.
    pub fn hstack(&mut self, a: VarId, b: VarId) -> VarId {
        let value = self.value(a).hstack(self.value(b));
        self.push(Op::HStack { a, b }, value)
    }

    // ---- irregular (point-cloud) ops -------------------------------------

    /// Row gather by explicit indices (repeats allowed).
    pub fn gather(&mut self, x: VarId, indices: Vec<usize>) -> VarId {
        let value = group::gather_rows(self.value(x), &indices);
        self.push(Op::Gather { x, indices }, value)
    }

    /// Subtracts the centroid row from each of its `k` grouped rows —
    /// the original formulation's aggregation (`p_k − p_i`).
    pub fn sub_centroid(&mut self, grouped: VarId, centroids: VarId, k: usize) -> VarId {
        let value =
            group::subtract_centroid_per_group(self.value(grouped), self.value(centroids), k);
        self.push(Op::SubCentroid { grouped, centroids, k }, value)
    }

    /// Column-wise max over groups of `k` consecutive rows.
    pub fn group_max(&mut self, x: VarId, k: usize) -> VarId {
        let (value, arg) = group::group_max_reduce(self.value(x), k);
        self.push_aux(Op::GroupMax { x, k }, value, Aux::Arg(arg))
    }

    /// Fused gather-and-max over NIT groups (`groups` is a flattened
    /// `n × k` index list into the rows of `x`) — the delayed-aggregation
    /// reduction that never materializes the gathered matrix.
    pub fn gather_max(&mut self, x: VarId, groups: &[usize], k: usize) -> VarId {
        let (value, arg) = group::gather_max_reduce(self.value(x), groups, k);
        self.push_aux(Op::GatherMax { x, groups: groups.to_vec(), k }, value, Aux::Arg(arg))
    }

    /// Global column-wise max over all rows (PointNet's symmetric pooling).
    pub fn global_max(&mut self, x: VarId) -> VarId {
        let rows = self.value(x).rows();
        self.group_max(x, rows)
    }

    /// Weighted row interpolation: `out[g] = Σ_j weights[g·k+j] ·
    /// x[indices[g·k+j]]` — PointNet++'s 3-NN feature propagation
    /// (`three_interpolate`, which the paper's baseline moves to the GPU).
    /// Weights are treated as constants (computed from detached distances).
    ///
    /// # Panics
    ///
    /// Panics when `indices.len() != weights.len()` or not a multiple of `k`.
    pub fn weighted_gather(
        &mut self,
        x: VarId,
        indices: Vec<usize>,
        weights: Vec<f32>,
        k: usize,
    ) -> VarId {
        let value = group::weighted_gather(self.value(x), &indices, &weights, k);
        self.push(Op::WeightedGather { x, indices, weights, k }, value)
    }

    /// Per-column standardization `(x − mean) · inv_std` with statistics
    /// *detached* from the graph — the simplified batch normalization used
    /// by the trainable networks (a trainable scale/shift follows in
    /// [`crate::layers::FeatureNorm`]). Treating the statistics as constants
    /// keeps the operator linear in `x`, which is also what makes it
    /// compatible with delayed-aggregation's distributivity argument.
    pub fn standardize(&mut self, x: VarId) -> VarId {
        let cols = self.value(x).cols();
        let mut stats = Vec::new();
        let mut value = Matrix::zeros(0, 0);
        ops::standardize_into(self.value(x), &mut stats, &mut value);
        let inv_std = Matrix::from_vec(1, cols, stats[cols..].to_vec());
        self.push_aux(Op::Standardize { x }, value, Aux::InvStd(inv_std))
    }

    // ---- losses ----------------------------------------------------------

    /// Mean squared error `mean((pred − target)²)`; the result is `1×1`.
    pub fn mse(&mut self, pred: VarId, target: VarId) -> VarId {
        let d = ops::sub(self.value(pred), self.value(target));
        let n = d.len() as f32;
        let loss = d.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
        self.push(Op::Mse { pred, target }, Matrix::from_vec(1, 1, vec![loss]))
    }

    /// Mean softmax cross-entropy between `logits` rows and integer
    /// `labels`; the result is `1×1`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, labels: Vec<u32>) -> VarId {
        let l = self.value(logits);
        assert_eq!(labels.len(), l.rows(), "one label per row");
        let probs = ops::softmax_rows(l);
        let mut loss = 0.0f64;
        for (r, &label) in labels.iter().enumerate() {
            assert!((label as usize) < l.cols(), "label {label} out of range");
            loss -= f64::from(probs[(r, label as usize)].max(1e-12)).ln();
        }
        let loss = (loss / labels.len() as f64) as f32;
        self.push_aux(
            Op::SoftmaxCrossEntropy { logits, labels },
            Matrix::from_vec(1, 1, vec![loss]),
            Aux::Probs(probs),
        )
    }

    // ---- backward --------------------------------------------------------

    /// Runs reverse-mode differentiation from `root` (normally a `1×1`
    /// loss). Gradients accumulate across fan-out, so weight sharing and
    /// skip connections are handled.
    pub fn backward(&mut self, root: VarId) {
        let seed = Matrix::full(self.value(root).rows(), self.value(root).cols(), 1.0);
        self.grads[root.index()] = Some(seed);
        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = self.grads[i].take() else {
                continue;
            };
            self.propagate(i, &grad);
            self.grads[i] = Some(grad);
        }
    }

    fn accumulate(&mut self, v: VarId, g: Matrix) {
        match &mut self.grads[v.index()] {
            Some(acc) => {
                debug_assert_eq!(acc.shape(), g.shape());
                for (a, &x) in acc.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *a += x;
                }
            }
            slot @ None => *slot = Some(g),
        }
    }

    fn propagate(&mut self, i: usize, grad: &Matrix) {
        // Split borrows: read values immutably via raw clones where needed.
        match &self.nodes[i].op {
            Op::Input | Op::Param { .. } => {}
            Op::MatMul { a, b } => {
                let (a, b) = (*a, *b);
                let ga = ops::matmul_a_bt(grad, self.value(b));
                let gb = ops::matmul_at_b(self.value(a), grad);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::AddBias { x, bias } => {
                let (x, bias) = (*x, *bias);
                let gb = ops::sum_rows(grad);
                self.accumulate(x, grad.clone());
                self.accumulate(bias, gb);
            }
            Op::Add { a, b } => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, grad.clone());
            }
            Op::Sub { a, b } => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, ops::scale(grad, -1.0));
            }
            Op::Relu { x } => {
                let x = *x;
                let mask = ops::relu_mask(self.value(x));
                self.accumulate(x, ops::hadamard(grad, &mask));
            }
            Op::Hadamard { a, b } => {
                let (a, b) = (*a, *b);
                let ga = ops::hadamard(grad, self.value(b));
                let gb = ops::hadamard(grad, self.value(a));
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MulConst { x, mask } => {
                let x = *x;
                let g = ops::hadamard(grad, mask);
                self.accumulate(x, g);
            }
            Op::Scale { x, s } => {
                let (x, s) = (*x, *s);
                self.accumulate(x, ops::scale(grad, s));
            }
            Op::Gather { x, indices } => {
                let x = *x;
                let indices = indices.clone();
                let mut acc = Matrix::zeros(self.value(x).rows(), self.value(x).cols());
                group::scatter_add_rows(&mut acc, &indices, grad);
                self.accumulate(x, acc);
            }
            Op::SubCentroid { grouped, centroids, k } => {
                let (grouped, centroids, k) = (*grouped, *centroids, *k);
                // d/d(grouped) = grad; d/d(centroids)[g] = -Σ_k grad rows.
                let mut gc = Matrix::zeros(self.value(centroids).rows(), grad.cols());
                for g in 0..gc.rows() {
                    for r in g * k..(g + 1) * k {
                        for (o, &v) in gc.row_mut(g).iter_mut().zip(grad.row(r)) {
                            *o -= v;
                        }
                    }
                }
                self.accumulate(grouped, grad.clone());
                self.accumulate(centroids, gc);
            }
            Op::GroupMax { x, .. } | Op::GatherMax { x, .. } => {
                let x = *x;
                let Aux::Arg(arg) = &self.nodes[i].aux else {
                    unreachable!("max reductions always cache their argmax")
                };
                let arg = arg.clone();
                let mut acc = Matrix::zeros(self.value(x).rows(), self.value(x).cols());
                group::max_reduce_backward(&mut acc, &arg, grad);
                self.accumulate(x, acc);
            }
            Op::WeightedGather { x, indices, weights, k } => {
                let x = *x;
                let (indices, weights, k) = (indices.clone(), weights.clone(), *k);
                let mut acc = Matrix::zeros(self.value(x).rows(), self.value(x).cols());
                for g in 0..grad.rows() {
                    for j in 0..k {
                        let w = weights[g * k + j];
                        let row = indices[g * k + j];
                        for (c, &gv) in grad.row(g).iter().enumerate() {
                            acc[(row, c)] += w * gv;
                        }
                    }
                }
                self.accumulate(x, acc);
            }
            Op::HStack { a, b } => {
                let (a, b) = (*a, *b);
                let ca = self.value(a).cols();
                let mut ga = Matrix::zeros(grad.rows(), ca);
                let mut gb = Matrix::zeros(grad.rows(), grad.cols() - ca);
                for r in 0..grad.rows() {
                    ga.row_mut(r).copy_from_slice(&grad.row(r)[..ca]);
                    gb.row_mut(r).copy_from_slice(&grad.row(r)[ca..]);
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Standardize { x } => {
                let x = *x;
                let Aux::InvStd(inv_std) = &self.nodes[i].aux else {
                    unreachable!("standardize always caches inv_std")
                };
                // Statistics are detached: dL/dx = grad · inv_std (per column).
                let mut g = grad.clone();
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        g[(r, c)] *= inv_std[(0, c)];
                    }
                }
                self.accumulate(x, g);
            }
            Op::Mse { pred, target } => {
                let (pred, target) = (*pred, *target);
                let d = ops::sub(self.value(pred), self.value(target));
                let n = d.len() as f32;
                let s = 2.0 * grad[(0, 0)] / n;
                let g = ops::scale(&d, s);
                self.accumulate(pred, g.clone());
                self.accumulate(target, ops::scale(&g, -1.0));
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let logits = *logits;
                let Aux::Probs(probs) = &self.nodes[i].aux else {
                    unreachable!("cross-entropy always caches probs")
                };
                let mut g = probs.clone();
                let n = labels.len() as f32;
                let labels = labels.clone();
                for (r, &label) in labels.iter().enumerate() {
                    g[(r, label as usize)] -= 1.0;
                }
                let g = ops::scale(&g, grad[(0, 0)] / n);
                self.accumulate(logits, g);
            }
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes, {} params)", self.nodes.len(), self.param_vars.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(x[r][c]) for every element of `x` against
    /// the autograd result. `build` must construct loss from the given input
    /// node on a fresh graph.
    fn check_input_gradient(x0: Matrix, build: impl Fn(&mut Graph, VarId) -> VarId) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let loss = build(&mut g, x);
        assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
        g.backward(loss);
        let analytic = g.grad(x).expect("gradient must flow to input").clone();

        let eps = 1e-3f32;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp[(r, c)] += eps;
                let mut gp = Graph::new();
                let xv = gp.input(xp);
                let lp = build(&mut gp, xv);
                let fp = gp.value(lp)[(0, 0)];

                let mut xm = x0.clone();
                xm[(r, c)] -= eps;
                let mut gm = Graph::new();
                let xv = gm.input(xm);
                let lm = build(&mut gm, xv);
                let fm = gm.value(lm)[(0, 0)];

                let numeric = (fp - fm) / (2.0 * eps);
                let got = analytic[(r, c)];
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {got}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_gradient_matches_numeric() {
        let w = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25], &[-0.75, 1.5]]);
        check_input_gradient(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.3 - 0.4), |g, x| {
            let wv = g.input(w.clone());
            let y = g.matmul(x, wv);
            let t = g.input(Matrix::zeros(2, 2));
            g.mse(y, t)
        });
    }

    #[test]
    fn relu_bias_chain_gradient() {
        let bias = Matrix::from_rows(&[&[0.1, -0.2]]);
        check_input_gradient(Matrix::from_fn(3, 2, |r, c| r as f32 - c as f32 + 0.35), |g, x| {
            let b = g.input(bias.clone());
            let y = g.add_bias(x, b);
            let y = g.relu(y);
            let t = g.input(Matrix::full(3, 2, 0.5));
            g.mse(y, t)
        });
    }

    #[test]
    fn gather_and_group_max_gradient() {
        // gather rows then grouped max: gradient reaches only winning rows.
        check_input_gradient(Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.21), |g, x| {
            let gathered = g.gather(x, vec![0, 3, 1, 2, 2, 0]);
            let reduced = g.group_max(gathered, 3);
            let t = g.input(Matrix::zeros(2, 2));
            g.mse(reduced, t)
        });
    }

    #[test]
    fn gather_max_fused_matches_unfused_gradients() {
        let x0 = Matrix::from_fn(5, 3, |r, c| ((r * 13 + c * 7) % 9) as f32 * 0.17 - 0.5);
        let groups = vec![0usize, 2, 4, 1, 3, 3];
        // Unfused: gather then group_max.
        let mut g1 = Graph::new();
        let x1 = g1.input(x0.clone());
        let gathered = g1.gather(x1, groups.clone());
        let red1 = g1.group_max(gathered, 3);
        let t1 = g1.input(Matrix::zeros(2, 3));
        let l1 = g1.mse(red1, t1);
        g1.backward(l1);
        // Fused.
        let mut g2 = Graph::new();
        let x2 = g2.input(x0.clone());
        let red2 = g2.gather_max(x2, &groups, 3);
        let t2 = g2.input(Matrix::zeros(2, 3));
        let l2 = g2.mse(red2, t2);
        g2.backward(l2);

        assert_eq!(g1.value(red1), g2.value(red2));
        assert_eq!(g1.grad(x1), g2.grad(x2));
    }

    #[test]
    fn sub_centroid_gradient() {
        let centroid_src = Matrix::from_rows(&[&[0.3, -0.6]]);
        check_input_gradient(Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.4 - 0.7), |g, x| {
            let c = g.input(centroid_src.clone());
            // 2 groups of k=2, one shared centroid row gathered twice
            let cents = g.gather(c, vec![0, 0]);
            let y = g.sub_centroid(x, cents, 2);
            let t = g.input(Matrix::full(4, 2, 0.1));
            g.mse(y, t)
        });
    }

    #[test]
    fn weighted_gather_gradient() {
        check_input_gradient(Matrix::from_fn(4, 2, |r, c| (r * 3 + c) as f32 * 0.11), |g, x| {
            let y =
                g.weighted_gather(x, vec![0, 1, 2, 1, 2, 3], vec![0.2, 0.3, 0.5, 0.6, 0.1, 0.3], 3);
            let t = g.input(Matrix::zeros(2, 2));
            g.mse(y, t)
        });
    }

    #[test]
    fn hstack_gradient_splits() {
        let right = Matrix::from_rows(&[&[1.0], &[2.0]]);
        check_input_gradient(Matrix::from_fn(2, 2, |r, c| (r + 2 * c) as f32 * 0.5), |g, x| {
            let b = g.input(right.clone());
            let y = g.hstack(x, b);
            let t = g.input(Matrix::zeros(2, 3));
            g.mse(y, t)
        });
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_rows(&[&[2.0, 0.0, -1.0], &[0.0, 0.0, 0.0]]));
        let loss = g.softmax_cross_entropy(logits, vec![0, 2]);
        g.backward(loss);
        let grad = g.grad(logits).unwrap();
        let probs = ops::softmax_rows(g.value(logits));
        let n = 2.0;
        for r in 0..2 {
            for c in 0..3 {
                let onehot = if (r == 0 && c == 0) || (r == 1 && c == 2) { 1.0 } else { 0.0 };
                let want = (probs[(r, c)] - onehot) / n;
                assert!((grad[(r, c)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_parameter_accumulates_gradient() {
        // Using the same Param twice must route both gradient contributions
        // to one node — the shared-MLP situation.
        let p = Param::new(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let mut g = Graph::new();
        let w1 = g.param(&p);
        let w2 = g.param(&p);
        assert_eq!(w1, w2, "same param registers one node");
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y1 = g.matmul(x, w1);
        let y2 = g.matmul(x, w2);
        let y = g.add(y1, y2);
        let t = g.input(Matrix::zeros(1, 2));
        let loss = g.mse(y, t);
        g.backward(loss);
        let grad_shared = g.param_grad(p.id()).unwrap().clone();

        // Reference: single use scaled by 2 gives the same gradient.
        let mut g2 = Graph::new();
        let w = g2.param(&p);
        let x = g2.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = g2.matmul(x, w);
        let y = g2.scale(y, 2.0);
        let t = g2.input(Matrix::zeros(1, 2));
        let loss = g2.mse(y, t);
        g2.backward(loss);
        let grad_scaled = g2.param_grad(p.id()).unwrap();
        let diff = ops::sub(&grad_shared, grad_scaled).max_abs();
        assert!(diff < 1e-5, "shared-use gradient must equal scaled single use");
    }

    #[test]
    fn standardize_produces_zero_mean_unit_var() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(64, 3, |r, c| (r * (c + 1)) as f32));
        let y = g.standardize(x);
        let (mean, var) = ops::column_stats(g.value(y));
        for c in 0..3 {
            assert!(mean[(0, c)].abs() < 1e-4);
            assert!((var[(0, c)] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn standardize_gradient_is_scaled_passthrough() {
        // Stats are detached by design, so the gradient is exactly
        // grad_out · inv_std per column (not the full batch-norm Jacobian).
        let x0 = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let (_, var) = ops::column_stats(&x0);
        let mut g = Graph::new();
        let x = g.input(x0);
        let y = g.standardize(x);
        let t = g.input(Matrix::zeros(4, 2));
        let loss = g.mse(y, t);
        g.backward(loss);
        let gy = g.grad(y).unwrap().clone();
        let gx = g.grad(x).unwrap().clone();
        for r in 0..4 {
            for c in 0..2 {
                let inv_std = 1.0 / (var[(0, c)] + 1e-5).sqrt();
                assert!((gx[(r, c)] - gy[(r, c)] * inv_std).abs() < 1e-6);
            }
        }
    }
}
