//! Deterministic backend-agreement tests: `kdtree`, `grid`, and `ball`
//! results must match `bruteforce::knn_indices` (the reference
//! implementation) on seeded clouds, including the edge cases the proptest
//! suite's randomized inputs rarely hit: k = 1, k = n, and duplicate
//! points (distance ties, broken by index in every backend).

use mesorasi_knn::grid::UniformGrid;
use mesorasi_knn::kdtree::KdTree;
use mesorasi_knn::{ball, bruteforce};
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{Point3, PointCloud};

fn all_queries(cloud: &PointCloud) -> Vec<usize> {
    (0..cloud.len()).collect()
}

/// A cloud where several coordinates appear two or three times, so the
/// k-th neighbor is frequently decided purely by the index tie-break.
fn cloud_with_duplicates() -> PointCloud {
    let mut pts = Vec::new();
    for i in 0..8 {
        let p = Point3::new(i as f32 * 0.25, (i % 3) as f32 * 0.5, 0.0);
        pts.push(p);
        pts.push(p); // exact duplicate
        if i % 2 == 0 {
            pts.push(p); // triplicate
        }
    }
    PointCloud::from_points(pts)
}

#[test]
fn kdtree_matches_bruteforce_on_seeded_clouds() {
    for (shape, n, seed) in
        [(ShapeClass::Chair, 64, 1), (ShapeClass::Sphere, 200, 2), (ShapeClass::Torus, 33, 3)]
    {
        let cloud = sample_shape(shape, n, seed);
        let tree = KdTree::build(&cloud);
        let queries = all_queries(&cloud);
        for k in [1, 2, 7, n / 2, n] {
            let want = bruteforce::knn_indices(&cloud, &queries, k);
            let got = tree.knn_indices(&cloud, &queries, k);
            assert_eq!(want, got, "kdtree vs bruteforce, shape {shape:?}, n {n}, k {k}");
        }
    }
}

#[test]
fn kdtree_matches_bruteforce_k_equals_one_is_self() {
    let cloud = sample_shape(ShapeClass::Car, 100, 4);
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    let want = bruteforce::knn_indices(&cloud, &queries, 1);
    let got = tree.knn_indices(&cloud, &queries, 1);
    assert_eq!(want, got);
    // With k = 1 and unique coordinates, each point's nearest neighbor is
    // itself (distance 0 sorts first).
    for (q, neighbors) in got.iter() {
        assert_eq!(neighbors, &[q], "point {q} should be its own nearest neighbor");
    }
}

#[test]
fn kdtree_matches_bruteforce_k_equals_n_is_full_ranking() {
    let cloud = sample_shape(ShapeClass::Lamp, 24, 5);
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    let want = bruteforce::knn_indices(&cloud, &queries, n);
    let got = tree.knn_indices(&cloud, &queries, n);
    assert_eq!(want, got);
    // k = n returns every index exactly once per entry.
    for (_, neighbors) in got.iter() {
        let mut sorted = neighbors.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn kdtree_matches_bruteforce_with_duplicate_points() {
    let cloud = cloud_with_duplicates();
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    for k in [1, 2, 3, n] {
        let want = bruteforce::knn_indices(&cloud, &queries, k);
        let got = tree.knn_indices(&cloud, &queries, k);
        assert_eq!(want, got, "duplicate-point cloud, k {k}");
    }
}

#[test]
fn grid_ball_query_matches_kdtree_ball_query() {
    for (shape, n, seed, radius, k) in [
        (ShapeClass::Chair, 150, 6, 0.2, 8),
        (ShapeClass::Sphere, 80, 7, 0.35, 4),
        (ShapeClass::Guitar, 60, 8, 0.15, 1),
    ] {
        let cloud = sample_shape(shape, n, seed);
        let tree = KdTree::build(&cloud);
        // Exactness of the grid requires radius <= cell_size.
        let grid = UniformGrid::build(&cloud, radius);
        let queries = all_queries(&cloud);
        let want = ball::ball_query(&cloud, &tree, &queries, radius, k);
        let got = grid.ball_query(&cloud, &queries, radius, k);
        assert_eq!(want, got, "grid vs kdtree ball query, shape {shape:?}, r {radius}, k {k}");
    }
}

#[test]
fn ball_query_with_covering_radius_matches_bruteforce_knn() {
    // `sample_shape` normalizes to the unit sphere, so radius 3 covers
    // every pair; an unpadded ball query then degenerates to exact KNN.
    let cloud = sample_shape(ShapeClass::Table, 90, 9);
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let grid = UniformGrid::build(&cloud, 3.0);
    let queries = all_queries(&cloud);
    for k in [1, 5, n] {
        let want = bruteforce::knn_indices(&cloud, &queries, k);
        let via_tree = ball::ball_query(&cloud, &tree, &queries, 3.0, k);
        let via_grid = grid.ball_query(&cloud, &queries, 3.0, k);
        assert_eq!(want, via_tree, "kdtree ball query with covering radius, k {k}");
        assert_eq!(want, via_grid, "grid ball query with covering radius, k {k}");
    }
}

#[test]
fn ball_query_backends_agree_on_duplicate_points() {
    let cloud = cloud_with_duplicates();
    let tree = KdTree::build(&cloud);
    let radius = 0.3;
    let grid = UniformGrid::build(&cloud, radius);
    let queries = all_queries(&cloud);
    for k in [1, 4, 9] {
        let want = ball::ball_query(&cloud, &tree, &queries, radius, k);
        let got = grid.ball_query(&cloud, &queries, radius, k);
        assert_eq!(want, got, "duplicate-point ball query, k {k}");
    }
}

#[test]
fn single_point_cloud_every_backend_returns_the_point() {
    let cloud = PointCloud::from_points(vec![Point3::new(0.5, -0.25, 1.0)]);
    let tree = KdTree::build(&cloud);
    let grid = UniformGrid::build(&cloud, 0.1);
    let want = bruteforce::knn_indices(&cloud, &[0], 1);
    assert_eq!(want.neighbors(0), &[0]);
    assert_eq!(tree.knn_indices(&cloud, &[0], 1), want);
    assert_eq!(ball::ball_query(&cloud, &tree, &[0], 0.5, 1), want);
    assert_eq!(grid.ball_query(&cloud, &[0], 0.5, 1), want);
}
