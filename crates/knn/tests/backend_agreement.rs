//! Deterministic backend-agreement tests: `kdtree`, `grid`, `octree`
//! (resident and paged), and `ball`
//! results must match `bruteforce::knn_indices` (the reference
//! implementation) on seeded clouds, including the edge cases the proptest
//! suite's randomized inputs rarely hit: k = 1, k = n, and duplicate
//! points (distance ties, broken by index in every backend).
//!
//! The second half drives the *pluggable* subsystem: every backend behind
//! the [`SearchIndex`] trait-object path, and every backend the
//! [`SearchPlanner`] can select through a [`SearchContext`], must produce
//! NITs bit-identical to brute force for both kNN and padded radius
//! queries — including degenerate grids (zero-extent AABB) and k far
//! beyond any cell's population.

use mesorasi_knn::grid::UniformGrid;
use mesorasi_knn::index::{BruteForceIndex, FeatureBrute};
use mesorasi_knn::kdtree::KdTree;
use mesorasi_knn::{
    ball, bruteforce, MortonOctree, NeighborIndexTable, SearchBackend, SearchContext, SearchIndex,
    SearchPlanner,
};
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{Point3, PointCloud};

fn all_queries(cloud: &PointCloud) -> Vec<usize> {
    (0..cloud.len()).collect()
}

/// A cloud where several coordinates appear two or three times, so the
/// k-th neighbor is frequently decided purely by the index tie-break.
fn cloud_with_duplicates() -> PointCloud {
    let mut pts = Vec::new();
    for i in 0..8 {
        let p = Point3::new(i as f32 * 0.25, (i % 3) as f32 * 0.5, 0.0);
        pts.push(p);
        pts.push(p); // exact duplicate
        if i % 2 == 0 {
            pts.push(p); // triplicate
        }
    }
    PointCloud::from_points(pts)
}

#[test]
fn kdtree_matches_bruteforce_on_seeded_clouds() {
    for (shape, n, seed) in
        [(ShapeClass::Chair, 64, 1), (ShapeClass::Sphere, 200, 2), (ShapeClass::Torus, 33, 3)]
    {
        let cloud = sample_shape(shape, n, seed);
        let tree = KdTree::build(&cloud);
        let queries = all_queries(&cloud);
        for k in [1, 2, 7, n / 2, n] {
            let want = bruteforce::knn_indices(&cloud, &queries, k);
            let got = tree.knn_indices(&cloud, &queries, k);
            assert_eq!(want, got, "kdtree vs bruteforce, shape {shape:?}, n {n}, k {k}");
        }
    }
}

#[test]
fn kdtree_matches_bruteforce_k_equals_one_is_self() {
    let cloud = sample_shape(ShapeClass::Car, 100, 4);
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    let want = bruteforce::knn_indices(&cloud, &queries, 1);
    let got = tree.knn_indices(&cloud, &queries, 1);
    assert_eq!(want, got);
    // With k = 1 and unique coordinates, each point's nearest neighbor is
    // itself (distance 0 sorts first).
    for (q, neighbors) in got.iter() {
        assert_eq!(neighbors, &[q], "point {q} should be its own nearest neighbor");
    }
}

#[test]
fn kdtree_matches_bruteforce_k_equals_n_is_full_ranking() {
    let cloud = sample_shape(ShapeClass::Lamp, 24, 5);
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    let want = bruteforce::knn_indices(&cloud, &queries, n);
    let got = tree.knn_indices(&cloud, &queries, n);
    assert_eq!(want, got);
    // k = n returns every index exactly once per entry.
    for (_, neighbors) in got.iter() {
        let mut sorted = neighbors.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn kdtree_matches_bruteforce_with_duplicate_points() {
    let cloud = cloud_with_duplicates();
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let queries = all_queries(&cloud);
    for k in [1, 2, 3, n] {
        let want = bruteforce::knn_indices(&cloud, &queries, k);
        let got = tree.knn_indices(&cloud, &queries, k);
        assert_eq!(want, got, "duplicate-point cloud, k {k}");
    }
}

#[test]
fn grid_ball_query_matches_kdtree_ball_query() {
    for (shape, n, seed, radius, k) in [
        (ShapeClass::Chair, 150, 6, 0.2, 8),
        (ShapeClass::Sphere, 80, 7, 0.35, 4),
        (ShapeClass::Guitar, 60, 8, 0.15, 1),
    ] {
        let cloud = sample_shape(shape, n, seed);
        let tree = KdTree::build(&cloud);
        // Exactness of the grid requires radius <= cell_size.
        let grid = UniformGrid::build(&cloud, radius);
        let queries = all_queries(&cloud);
        let want = ball::ball_query(&cloud, &tree, &queries, radius, k);
        let got = grid.ball_query(&cloud, &queries, radius, k);
        assert_eq!(want, got, "grid vs kdtree ball query, shape {shape:?}, r {radius}, k {k}");
    }
}

#[test]
fn ball_query_with_covering_radius_matches_bruteforce_knn() {
    // `sample_shape` normalizes to the unit sphere, so radius 3 covers
    // every pair; an unpadded ball query then degenerates to exact KNN.
    let cloud = sample_shape(ShapeClass::Table, 90, 9);
    let n = cloud.len();
    let tree = KdTree::build(&cloud);
    let grid = UniformGrid::build(&cloud, 3.0);
    let queries = all_queries(&cloud);
    for k in [1, 5, n] {
        let want = bruteforce::knn_indices(&cloud, &queries, k);
        let via_tree = ball::ball_query(&cloud, &tree, &queries, 3.0, k);
        let via_grid = grid.ball_query(&cloud, &queries, 3.0, k);
        assert_eq!(want, via_tree, "kdtree ball query with covering radius, k {k}");
        assert_eq!(want, via_grid, "grid ball query with covering radius, k {k}");
    }
}

#[test]
fn ball_query_backends_agree_on_duplicate_points() {
    let cloud = cloud_with_duplicates();
    let tree = KdTree::build(&cloud);
    let radius = 0.3;
    let grid = UniformGrid::build(&cloud, radius);
    let queries = all_queries(&cloud);
    for k in [1, 4, 9] {
        let want = ball::ball_query(&cloud, &tree, &queries, radius, k);
        let got = grid.ball_query(&cloud, &queries, radius, k);
        assert_eq!(want, got, "duplicate-point ball query, k {k}");
    }
}

#[test]
fn single_point_cloud_every_backend_returns_the_point() {
    let cloud = PointCloud::from_points(vec![Point3::new(0.5, -0.25, 1.0)]);
    let tree = KdTree::build(&cloud);
    let grid = UniformGrid::build(&cloud, 0.1);
    let want = bruteforce::knn_indices(&cloud, &[0], 1);
    assert_eq!(want.neighbors(0), &[0]);
    assert_eq!(tree.knn_indices(&cloud, &[0], 1), want);
    assert_eq!(ball::ball_query(&cloud, &tree, &[0], 0.5, 1), want);
    assert_eq!(grid.ball_query(&cloud, &[0], 0.5, 1), want);
}

// ---------------------------------------------------------------------
// The pluggable subsystem: trait objects, the planner, and the context.
// ---------------------------------------------------------------------

/// Every kNN-capable backend behind `Box<dyn SearchIndex>`: the octree
/// rides along twice, resident and behind a pager budget of two leaves,
/// so every agreement case below (k = 1, k = n, duplicate points,
/// zero-extent AABB, k far beyond any leaf's 32 points) also exercises
/// eviction churn.
fn knn_backends(cloud: &PointCloud) -> Vec<Box<dyn SearchIndex>> {
    let mut paged = MortonOctree::paged(2 * 32 * 12); // two 32-point leaves
    SearchIndex::build_into(&mut paged, cloud);
    vec![
        Box::new(<KdTree as SearchIndex>::build(cloud)),
        Box::new(<BruteForceIndex as SearchIndex>::build(cloud)),
        Box::new(<FeatureBrute as SearchIndex>::build(cloud)),
        Box::new(<MortonOctree as SearchIndex>::build(cloud)),
        Box::new(paged),
    ]
}

/// Every ball-capable backend behind `Box<dyn SearchIndex>` (the grid
/// needs its cell size configured before building).
fn ball_backends(cloud: &PointCloud, radius: f32) -> Vec<Box<dyn SearchIndex>> {
    let mut grid = UniformGrid::default();
    grid.set_cell_size(radius);
    SearchIndex::build_into(&mut grid, cloud);
    let mut backends = knn_backends(cloud);
    backends.push(Box::new(grid));
    backends
}

#[test]
fn trait_object_knn_matches_bruteforce_with_ties_and_extremes() {
    let clouds = [sample_shape(ShapeClass::Vase, 180, 21), cloud_with_duplicates()];
    for cloud in &clouds {
        let n = cloud.len();
        let queries = all_queries(cloud);
        for k in [1, 3, n / 2, n] {
            let want = bruteforce::knn_indices(cloud, &queries, k);
            for backend in &mut knn_backends(cloud) {
                let mut got = NeighborIndexTable::default();
                let evals = backend.knn_into(cloud, &queries, k, &mut got);
                assert_eq!(got, want, "{:?} kNN drifted at k {k}, n {n}", backend.kind());
                assert!(evals > 0, "{:?} must meter distance work", backend.kind());
            }
        }
    }
}

#[test]
fn trait_object_ball_matches_reference_with_padding_and_ties() {
    // The duplicate cloud forces index-order tie-breaks; the sparse pair
    // forces padding in every backend.
    for (cloud, radius, k) in [
        (sample_shape(ShapeClass::Table, 160, 22), 0.25, 8),
        (cloud_with_duplicates(), 0.3, 9),
        // Covering radius: the padded ball query degenerates to exact kNN.
        (sample_shape(ShapeClass::Sphere, 90, 23), 3.0, 5),
    ] {
        let tree = KdTree::build(&cloud);
        let queries = all_queries(&cloud);
        let want = ball::ball_query(&cloud, &tree, &queries, radius, k);
        for backend in &mut ball_backends(&cloud, radius) {
            let mut got = NeighborIndexTable::default();
            backend.ball_into(&cloud, &queries, radius, k, &mut got);
            assert_eq!(got, want, "{:?} ball drifted (r {radius}, k {k})", backend.kind());
        }
    }
}

#[test]
fn trait_object_rebuild_over_new_frame_answers_for_the_new_cloud() {
    let a = sample_shape(ShapeClass::Chair, 128, 24);
    let b = sample_shape(ShapeClass::Guitar, 128, 25);
    let queries = all_queries(&a);
    for backend in &mut knn_backends(&a) {
        backend.build_into(&b);
        let mut got = NeighborIndexTable::default();
        backend.knn_into(&b, &queries, 6, &mut got);
        assert_eq!(got, bruteforce::knn_indices(&b, &queries, 6), "{:?}", backend.kind());
    }
}

/// Satellite audit: a zero-extent AABB (all points coincident) collapses
/// the grid to one cell; every backend must still agree, ties broken by
/// index, padding never needed (everything is in radius).
#[test]
fn coincident_cloud_zero_extent_grid_agrees_with_all_backends() {
    let cloud = PointCloud::from_points(vec![Point3::new(-2.0, 0.5, 3.25); 30]);
    let queries = all_queries(&cloud);
    for k in [1, 7, 30] {
        let tree = KdTree::build(&cloud);
        let want = ball::ball_query(&cloud, &tree, &queries, 0.4, k);
        // All coincident ⇒ the k nearest are simply indices 0..k.
        assert_eq!(want.neighbors(0), (0..k).collect::<Vec<_>>().as_slice());
        for backend in &mut ball_backends(&cloud, 0.4) {
            let mut got = NeighborIndexTable::default();
            backend.ball_into(&cloud, &queries, 0.4, k, &mut got);
            assert_eq!(got, want, "{:?} on coincident cloud, k {k}", backend.kind());
        }
    }
}

/// Satellite audit: k far larger than any cell's population — the grid
/// must pad from neighboring cells' sorted union exactly like the
/// kd-tree path pads, never panic or truncate.
#[test]
fn grid_k_beyond_cell_population_pads_identically() {
    // A line of tight pairs: cell size 0.1 puts at most 2 points per cell.
    let mut pts = Vec::new();
    for i in 0..24 {
        pts.push(Point3::new(i as f32, 0.0, 0.0));
        pts.push(Point3::new(i as f32 + 0.01, 0.0, 0.0));
    }
    let cloud = PointCloud::from_points(pts);
    let tree = KdTree::build(&cloud);
    let mut grid = UniformGrid::build(&cloud, 0.1);
    let queries = all_queries(&cloud);
    for k in [2, 5, 16] {
        let want = ball::ball_query(&cloud, &tree, &queries, 0.1, k);
        assert_eq!(grid.ball_query(&cloud, &queries, 0.1, k), want, "k {k}");
        let mut got = NeighborIndexTable::default();
        grid.ball_into(&cloud, &queries, 0.1, k, &mut got);
        assert_eq!(got, want, "ball_into k {k}");
        // Sparse neighborhoods: entries pad with their first index.
        assert!(got.neighbors(0).iter().filter(|&&i| i == 0).count() >= k - 2);
    }
}

/// Every backend the planner can select — auto and all three forced
/// choices — must produce the NIT the kd-tree path produced before the
/// subsystem existed, for kNN and ball alike.
#[test]
fn planner_selected_backends_agree_through_the_context() {
    let cloud = sample_shape(ShapeClass::Airplane, 300, 26);
    let queries: Vec<usize> = (0..300).step_by(2).collect();
    let knn_want = bruteforce::knn_indices(&cloud, &queries, 10);
    let tree = KdTree::build(&cloud);
    let ball_want = ball::ball_query(&cloud, &tree, &queries, 0.3, 10);
    let planners = [
        SearchPlanner::auto(),
        SearchPlanner::forced(SearchBackend::BruteForce),
        SearchPlanner::forced(SearchBackend::KdTree),
        SearchPlanner::forced(SearchBackend::Grid),
        SearchPlanner::forced(SearchBackend::Octree),
    ];
    for planner in planners {
        let mut ctx = SearchContext::with_planner(planner);
        let mut got = NeighborIndexTable::default();
        ctx.knn_into(0, &cloud, &queries, 10, &mut got);
        assert_eq!(got, knn_want, "kNN drifted under {planner:?}");
        ctx.ball_into(0, &cloud, &queries, 0.3, 10, &mut got);
        assert_eq!(got, ball_want, "ball drifted under {planner:?}");
    }
}
