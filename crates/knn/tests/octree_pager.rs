//! Pager bit-identity suite: the octree's answers must not depend on the
//! pager budget. Every query path round-trips leaf payloads through the
//! backing file as raw little-endian `f32` bits and the traversal never
//! consults residency, so kNN and ball NITs — and even the metered
//! distance-evaluation counts — must be bit-identical across budgets
//! {unbounded, ½-cloud, minimum} and across repeated evict-readmit
//! cycles. The million-point acceptance test at the bottom is `#[ignore]`d
//! for the default suite and runs in the `large-cloud` CI job under
//! `--release`.

use mesorasi_knn::pager::POINT_BYTES;
use mesorasi_knn::{bruteforce, MortonOctree, NeighborIndexTable, SearchIndex};
use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

/// Deterministic synthetic cloud from a bare LCG — cheap enough for
/// million-point scales, unlike the shape sampler.
fn synthetic_cloud(n: usize, seed: u64) -> PointCloud {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut unit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
    };
    let pts: Vec<Point3> = (0..n).map(|_| Point3::new(unit(), unit(), unit())).collect();
    PointCloud::from_points(pts)
}

/// kNN + ball results and eval counts for one budget, run `passes` times
/// over the same tree so later passes re-page leaves evicted earlier.
fn run_budget(
    cloud: &PointCloud,
    queries: &[usize],
    k: usize,
    radius: f32,
    budget: usize,
    passes: usize,
) -> Vec<(NeighborIndexTable, u64, NeighborIndexTable, u64)> {
    let mut tree = MortonOctree::paged(budget);
    SearchIndex::build_into(&mut tree, cloud);
    (0..passes)
        .map(|_| {
            let mut knn = NeighborIndexTable::default();
            let knn_evals = tree.knn_into(cloud, queries, k, &mut knn);
            let mut ball = NeighborIndexTable::default();
            let ball_evals = tree.ball_into(cloud, queries, radius, k, &mut ball);
            (knn, knn_evals, ball, ball_evals)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn answers_are_bit_identical_across_budgets_and_readmit_cycles(
        n in 64usize..900,
        seed in 0u64..1_000_000,
        k in 1usize..24,
        radius in 0.05f32..0.6,
    ) {
        let cloud = sample_shape(ShapeClass::Chair, n, seed);
        let queries: Vec<usize> = (0..n).step_by(5).collect();
        let k = k.min(n);
        let storage = n * POINT_BYTES;
        // Minimum budget: the store always admits the incoming leaf, so
        // even a 1-byte budget answers correctly (with maximal churn).
        let budgets = [usize::MAX, storage / 2, 1];
        let runs: Vec<_> =
            budgets.iter().map(|&b| run_budget(&cloud, &queries, k, radius, b, 2)).collect();

        // Reference: the resident (non-paged) octree and brute force.
        let mut resident = <MortonOctree as SearchIndex>::build(&cloud);
        let mut knn_want = NeighborIndexTable::default();
        let knn_want_evals = resident.knn_into(&cloud, &queries, k, &mut knn_want);
        prop_assert_eq!(&knn_want, &bruteforce::knn_indices(&cloud, &queries, k));
        let mut ball_want = NeighborIndexTable::default();
        let ball_want_evals = resident.ball_into(&cloud, &queries, radius, k, &mut ball_want);

        for (bi, run) in runs.iter().enumerate() {
            for (pass, (knn, knn_evals, ball, ball_evals)) in run.iter().enumerate() {
                prop_assert_eq!(knn, &knn_want, "kNN drifted: budget {} pass {}", budgets[bi], pass);
                prop_assert_eq!(*knn_evals, knn_want_evals, "kNN evals: budget {}", budgets[bi]);
                prop_assert_eq!(ball, &ball_want, "ball drifted: budget {} pass {}", budgets[bi], pass);
                prop_assert_eq!(*ball_evals, ball_want_evals, "ball evals: budget {}", budgets[bi]);
            }
        }
    }
}

/// Deterministic churn check: a budget of two leaves over a many-leaf
/// cloud must evict on every sweep yet stay within budget and keep
/// counters consistent.
#[test]
fn tiny_budget_churns_within_budget_and_stays_exact() {
    let cloud = synthetic_cloud(4096, 11);
    let queries: Vec<usize> = (0..4096).step_by(17).collect();
    let want = bruteforce::knn_indices(&cloud, &queries, 8);
    let budget = 2 * 32 * POINT_BYTES; // two 32-point leaves
    let mut tree = MortonOctree::paged(budget);
    SearchIndex::build_into(&mut tree, &cloud);
    for cycle in 0..3 {
        let mut got = NeighborIndexTable::default();
        tree.knn_into(&cloud, &queries, 8, &mut got);
        assert_eq!(got, want, "cycle {cycle}");
        let stats = tree.pager_stats();
        assert!(stats.resident_bytes <= budget, "over budget: {stats:?}");
        assert!(stats.evictions > 0, "a two-leaf budget must churn: {stats:?}");
        assert_eq!(stats.budget_bytes, budget);
    }
}

/// ISSUE acceptance: a 2^20-point cloud answers kNN and ball queries
/// under a pager budget smaller than the cloud's storage bytes,
/// bit-identical to an unbounded pager. `--ignored` because the build +
/// query sweep is release-grade work; the `large-cloud` CI job runs it.
#[test]
#[ignore = "million-point acceptance; run with --release --ignored (large-cloud CI job)"]
fn million_point_cloud_is_bit_identical_under_a_sub_storage_budget() {
    let n = 1 << 20;
    let cloud = synthetic_cloud(n, 2020);
    let storage = n * POINT_BYTES;
    let queries: Vec<usize> = (0..n).step_by(n / 64).collect();
    let (k, radius) = (16, 0.05);

    let unbounded = run_budget(&cloud, &queries, k, radius, usize::MAX, 1);
    let budget = storage / 8;
    assert!(budget < storage, "the paged run must not fit the whole cloud");
    let paged = run_budget(&cloud, &queries, k, radius, budget, 2);

    let (knn_want, knn_evals, ball_want, ball_evals) = &unbounded[0];
    for (pass, (knn, ke, ball, be)) in paged.iter().enumerate() {
        assert_eq!(knn, knn_want, "kNN drifted under paging, pass {pass}");
        assert_eq!(ke, knn_evals, "kNN eval count drifted, pass {pass}");
        assert_eq!(ball, ball_want, "ball drifted under paging, pass {pass}");
        assert_eq!(be, ball_evals, "ball eval count drifted, pass {pass}");
    }

    // The paged tree really did run out-of-core.
    let mut tree = MortonOctree::paged(budget);
    SearchIndex::build_into(&mut tree, &cloud);
    let mut out = NeighborIndexTable::default();
    tree.knn_into(&cloud, &queries, k, &mut out);
    let stats = tree.pager_stats();
    assert!(stats.resident_bytes <= budget, "resident set over budget: {stats:?}");
    assert!(stats.misses > 0, "a sub-storage budget must page: {stats:?}");
}
