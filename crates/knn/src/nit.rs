//! The Neighbor Index Table (NIT).
//!
//! The paper's delayed-aggregation executor materializes neighbor search
//! results as a table with one entry per centroid: the centroid's index and
//! the indices of its `K` neighbors (Fig. 8). In hardware, the NIT is
//! streamed through a double-buffered SRAM whose entries hold up to 64
//! neighbor indices of 12 bits each (§VI); the aggregation unit consumes one
//! entry per cycle. This type is shared between the functional executors and
//! the hardware simulator so that bank-conflict behaviour is computed on the
//! *real* index distributions.

/// Neighbor search results: `len()` centroids, each with exactly `k`
/// neighbor indices into the searched cloud.
///
/// # Example
///
/// ```
/// use mesorasi_knn::NeighborIndexTable;
///
/// let mut nit = NeighborIndexTable::new(3);
/// nit.push_entry(0, &[0, 1, 2]);
/// nit.push_entry(5, &[5, 4, 3]);
/// assert_eq!(nit.len(), 2);
/// assert_eq!(nit.neighbors(1), &[5, 4, 3]);
/// assert_eq!(nit.centroid(1), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborIndexTable {
    k: usize,
    centroids: Vec<usize>,
    neighbors: Vec<usize>,
}

impl Default for NeighborIndexTable {
    /// An empty `k = 1` table — the neutral state of a reusable buffer;
    /// every query path [`NeighborIndexTable::reset`]s `k` before writing.
    fn default() -> Self {
        NeighborIndexTable::new(1)
    }
}

impl NeighborIndexTable {
    /// Bits per stored neighbor index in the hardware encoding (§VI).
    pub const INDEX_BITS: usize = 12;
    /// Maximum neighbor count a single hardware NIT entry accommodates.
    pub const MAX_HW_NEIGHBORS: usize = 64;

    /// Creates an empty table with `k` neighbors per entry.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "neighbor count must be positive");
        NeighborIndexTable { k, centroids: Vec::new(), neighbors: Vec::new() }
    }

    /// Creates an empty table with room for `entries` centroids.
    pub fn with_capacity(k: usize, entries: usize) -> Self {
        assert!(k > 0, "neighbor count must be positive");
        NeighborIndexTable {
            k,
            centroids: Vec::with_capacity(entries),
            neighbors: Vec::with_capacity(entries * k),
        }
    }

    /// Clears the table and switches it to `k` neighbors per entry, keeping
    /// the backing allocations — the reusable-buffer counterpart of
    /// [`NeighborIndexTable::new`] that the search arenas cycle through.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "neighbor count must be positive");
        self.k = k;
        self.centroids.clear();
        self.neighbors.clear();
    }

    /// Resets the table to `entries` zero-filled entries of `k` neighbors
    /// and exposes the `(centroids, neighbors)` storage for direct writes —
    /// the out-parameter query paths fill disjoint per-query slots, possibly
    /// from parallel workers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub(crate) fn fill_slots(&mut self, k: usize, entries: usize) -> (&mut [usize], &mut [usize]) {
        self.reset(k);
        self.centroids.resize(entries, 0);
        self.neighbors.resize(entries * k, 0);
        (&mut self.centroids, &mut self.neighbors)
    }

    /// Heap bytes retained by the table's backing storage (capacity, not
    /// length) — part of the search-arena statistics.
    pub fn storage_bytes(&self) -> usize {
        (self.centroids.capacity() + self.neighbors.capacity()) * std::mem::size_of::<usize>()
    }

    /// Appends one centroid's neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors.len() != self.k()`.
    pub fn push_entry(&mut self, centroid: usize, neighbors: &[usize]) {
        assert_eq!(neighbors.len(), self.k, "entry must have exactly k = {} neighbors", self.k);
        self.centroids.push(centroid);
        self.neighbors.extend_from_slice(neighbors);
    }

    /// Neighbors per entry.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries (centroids), `N_out`.
    #[inline]
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// True when the table has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// The centroid index of entry `i`.
    #[inline]
    pub fn centroid(&self, i: usize) -> usize {
        self.centroids[i]
    }

    /// The neighbor indices of entry `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i * self.k..(i + 1) * self.k]
    }

    /// All centroid indices.
    #[inline]
    pub fn centroids(&self) -> &[usize] {
        &self.centroids
    }

    /// The flattened `N_out × K` neighbor matrix, row-major.
    #[inline]
    pub fn neighbors_flat(&self) -> &[usize] {
        &self.neighbors
    }

    /// Iterates over `(centroid, neighbors)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        self.centroids.iter().copied().zip(self.neighbors.chunks_exact(self.k))
    }

    /// Size of the table in the hardware encoding, in bytes: one entry is
    /// `k` indices of [`Self::INDEX_BITS`] bits, rounded up to whole bytes
    /// (the paper's 64-neighbor entry is 98 bytes: 64 × 12 bits + 2 spare).
    pub fn hardware_bytes(&self) -> usize {
        let entry_bits = (self.k + 1) * Self::INDEX_BITS; // +1 for the centroid
        let entry_bytes = entry_bits.div_ceil(8);
        entry_bytes * self.len()
    }

    /// Largest index referenced (centroid or neighbor); `None` when empty.
    /// Executors validate this against the searched cloud's size.
    pub fn max_index(&self) -> Option<usize> {
        self.centroids.iter().chain(self.neighbors.iter()).copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = NeighborIndexTable::new(0);
    }

    #[test]
    #[should_panic(expected = "exactly k")]
    fn wrong_entry_len_panics() {
        let mut nit = NeighborIndexTable::new(4);
        nit.push_entry(0, &[1, 2, 3]);
    }

    #[test]
    fn entries_round_trip() {
        let mut nit = NeighborIndexTable::new(2);
        nit.push_entry(7, &[1, 2]);
        nit.push_entry(9, &[3, 4]);
        let collected: Vec<_> = nit.iter().collect();
        assert_eq!(collected, vec![(7, &[1usize, 2][..]), (9, &[3, 4][..])]);
        assert_eq!(nit.max_index(), Some(9));
    }

    #[test]
    fn hardware_bytes_matches_paper_entry_size() {
        // 64 neighbors + centroid = 65 × 12 bits = 780 bits = 97.5 → 98 bytes.
        let mut nit = NeighborIndexTable::new(64);
        nit.push_entry(0, &vec![0; 64]);
        assert_eq!(nit.hardware_bytes(), 98);
    }

    #[test]
    fn reset_switches_k_and_keeps_capacity() {
        let mut nit = NeighborIndexTable::new(2);
        nit.push_entry(0, &[1, 2]);
        nit.push_entry(1, &[3, 4]);
        let bytes = nit.storage_bytes();
        nit.reset(3);
        assert!(nit.is_empty());
        assert_eq!(nit.k(), 3);
        nit.push_entry(5, &[5, 6, 7]);
        assert_eq!(nit.neighbors(0), &[5, 6, 7]);
        assert!(nit.storage_bytes() >= bytes, "reset must not shrink storage");
    }

    #[test]
    fn fill_slots_exposes_writable_entries() {
        let mut nit = NeighborIndexTable::new(4);
        {
            let (cents, neighs) = nit.fill_slots(2, 3);
            assert_eq!((cents.len(), neighs.len()), (3, 6));
            cents.copy_from_slice(&[9, 8, 7]);
            neighs.copy_from_slice(&[0, 1, 2, 3, 4, 5]);
        }
        assert_eq!(nit.len(), 3);
        assert_eq!(nit.centroid(0), 9);
        assert_eq!(nit.neighbors(2), &[4, 5]);
    }

    #[test]
    fn empty_table() {
        let nit = NeighborIndexTable::new(8);
        assert!(nit.is_empty());
        assert_eq!(nit.len(), 0);
        assert_eq!(nit.max_index(), None);
        assert_eq!(nit.hardware_bytes(), 0);
    }
}
