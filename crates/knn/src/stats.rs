//! Neighborhood membership statistics (reproduces Fig. 6).
//!
//! The paper's memory analysis (§III-B) rests on one observation: *the same
//! input point occurs in many neighborhoods*, and the original algorithm
//! re-normalizes (and therefore re-computes features for) the point once per
//! neighborhood. Fig. 6 plots, per input cloud, how many points (`y`) occur
//! in exactly `x` neighborhoods. These helpers compute that distribution
//! from one or more [`NeighborIndexTable`]s so the `fig06` experiment can
//! regenerate the plot's data.

use crate::NeighborIndexTable;

/// Search-traffic counters accumulated by a [`crate::index::SearchContext`]:
/// how much index-build vs query work real inference traffic performs, and
/// how many pairwise distance evaluations the chosen backends actually ran
/// (the quantity the GPU cost model charges, here measured instead of
/// assumed). Plain fields, no global state — each context owns its own
/// counters, and the bench harness reads them off the serving session, so
/// Fig. 6-style overlap analysis can run against production-shaped traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchCounters {
    /// Index structures (re)built — kd-trees and grids, not the stateless
    /// brute-force backends.
    pub index_builds: u64,
    /// Wall time spent building indices, in nanoseconds.
    pub index_build_ns: u64,
    /// Batched query calls answered (one per module search).
    pub query_calls: u64,
    /// Individual centroid queries answered across all calls.
    pub queries: u64,
    /// Wall time spent answering queries, in nanoseconds.
    pub query_ns: u64,
    /// Pairwise distance evaluations performed by the backends.
    pub distance_evals: u64,
}

impl SearchCounters {
    /// Accumulates `other` into `self` (sessions sum their workers).
    pub fn add(&mut self, other: &SearchCounters) {
        self.index_builds += other.index_builds;
        self.index_build_ns += other.index_build_ns;
        self.query_calls += other.query_calls;
        self.queries += other.queries;
        self.query_ns += other.query_ns;
        self.distance_evals += other.distance_evals;
    }

    /// `self - baseline`, for measuring a traffic window between two
    /// snapshots. Saturates at zero (snapshots from the same context are
    /// monotonic, so saturation only absorbs caller mistakes).
    pub fn since(&self, baseline: &SearchCounters) -> SearchCounters {
        SearchCounters {
            index_builds: self.index_builds.saturating_sub(baseline.index_builds),
            index_build_ns: self.index_build_ns.saturating_sub(baseline.index_build_ns),
            query_calls: self.query_calls.saturating_sub(baseline.query_calls),
            queries: self.queries.saturating_sub(baseline.queries),
            query_ns: self.query_ns.saturating_sub(baseline.query_ns),
            distance_evals: self.distance_evals.saturating_sub(baseline.distance_evals),
        }
    }
}

/// Counts, for each input point, the number of NIT entries (neighborhoods)
/// it appears in. Duplicate occurrences within one entry (ball-query
/// padding) are counted once per entry, matching the figure's definition of
/// "occurs in a neighborhood".
///
/// # Panics
///
/// Panics if the NIT references an index `>= n_points`.
pub fn membership_counts(nit: &NeighborIndexTable, n_points: usize) -> Vec<u32> {
    if let Some(max) = nit.max_index() {
        assert!(max < n_points, "NIT references point {max} outside 0..{n_points}");
    }
    let mut counts = vec![0u32; n_points];
    let mut seen_entry = vec![usize::MAX; n_points];
    for (entry_idx, (_, neighbors)) in nit.iter().enumerate() {
        for &n in neighbors {
            if seen_entry[n] != entry_idx {
                seen_entry[n] = entry_idx;
                counts[n] += 1;
            }
        }
    }
    counts
}

/// Accumulates membership counts across the modules of one network run —
/// the figure profiles whole-network behaviour, and deeper modules reuse
/// points from earlier ones.
pub fn accumulate_membership(tables: &[(&NeighborIndexTable, usize)]) -> Vec<u32> {
    let n = tables.iter().map(|&(_, n)| n).max().unwrap_or(0);
    let mut total = vec![0u32; n];
    for &(nit, n_points) in tables {
        for (i, c) in membership_counts(nit, n_points).into_iter().enumerate() {
            total[i] += c;
        }
    }
    total
}

/// Converts per-point membership counts into the Fig. 6 distribution:
/// `result[x]` = number of points that occur in exactly `x` neighborhoods.
pub fn occurrence_histogram(counts: &[u32]) -> Vec<u32> {
    let max = counts.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u32; max + 1];
    for &c in counts {
        hist[c as usize] += 1;
    }
    hist
}

/// Share of points whose membership count is at least `threshold` — the
/// paper summarizes Fig. 6 as "over half occur in more than 30
/// neighborhoods" (PointNet++) / "over half in 20" (DGCNN).
pub fn fraction_at_least(counts: &[u32], threshold: u32) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().filter(|&&c| c >= threshold).count() as f64 / counts.len() as f64
}

/// Mean membership count. The paper's Fig. 3 caption: "most points are
/// normalized to 20 to 100 centroids".
pub fn mean_membership(counts: &[u32]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_nit() -> NeighborIndexTable {
        let mut nit = NeighborIndexTable::new(2);
        nit.push_entry(0, &[0, 2]); // point 2 in neighborhood of 0
        nit.push_entry(1, &[1, 2]); // point 2 again
        nit.push_entry(3, &[3, 3]); // padded entry: 3 counted once
        nit
    }

    #[test]
    fn membership_counts_toy() {
        let counts = membership_counts(&toy_nit(), 4);
        assert_eq!(counts, vec![1, 1, 2, 1]);
    }

    #[test]
    fn padded_duplicates_count_once_per_entry() {
        let mut nit = NeighborIndexTable::new(4);
        nit.push_entry(0, &[0, 0, 0, 0]);
        let counts = membership_counts(&nit, 1);
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn histogram_inverts_counts() {
        let hist = occurrence_histogram(&[1, 1, 2, 1]);
        assert_eq!(hist, vec![0, 3, 1]); // 0 points in 0, 3 points in 1, 1 point in 2
    }

    #[test]
    fn fraction_and_mean() {
        let counts = vec![1, 2, 3, 4];
        assert_eq!(fraction_at_least(&counts, 3), 0.5);
        assert_eq!(mean_membership(&counts), 2.5);
        assert_eq!(fraction_at_least(&[], 1), 0.0);
        assert_eq!(mean_membership(&[]), 0.0);
    }

    #[test]
    fn accumulate_sums_across_modules() {
        let nit = toy_nit();
        let total = accumulate_membership(&[(&nit, 4), (&nit, 4)]);
        assert_eq!(total, vec![2, 2, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_index_panics() {
        let mut nit = NeighborIndexTable::new(1);
        nit.push_entry(9, &[9]);
        let _ = membership_counts(&nit, 4);
    }

    #[test]
    fn realistic_overlap_statistics() {
        // PointNet++-like first module: 512 centroids, K=32, from 1024 pts.
        use mesorasi_pointcloud::sampling::random_indices;
        use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
        let cloud = sample_shape(ShapeClass::Chair, 1024, 3);
        let centroids = random_indices(&cloud, 512, 1);
        let nit = crate::bruteforce::knn_indices(&cloud, &centroids, 32);
        let counts = membership_counts(&nit, 1024);
        let mean = mean_membership(&counts);
        // 512 × 32 memberships spread over 1024 points = 16 on average.
        assert!((mean - 16.0).abs() < 1.0, "mean membership {mean}");
        // Substantial overlap must exist (points in many neighborhoods).
        assert!(fraction_at_least(&counts, 20) > 0.1);
    }
}
