//! A hierarchical Morton-bucket octree for large clouds.
//!
//! The flat kd/grid backends assume fully-resident clouds at paper scale
//! (≤ ~2048 points). This backend is the large-N structure: points are
//! sorted along the Morton curve ([`mesorasi_pointcloud::morton`]), leaves
//! own contiguous runs of that order, and every node carries the AABB of
//! its run. Because a node's Morton range is a contiguous index range,
//! the whole tree is three flat vectors plus one permutation — rebuildable
//! in place, cache-friendly to descend, and with leaf payloads that are
//! literally slices of the sorted cloud.
//!
//! `knn_into`/`ball_into` do best-first descent with the same exact
//! `(distance, index)` tie-breaking as every other backend (shared
//! `push_bounded`/`sort_candidates`/`pad_slot`), so the octree joins the
//! bit-identity bar: the planner can cross over to it at large N without
//! changing a single result.
//!
//! Two sub-layers open the out-of-core scenario:
//!
//! * **LOD sampling** ([`MortonOctree::set_lod`]): every internal node
//!   keeps a deterministic, evenly-strided subsample of its run. A nonzero
//!   LOD level `ℓ` treats internal nodes at depth `ℓ` as virtual leaves
//!   that scan only their representatives — trading points for latency.
//!   LOD queries are *approximate by design* (the accuracy caveat lives in
//!   the README); the query point seeds its own candidate set, and a query
//!   whose reduced candidate set runs dry falls back to the exact descent,
//!   so tables always carry `k` valid member indices.
//! * **Paging** ([`MortonOctree::paged`]): leaf payloads live behind the
//!   [`NodeStore`] trait — resident, or file-backed under a byte-budgeted
//!   LRU ([`crate::pager::FileStore`]). Payloads round-trip bit-exactly,
//!   so results are identical at every budget; paged queries run
//!   sequentially (faults mutate LRU state), resident queries batch in
//!   parallel like the kd-tree.

use crate::bruteforce::{push_bounded, Candidate};
use crate::kdtree::{batch_into, per_query_cost, sort_candidates};
use crate::pager::{FileStore, NodeStore, PagerStats, ResidentStore};
use crate::planner::SearchBackend;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::{morton, Aabb, Point3, PointCloud};

/// Points per leaf before a Morton run stops splitting. Larger than the
/// kd-tree's 16: leaves are contiguous scans (and pager I/O units), so
/// fatter leaves amortize descent and fault cost.
pub const LEAF_SIZE: usize = 32;

/// Representatives an internal node keeps for LOD queries.
const REPS_PER_NODE: usize = 8;

/// `u32` sentinel for "no child".
const NONE: u32 = u32::MAX;

/// One flat tree node; `aabbs[i]` carries node `i`'s bounding box.
#[derive(Debug, Clone, Copy)]
enum OctNode {
    Leaf {
        /// Payload id in the node store (push order).
        leaf: u32,
        /// Range `start..start + len` of the Morton permutation.
        start: u32,
        len: u32,
    },
    Internal {
        /// Children in Morton-digit order; [`NONE`] for empty octants.
        children: [u32; 8],
        /// Range `reps_start..reps_start + reps_len` of the flat
        /// representative list (original point indices).
        reps_start: u32,
        reps_len: u32,
    },
}

/// Where this tree's leaf payloads live (see [`crate::pager`]).
#[derive(Debug)]
enum Store {
    Resident(ResidentStore),
    Paged(FileStore),
}

impl Store {
    fn as_node_store(&mut self) -> &mut dyn NodeStore {
        match self {
            Store::Resident(s) => s,
            Store::Paged(s) => s,
        }
    }
}

/// A Morton-bucket octree with reusable storage, implementing
/// [`crate::SearchIndex`].
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
/// use mesorasi_knn::octree::MortonOctree;
/// use mesorasi_knn::{bruteforce, SearchIndex};
///
/// let cloud = sample_shape(ShapeClass::Torus, 512, 3);
/// let queries: Vec<usize> = (0..64).collect();
/// let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
/// let mut out = mesorasi_knn::NeighborIndexTable::default();
/// tree.knn_into(&cloud, &queries, 8, &mut out);
/// assert_eq!(out, bruteforce::knn_indices(&cloud, &queries, 8));
/// ```
#[derive(Debug)]
pub struct MortonOctree {
    nodes: Vec<OctNode>,
    aabbs: Vec<Aabb>,
    /// Original indices in Morton order; leaves own disjoint ranges.
    perm: Vec<usize>,
    /// Morton code per original index (build scratch).
    codes: Vec<u64>,
    /// Flat LOD representative list (original indices).
    reps: Vec<usize>,
    /// Scratch for assembling leaf payloads at build time.
    leaf_buf: Vec<Point3>,
    store: Store,
    /// LOD level; `0` (the default) answers exactly.
    lod: usize,
    size: usize,
    /// Sequential-query candidate scratch (parallel chunks pool their own).
    scratch: Vec<Candidate>,
}

impl Default for MortonOctree {
    fn default() -> Self {
        MortonOctree::resident()
    }
}

impl MortonOctree {
    /// A tree whose leaf payloads stay in memory (the fast default).
    pub fn resident() -> MortonOctree {
        MortonOctree::with_store(Store::Resident(ResidentStore::default()))
    }

    /// A tree whose leaf payloads are file-backed and paged under `budget`
    /// bytes of residency (see [`crate::pager::FileStore`]). Results are
    /// bit-identical to the resident tree at every budget.
    pub fn paged(budget: usize) -> MortonOctree {
        MortonOctree::with_store(Store::Paged(FileStore::new(budget)))
    }

    fn with_store(store: Store) -> MortonOctree {
        MortonOctree {
            nodes: Vec::new(),
            aabbs: Vec::new(),
            perm: Vec::new(),
            codes: Vec::new(),
            reps: Vec::new(),
            leaf_buf: Vec::new(),
            store,
            lod: 0,
            size: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// True when leaf payloads are file-backed.
    pub fn is_paged(&self) -> bool {
        matches!(self.store, Store::Paged(_))
    }

    /// Sets the LOD level: `0` answers exactly; level `ℓ ≥ 1` treats
    /// internal nodes at depth `ℓ` as virtual leaves scanning only their
    /// representatives (approximate, smaller candidate sets, lower
    /// latency). Takes effect on the next query; no rebuild needed.
    pub fn set_lod(&mut self, lod: usize) {
        self.lod = lod;
    }

    /// The current LOD level (see [`MortonOctree::set_lod`]).
    pub fn lod(&self) -> usize {
        self.lod
    }

    /// Pager traffic counters (all-zero for a resident tree).
    pub fn pager_stats(&self) -> PagerStats {
        match &self.store {
            Store::Resident(s) => s.stats(),
            Store::Paged(s) => s.stats(),
        }
    }
}

impl crate::SearchIndex for MortonOctree {
    fn build_into(&mut self, cloud: &PointCloud) {
        assert!(cloud.len() <= u32::MAX as usize, "octree indices are 32-bit");
        self.size = cloud.len();
        self.nodes.clear();
        self.aabbs.clear();
        self.reps.clear();
        morton::sort_permutation_into(cloud, &mut self.codes, &mut self.perm);
        let leaves_hint = cloud.len().div_ceil(LEAF_SIZE).max(1);
        self.store.as_node_store().begin_rebuild(leaves_hint);
        if !self.perm.is_empty() {
            let mut b = Builder {
                points: cloud.points(),
                codes: &self.codes,
                perm: &self.perm,
                nodes: &mut self.nodes,
                aabbs: &mut self.aabbs,
                reps: &mut self.reps,
                leaf_buf: &mut self.leaf_buf,
                store: self.store.as_node_store(),
            };
            let top_shift = 3 * (morton::BITS_PER_AXIS as i32 - 1);
            b.build(0, self.perm.len(), top_shift);
        }
        self.store.as_node_store().finish_rebuild();
    }

    fn knn_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0 && k <= self.size, "k = {k} out of range for {} points", self.size);
        let MortonOctree { nodes, aabbs, perm, reps, store, scratch, lod, .. } = self;
        let t = TreeView { nodes, aabbs, perm, reps, cloud_points: cloud.points(), lod: *lod };
        match store {
            Store::Resident(r) => {
                let payload = r.points();
                batch_into(
                    out,
                    queries,
                    k,
                    per_query_cost(t.perm.len(), k),
                    scratch,
                    |best, q, slot| {
                        let mut scan = ResidentScan { payload };
                        let evals = knn_one(&t, &mut scan, q, k, best);
                        for (s, c) in slot.iter_mut().zip(best.iter()) {
                            *s = c.index;
                        }
                        evals
                    },
                )
            }
            Store::Paged(p) => {
                // Faulting leaves in mutates the LRU, so paged queries
                // share the store sequentially; results are identical to
                // the parallel resident path at any budget.
                let (cents, neighs) = out.fill_slots(k, queries.len());
                let mut scan = PagedScan { store: p };
                let mut evals = 0u64;
                for (i, &q) in queries.iter().enumerate() {
                    cents[i] = q;
                    evals += knn_one(&t, &mut scan, q, k, scratch);
                    for (s, c) in neighs[i * k..(i + 1) * k].iter_mut().zip(scratch.iter()) {
                        *s = c.index;
                    }
                }
                evals
            }
        }
    }

    fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0, "k must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let r2 = radius * radius;
        let MortonOctree { nodes, aabbs, perm, reps, store, scratch, lod, .. } = self;
        let t = TreeView { nodes, aabbs, perm, reps, cloud_points: cloud.points(), lod: *lod };
        match store {
            Store::Resident(r) => {
                let payload = r.points();
                batch_into(
                    out,
                    queries,
                    k,
                    per_query_cost(t.perm.len(), k),
                    scratch,
                    |found, q, slot| {
                        let mut scan = ResidentScan { payload };
                        let evals = ball_one(&t, &mut scan, q, r2, found);
                        crate::ball::pad_slot(found, slot);
                        evals
                    },
                )
            }
            Store::Paged(p) => {
                let (cents, neighs) = out.fill_slots(k, queries.len());
                let mut scan = PagedScan { store: p };
                let mut evals = 0u64;
                for (i, &q) in queries.iter().enumerate() {
                    cents[i] = q;
                    evals += ball_one(&t, &mut scan, q, r2, scratch);
                    crate::ball::pad_slot(scratch, &mut neighs[i * k..(i + 1) * k]);
                }
                evals
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        let store_bytes = match &self.store {
            Store::Resident(s) => s.storage_bytes(),
            Store::Paged(s) => s.storage_bytes(),
        };
        self.nodes.capacity() * std::mem::size_of::<OctNode>()
            + self.aabbs.capacity() * std::mem::size_of::<Aabb>()
            + (self.perm.capacity() + self.reps.capacity()) * std::mem::size_of::<usize>()
            + self.codes.capacity() * std::mem::size_of::<u64>()
            + self.leaf_buf.capacity() * std::mem::size_of::<Point3>()
            + self.scratch.capacity() * std::mem::size_of::<Candidate>()
            + store_bytes
    }

    fn kind(&self) -> SearchBackend {
        SearchBackend::Octree
    }
}

/// Build-time borrow bundle (the tree's fields, split for the recursion).
struct Builder<'b> {
    points: &'b [Point3],
    codes: &'b [u64],
    perm: &'b [usize],
    nodes: &'b mut Vec<OctNode>,
    aabbs: &'b mut Vec<Aabb>,
    reps: &'b mut Vec<usize>,
    leaf_buf: &'b mut Vec<Point3>,
    store: &'b mut dyn NodeStore,
}

impl Builder<'_> {
    /// Builds the node over `perm[start..start + len]`, whose Morton codes
    /// agree above bit `shift + 3`, and returns its id. Pre-order layout:
    /// a node's id precedes all its descendants'.
    fn build(&mut self, start: usize, len: usize, shift: i32) -> u32 {
        let id = self.nodes.len() as u32;
        let run = &self.perm[start..start + len];
        let aabb = Aabb::from_points(run.iter().map(|&i| self.points[i]))
            .expect("build ranges are non-empty");
        self.aabbs.push(aabb);
        // A zero-extent run (duplicate points) exhausts `shift` and
        // collapses into one leaf of the full run.
        if len <= LEAF_SIZE || shift < 0 {
            self.leaf_buf.clear();
            self.leaf_buf.extend(run.iter().map(|&i| self.points[i]));
            let leaf = self.store.push_leaf(self.leaf_buf);
            self.nodes.push(OctNode::Leaf { leaf, start: start as u32, len: len as u32 });
            return id;
        }
        self.nodes.push(OctNode::Internal { children: [NONE; 8], reps_start: 0, reps_len: 0 });
        // Deterministic LOD subsample: evenly strided over the Morton run,
        // so representatives spread across the node's octants.
        let m = REPS_PER_NODE.min(len);
        let reps_start = self.reps.len() as u32;
        for j in 0..m {
            self.reps.push(self.perm[start + j * len / m]);
        }
        // Children partition the run by the 3-bit Morton digit at `shift`
        // (the run is code-sorted, so each digit is one contiguous span).
        let mut children = [NONE; 8];
        let mut lo = start;
        for digit in 0..8u64 {
            let hi = if digit == 7 {
                start + len
            } else {
                lo + self.perm[lo..start + len]
                    .partition_point(|&i| (self.codes[i] >> shift) & 7 <= digit)
            };
            if hi > lo {
                children[digit as usize] = self.build(lo, hi - lo, shift - 3);
            }
            lo = hi;
        }
        let OctNode::Internal { children: c, reps_start: rs, reps_len: rl } =
            &mut self.nodes[id as usize]
        else {
            unreachable!("pushed an internal node above")
        };
        *c = children;
        *rs = reps_start;
        *rl = m as u32;
        id
    }
}

/// Borrowed view of the tree's immutable search data, so the descent
/// bodies exist once across the resident/paged and exact/LOD paths.
#[derive(Clone, Copy)]
struct TreeView<'t> {
    nodes: &'t [OctNode],
    aabbs: &'t [Aabb],
    perm: &'t [usize],
    reps: &'t [usize],
    cloud_points: &'t [Point3],
    lod: usize,
}

/// Leaf-payload access, the one seam between resident and paged queries.
/// `skip` is an original index excluded from the scan (`usize::MAX` for
/// none) — LOD queries seed the query point and must not collect it twice.
trait LeafScan {
    /// The payload of leaf `leaf` (the points of `perm[start..start+len]`,
    /// in that order).
    fn payload(&mut self, leaf: u32, start: usize, len: usize) -> &[Point3];
}

struct ResidentScan<'a> {
    /// The Morton-sorted cloud: leaf payloads are slices of it.
    payload: &'a [Point3],
}

impl LeafScan for ResidentScan<'_> {
    fn payload(&mut self, _leaf: u32, start: usize, len: usize) -> &[Point3] {
        &self.payload[start..start + len]
    }
}

struct PagedScan<'a> {
    store: &'a mut FileStore,
}

impl LeafScan for PagedScan<'_> {
    fn payload(&mut self, leaf: u32, _start: usize, len: usize) -> &[Point3] {
        let pts = self.store.leaf_points(leaf);
        debug_assert_eq!(pts.len(), len, "paged payload length matches the leaf run");
        pts
    }
}

/// One kNN query: exact descent, or LOD descent with self-seed and an
/// exact fallback when the reduced candidate set cannot fill `k`.
fn knn_one<S: LeafScan>(
    t: &TreeView<'_>,
    scan: &mut S,
    q: usize,
    k: usize,
    best: &mut Vec<Candidate>,
) -> u64 {
    best.clear();
    let query = t.cloud_points[q];
    let mut evals = 0u64;
    if t.lod == 0 {
        knn_descend(t, scan, 0, 0, query, k, usize::MAX, best, &mut evals);
    } else {
        push_bounded(best, k, Candidate { index: q, dist_sq: 0.0 });
        knn_descend(t, scan, 0, 0, query, k, q, best, &mut evals);
        if best.len() < k {
            // Representatives ran dry (k exceeds the reduced set): answer
            // this query exactly instead of padding with garbage.
            best.clear();
            let exact = TreeView { lod: 0, ..*t };
            knn_descend(&exact, scan, 0, 0, query, k, usize::MAX, best, &mut evals);
        }
    }
    evals
}

/// One ball query into `found` (sorted ascending by `(distance, index)`).
fn ball_one<S: LeafScan>(
    t: &TreeView<'_>,
    scan: &mut S,
    q: usize,
    r2: f32,
    found: &mut Vec<Candidate>,
) -> u64 {
    found.clear();
    let query = t.cloud_points[q];
    let mut evals = 0u64;
    if t.lod == 0 {
        ball_descend(t, scan, 0, 0, query, r2, usize::MAX, found, &mut evals);
    } else {
        // The centroid always belongs to its own ball; seeding it keeps
        // the padding contract even when no representative falls inside.
        found.push(Candidate { index: q, dist_sq: 0.0 });
        ball_descend(t, scan, 0, 0, query, r2, q, found, &mut evals);
    }
    sort_candidates(found);
    evals
}

#[allow(clippy::too_many_arguments)]
fn knn_descend<S: LeafScan>(
    t: &TreeView<'_>,
    scan: &mut S,
    at: u32,
    depth: usize,
    query: Point3,
    k: usize,
    skip: usize,
    best: &mut Vec<Candidate>,
    evals: &mut u64,
) {
    match t.nodes[at as usize] {
        OctNode::Leaf { leaf, start, len } => {
            let (start, len) = (start as usize, len as usize);
            let payload = scan.payload(leaf, start, len);
            for (j, &p) in payload.iter().enumerate() {
                let i = t.perm[start + j];
                if i == skip {
                    continue;
                }
                *evals += 1;
                push_bounded(best, k, Candidate { index: i, dist_sq: p.distance_squared(query) });
            }
        }
        OctNode::Internal { children, reps_start, reps_len } => {
            if t.lod != 0 && depth >= t.lod {
                for &i in &t.reps[reps_start as usize..(reps_start + reps_len) as usize] {
                    if i == skip {
                        continue;
                    }
                    *evals += 1;
                    push_bounded(
                        best,
                        k,
                        Candidate { index: i, dist_sq: t.cloud_points[i].distance_squared(query) },
                    );
                }
                return;
            }
            // Best-first: visit children by ascending box distance; prune a
            // child only when its box is strictly farther than the k-th
            // best (`<=` keeps boundary ties, exactly like the kd-tree).
            let mut order = [(f32::INFINITY, NONE); 8];
            let mut m = 0;
            for &c in &children {
                if c != NONE {
                    order[m] = (t.aabbs[c as usize].distance_squared_to(query), c);
                    m += 1;
                }
            }
            order[..m].sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            for &(d, c) in &order[..m] {
                let worst = best.last().map_or(f32::INFINITY, |b| b.dist_sq);
                if best.len() < k || d <= worst {
                    knn_descend(t, scan, c, depth + 1, query, k, skip, best, evals);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ball_descend<S: LeafScan>(
    t: &TreeView<'_>,
    scan: &mut S,
    at: u32,
    depth: usize,
    query: Point3,
    r2: f32,
    skip: usize,
    found: &mut Vec<Candidate>,
    evals: &mut u64,
) {
    match t.nodes[at as usize] {
        OctNode::Leaf { leaf, start, len } => {
            let (start, len) = (start as usize, len as usize);
            let payload = scan.payload(leaf, start, len);
            for (j, &p) in payload.iter().enumerate() {
                let i = t.perm[start + j];
                if i == skip {
                    continue;
                }
                *evals += 1;
                let d = p.distance_squared(query);
                if d <= r2 {
                    found.push(Candidate { index: i, dist_sq: d });
                }
            }
        }
        OctNode::Internal { children, reps_start, reps_len } => {
            if t.lod != 0 && depth >= t.lod {
                for &i in &t.reps[reps_start as usize..(reps_start + reps_len) as usize] {
                    if i == skip {
                        continue;
                    }
                    *evals += 1;
                    let d = t.cloud_points[i].distance_squared(query);
                    if d <= r2 {
                        found.push(Candidate { index: i, dist_sq: d });
                    }
                }
                return;
            }
            for &c in &children {
                if c != NONE && t.aabbs[c as usize].distance_squared_to(query) <= r2 {
                    ball_descend(t, scan, c, depth + 1, query, r2, skip, found, evals);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ball, bruteforce, kdtree::KdTree, SearchIndex};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn queries(n: usize) -> Vec<usize> {
        (0..n).step_by(3).collect()
    }

    #[test]
    fn matches_bruteforce_resident_and_paged() {
        let cloud = sample_shape(ShapeClass::Chair, 700, 1);
        let q = queries(700);
        let tiny = 2 * LEAF_SIZE * crate::pager::POINT_BYTES;
        for k in [1, 9, 64] {
            let want = bruteforce::knn_indices(&cloud, &q, k);
            let mut resident = <MortonOctree as SearchIndex>::build(&cloud);
            let mut paged = MortonOctree::paged(tiny);
            paged.build_into(&cloud);
            for tree in [&mut resident, &mut paged] {
                let mut got = NeighborIndexTable::default();
                tree.knn_into(&cloud, &q, k, &mut got);
                assert_eq!(got, want, "k {k} paged {}", tree.is_paged());
            }
        }
        let kd = KdTree::build(&cloud);
        let want = ball::ball_query(&cloud, &kd, &q, 0.3, 12);
        let mut paged = MortonOctree::paged(tiny);
        paged.build_into(&cloud);
        let mut got = NeighborIndexTable::default();
        paged.ball_into(&cloud, &q, 0.3, 12, &mut got);
        assert_eq!(got, want);
        assert!(paged.pager_stats().evictions > 0, "a tiny budget must churn");
    }

    #[test]
    fn duplicate_points_collapse_into_one_leaf_and_tie_break_by_index() {
        let cloud = PointCloud::from_points(vec![Point3::new(0.5, -1.0, 2.0); 100]);
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        // Identical codes can never split: the Morton digits run out and
        // the whole run collapses into a single leaf (of > LEAF_SIZE).
        let leaves: Vec<_> = tree
            .nodes
            .iter()
            .filter_map(|n| match *n {
                OctNode::Leaf { len, .. } => Some(len),
                OctNode::Internal { .. } => None,
            })
            .collect();
        assert_eq!(leaves, vec![100]);
        let mut out = NeighborIndexTable::default();
        tree.knn_into(&cloud, &[7, 0], 5, &mut out);
        assert_eq!(out.neighbors(0), &[0, 1, 2, 3, 4]);
        assert_eq!(out, bruteforce::knn_indices(&cloud, &[7, 0], 5));
    }

    #[test]
    fn lod_answers_are_member_indices_and_include_self() {
        let cloud = sample_shape(ShapeClass::Airplane, 1500, 2);
        let q = queries(1500);
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        for lod in [1, 2, 4] {
            tree.set_lod(lod);
            assert_eq!(tree.lod(), lod);
            let mut out = NeighborIndexTable::default();
            tree.knn_into(&cloud, &q, 8, &mut out);
            for (e, &c) in q.iter().enumerate() {
                let n = out.neighbors(e);
                assert_eq!(n[0], c, "lod {lod}: self is still the nearest neighbor");
                assert!(n.iter().all(|&i| i < cloud.len()));
            }
            tree.ball_into(&cloud, &q, 0.25, 8, &mut out);
            for (e, &c) in q.iter().enumerate() {
                assert_eq!(out.neighbors(e)[0], c, "lod {lod}: ball seeds the centroid");
            }
        }
    }

    #[test]
    fn deep_lod_equals_exact_and_dry_lod_falls_back() {
        let cloud = sample_shape(ShapeClass::Sphere, 600, 5);
        let q = queries(600);
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        let want = bruteforce::knn_indices(&cloud, &q, 6);
        // A level deeper than the tree leaves no virtual leaves: exact.
        tree.set_lod(64);
        let mut out = NeighborIndexTable::default();
        tree.knn_into(&cloud, &q, 6, &mut out);
        assert_eq!(out, want, "an LOD below every leaf answers exactly");
        // k far beyond the root's representative count runs the reduced
        // set dry at the coarsest level; the fallback answers exactly.
        tree.set_lod(1);
        tree.knn_into(&cloud, &q, 200, &mut out);
        assert_eq!(out, bruteforce::knn_indices(&cloud, &q, 200));
    }

    #[test]
    fn lod_scans_fewer_points_than_exact() {
        let cloud = sample_shape(ShapeClass::Chair, 2000, 7);
        let q: Vec<usize> = (0..2000).step_by(11).collect();
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        let mut out = NeighborIndexTable::default();
        let exact = tree.knn_into(&cloud, &q, 8, &mut out);
        tree.set_lod(2);
        let coarse = tree.knn_into(&cloud, &q, 8, &mut out);
        assert!(coarse < exact, "lod 2 must evaluate fewer distances ({coarse} vs exact {exact})");
    }

    #[test]
    fn build_into_reaches_a_storage_fixpoint() {
        let a = sample_shape(ShapeClass::Chair, 512, 1);
        let b = sample_shape(ShapeClass::Lamp, 512, 2);
        let q = queries(512);
        let mut tree = MortonOctree::paged(LEAF_SIZE * crate::pager::POINT_BYTES);
        let mut out = NeighborIndexTable::default();
        // Node layout is content-dependent (unlike the kd-tree), so warm
        // the high-water capacity on both clouds first.
        for cloud in [&a, &b, &a, &b] {
            tree.build_into(cloud);
            tree.knn_into(cloud, &q, 5, &mut out);
        }
        let bytes = tree.storage_bytes();
        for cloud in [&a, &b] {
            tree.build_into(cloud);
            tree.knn_into(cloud, &q, 5, &mut out);
            assert_eq!(out, bruteforce::knn_indices(cloud, &q, 5));
            assert_eq!(tree.storage_bytes(), bytes, "warm rebuilds must not grow storage");
        }
    }

    #[test]
    fn zero_radius_ball_returns_exact_matches_padded() {
        let cloud = sample_shape(ShapeClass::Cube, 300, 4);
        let q = queries(300);
        let kd = KdTree::build(&cloud);
        let want = ball::ball_query(&cloud, &kd, &q, 0.0, 4);
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        let mut got = NeighborIndexTable::default();
        tree.ball_into(&cloud, &q, 0.0, 4, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_larger_than_n_panics() {
        let cloud = sample_shape(ShapeClass::Cube, 8, 2);
        let mut tree = <MortonOctree as SearchIndex>::build(&cloud);
        let mut out = NeighborIndexTable::default();
        tree.knn_into(&cloud, &[0], 9, &mut out);
    }
}
